//! The Secure Partition Manager.
//!
//! The SPM isolates each mOS (and its one device) into an S-EL2 partition,
//! implements trusted shared memory between partitions (Figure 6), and runs
//! the **proceed-trap** failover protocol of §IV-D:
//!
//! 1. *Proceed*: on failure of `P_a`, invalidate every surviving partition's
//!    stage-2 entries (`pt²(P_i, P_a)`) and SMMU entries (`spt²(P_i, P_a)`)
//!    for memory shared with `P_a`, then mark `P_a` failed (`r_f = 1`) so new
//!    sharing requests are blocked. This closes the TOCTOU window (A1).
//! 2. *Clear + reload*: zero the device and the shared memory, load a fresh
//!    mOS image, set `r_f = 0`.
//! 3. *Trap*: a surviving mEnclave's later access to the shared memory
//!    faults; the SPM unmaps the enclave's stage-1 entries, reclaims pages
//!    the survivor owns, and delivers a failure signal — so no enclave leaks
//!    data to a substituted peer (A1) or deadlocks on a dead lock holder (A2),
//!    and no crashed data survives into the recovered partition (A3).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use cronus_crypto::measure;
use cronus_devices::bus::{PcieBus, PcieSlot};
use cronus_devices::cpu::CpuDevice;
use cronus_devices::gpu::GpuDevice;
use cronus_devices::npu::NpuDevice;
use cronus_devices::{endorse_device, vendor_keypair, DeviceKind, SimDevice};
use cronus_forensics::{Ledger, SecurityEvent, MONITOR_CHAIN};
use cronus_mos::hal::DeviceHal;
use cronus_mos::manager::Owner;
use cronus_mos::manifest::{Eid, Manifest, MosId};
use cronus_mos::mos::{MicroOs, MosError, MosStatus};
use cronus_obs::{FlightRecorder, QueueKind, TimeCategory};
use cronus_sim::addr::{PhysAddr, PhysRange, VirtAddr};
use cronus_sim::devtree::{DeviceTree, DtNode};
use cronus_sim::machine::AsId;
use cronus_sim::pagetable::PagePerms;
use cronus_sim::trace::EventKind;
use cronus_sim::tzpc::DeviceId;
use cronus_sim::{Machine, MachineConfig, SimNs, StreamId, World};

use crate::attest::{AttestationReport, SignedReport};
use crate::monitor::SecureMonitor;

/// Which device a partition manages.
#[derive(Clone, Debug, PartialEq)]
pub enum DeviceSpec {
    /// A CPU partition.
    Cpu,
    /// A GPU with the given device-memory capacity and SM count.
    Gpu { memory: u64, sms: u32 },
    /// An NPU with the given device-memory capacity.
    Npu { memory: u64 },
}

impl DeviceSpec {
    fn kind(&self) -> DeviceKind {
        match self {
            DeviceSpec::Cpu => DeviceKind::Cpu,
            DeviceSpec::Gpu { .. } => DeviceKind::Gpu,
            DeviceSpec::Npu { .. } => DeviceKind::Npu,
        }
    }

    fn vendor(&self) -> &'static str {
        match self {
            DeviceSpec::Cpu => "arm",
            DeviceSpec::Gpu { .. } => "nvidia",
            DeviceSpec::Npu { .. } => "vta",
        }
    }
}

/// Boot-time description of one partition.
#[derive(Clone, Debug)]
pub struct PartitionSpec {
    /// The mOS id; the partition's `AsId` is derived from it.
    pub mos_id: MosId,
    /// The mOS image bytes (provided by the normal world, measured by the
    /// secure monitor).
    pub image: Vec<u8>,
    /// mOS version label.
    pub version: String,
    /// The managed device.
    pub device: DeviceSpec,
}

impl PartitionSpec {
    /// Convenience constructor.
    pub fn new(mos_id: u8, image: &[u8], version: &str, device: DeviceSpec) -> Self {
        PartitionSpec {
            mos_id: MosId(mos_id),
            image: image.to_vec(),
            version: version.to_string(),
            device,
        }
    }
}

/// Boot configuration for the whole secure world.
#[derive(Clone, Debug)]
pub struct BootConfig {
    /// Machine (DRAM, cost model) configuration.
    pub machine: MachineConfig,
    /// Platform root-key seed (fused ROM secret stand-in).
    pub platform_seed: String,
    /// Partitions to create.
    pub partitions: Vec<PartitionSpec>,
}

impl Default for BootConfig {
    fn default() -> Self {
        BootConfig {
            machine: MachineConfig::default(),
            platform_seed: "cronus-platform".to_string(),
            partitions: Vec::new(),
        }
    }
}

/// Identifier of a shared-memory region.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ShareHandle(u64);

impl ShareHandle {
    /// Returns the raw handle value (stable within one boot; used by the
    /// isolation auditor to report share provenance).
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

/// Lifecycle state of a shared-memory region.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShareState {
    /// Both endpoints are healthy and mapped.
    Active,
    /// One side failed; stage-2 entries of the survivor are invalidated and
    /// the next access traps.
    Poisoned {
        /// The endpoint partition that did *not* fail.
        survivor: AsId,
    },
    /// Pages were scrubbed and returned to the allocator.
    Reclaimed,
}

#[derive(Debug)]
struct ShareRecord {
    handle: ShareHandle,
    owner: (AsId, Eid),
    peer: (AsId, Eid),
    pages: Vec<u64>,
    frames: Vec<cronus_sim::Frame>,
    state: ShareState,
}

/// A read-only view of one shared-memory grant, exposed so the isolation
/// auditor can reconcile share provenance against the live mapping tables.
#[derive(Clone, Copy, Debug)]
pub struct ShareView<'a> {
    /// The share's handle.
    pub handle: ShareHandle,
    /// Owning endpoint (partition, enclave).
    pub owner: (AsId, Eid),
    /// Peer endpoint (partition, enclave).
    pub peer: (AsId, Eid),
    /// The physical pages backing the region.
    pub pages: &'a [u64],
    /// Lifecycle state.
    pub state: ShareState,
}

/// Statistics from one partition recovery (drives Fig. 9).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryStats {
    /// Stage-2/SMMU entries invalidated in step 1.
    pub invalidated_pages: usize,
    /// Simulated time for step 1 (proceed).
    pub proceed_time: SimNs,
    /// Simulated time to clear device + smem (step 2a).
    pub clear_time: SimNs,
    /// Simulated time to reload and init the mOS (step 2b).
    pub restart_time: SimNs,
}

impl RecoveryStats {
    /// Total downtime of the failed partition.
    pub fn total(&self) -> SimNs {
        self.proceed_time + self.clear_time + self.restart_time
    }
}

/// Errors from the SPM.
#[derive(Clone, Debug, PartialEq)]
pub enum SpmError {
    /// No partition with this id.
    UnknownPartition(AsId),
    /// The partition is marked failed.
    PartitionFailed(AsId),
    /// The partition is not failed (recovery on a healthy partition).
    NotFailed(AsId),
    /// The eid's mOS part does not match the target partition — the SPM
    /// "uses the mOS part for validating cross-mOS messages".
    EidPartitionMismatch { eid: Eid, partition: AsId },
    /// Secure memory exhausted.
    OutOfMemory,
    /// Underlying mOS error.
    Mos(MosError),
    /// Unknown share handle.
    UnknownShare(ShareHandle),
    /// A trap was raised for a page that belongs to no poisoned share of
    /// the faulting partition (spurious or already-reclaimed trap).
    NoPoisonedShare {
        /// The faulting physical page.
        ppn: u64,
    },
}

impl fmt::Display for SpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpmError::UnknownPartition(p) => write!(f, "unknown partition {p}"),
            SpmError::PartitionFailed(p) => write!(f, "partition {p} is failed"),
            SpmError::NotFailed(p) => write!(f, "partition {p} is not failed"),
            SpmError::EidPartitionMismatch { eid, partition } => {
                write!(f, "eid {eid} does not belong to partition {partition}")
            }
            SpmError::OutOfMemory => f.write_str("secure memory exhausted"),
            SpmError::Mos(e) => write!(f, "mos: {e}"),
            SpmError::UnknownShare(h) => write!(f, "unknown share {h:?}"),
            SpmError::NoPoisonedShare { ppn } => {
                write!(f, "no poisoned share covers page {ppn:#x}")
            }
        }
    }
}

impl std::error::Error for SpmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpmError::Mos(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MosError> for SpmError {
    fn from(e: MosError) -> Self {
        SpmError::Mos(e)
    }
}

/// The outcome of handling a shared-memory trap (failover step 3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrapOutcome {
    /// The enclave that received the failure signal.
    pub signalled: Eid,
    /// Stage-1 entries removed from the signalled enclave.
    pub unmapped: usize,
    /// True if the pages were owned by the survivor and were reclaimed
    /// (stage-2 revalidated after zeroing).
    pub reclaimed: bool,
}

/// The Secure Partition Manager.
pub struct Spm {
    machine: Machine,
    bus: PcieBus,
    monitor: SecureMonitor,
    partitions: HashMap<AsId, MicroOs>,
    device_of: HashMap<AsId, DeviceId>,
    vendors: HashMap<DeviceId, (String, cronus_crypto::Signature)>,
    shares: Vec<ShareRecord>,
    next_share: u64,
    recorder: Option<FlightRecorder>,
    /// When each failed partition's recovery work item was enqueued (virtual
    /// time), consumed by `recover_partition` for the `spm.recovery` queue.
    recovery_enqueued: HashMap<AsId, SimNs>,
    ledger: Ledger,
}

impl fmt::Debug for Spm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Spm")
            .field("partitions", &self.partitions.len())
            .field("shares", &self.shares.len())
            .finish_non_exhaustive()
    }
}

/// Derives a partition's address-space id from its mOS id.
pub fn asid_of(mos: MosId) -> AsId {
    AsId::new(mos.0 as u32)
}

impl Spm {
    /// Secure boot: builds the machine, validates and installs the device
    /// tree, locks down the TZPC, registers bus slots and SMMU streams, and
    /// starts every partition's mOS.
    ///
    /// # Panics
    ///
    /// Panics on an invalid boot configuration (overlapping MMIO, duplicate
    /// mOS ids) — boot-time configuration bugs, not runtime events.
    pub fn boot(config: BootConfig) -> Self {
        let mut machine = Machine::new(config.machine);
        let monitor = SecureMonitor::new(&config.platform_seed);
        let mut bus = PcieBus::new();
        let mut partitions = HashMap::new();
        let mut device_of = HashMap::new();
        let mut vendors = HashMap::new();

        // Build and validate the device tree (§IV-A: only valid DTs boot).
        let mut nodes = Vec::new();
        for (i, spec) in config.partitions.iter().enumerate() {
            let device = DeviceId::new(spec.mos_id.0 as u32);
            nodes.push(DtNode {
                device,
                compatible: format!("{}", spec.device.kind()),
                mmio: PhysRange::from_base_len(
                    PhysAddr::new(0x1000_0000 + (i as u64) * 0x10_0000),
                    0x1000,
                ),
                irq: 32 + i as u32,
                world: World::Secure,
            });
        }
        let dt = DeviceTree::validate(nodes).expect("boot device tree must be valid");
        // Secure boot's first ledger entries: the measurements everything
        // else chains from.
        let ledger = Ledger::new(&config.platform_seed);
        ledger.append(
            MONITOR_CHAIN,
            SimNs::ZERO,
            SecurityEvent::DevtreeAttested {
                digest: measure("devtree", &dt.canonical_bytes()),
            },
        );
        machine.install_devtree(dt);
        ledger.append(
            MONITOR_CHAIN,
            SimNs::ZERO,
            SecurityEvent::TzascConfigured {
                digest: measure("tzasc", &machine.tzasc().canonical_bytes()),
            },
        );

        for spec in &config.partitions {
            let device = DeviceId::new(spec.mos_id.0 as u32);
            let stream = StreamId::new(spec.mos_id.0 as u32);
            let asid = asid_of(spec.mos_id);
            assert!(
                !partitions.contains_key(&asid),
                "duplicate mos id {}",
                spec.mos_id
            );

            machine
                .tzpc_mut()
                .assign(device, World::Secure)
                .expect("tzpc not locked during boot");
            machine.smmu_mut().add_stream(stream);
            let node = machine
                .devtree()
                .expect("installed above")
                .node(device)
                .expect("node added above")
                .clone();
            bus.register(PcieSlot {
                device,
                bar: node.mmio,
                stream,
                world: World::Secure,
            })
            .expect("validated device tree implies disjoint bars");

            let hal = match spec.device {
                DeviceSpec::Cpu => DeviceHal::Cpu(CpuDevice::new(device, stream)),
                DeviceSpec::Gpu { memory, sms } => {
                    DeviceHal::Gpu(GpuDevice::new(device, stream, memory, sms))
                }
                DeviceSpec::Npu { memory } => {
                    DeviceHal::Npu(NpuDevice::new(device, stream, memory))
                }
            };
            // Vendor endorsement of the device's ROM key.
            let vendor_name = spec.device.vendor();
            let vendor = vendor_keypair(vendor_name);
            let (endorsement, rot_digest) = match &hal {
                DeviceHal::Cpu(d) => (endorse_device(&vendor, d.rot_public()), d.rot_digest()),
                DeviceHal::Gpu(d) => (endorse_device(&vendor, d.rot_public()), d.rot_digest()),
                DeviceHal::Npu(d) => (endorse_device(&vendor, d.rot_public()), d.rot_digest()),
            };
            vendors.insert(device, (vendor_name.to_string(), endorsement));
            ledger.append(
                asid.as_u32(),
                SimNs::ZERO,
                SecurityEvent::DeviceEndorsed {
                    device: device.as_u32(),
                    vendor: vendor_name.to_string(),
                    rot_digest,
                },
            );

            machine.register_partition(asid);
            let mos = MicroOs::new(spec.mos_id, asid, &spec.image, &spec.version, hal);
            device_of.insert(asid, device);
            partitions.insert(asid, mos);
        }

        // Lock down after boot so the untrusted OS cannot reassign devices.
        machine.tzpc_mut().lock_down();
        ledger.append(
            MONITOR_CHAIN,
            SimNs::ZERO,
            SecurityEvent::TzpcLockdown {
                digest: measure("tzpc", &machine.tzpc().canonical_bytes()),
            },
        );

        Spm {
            machine,
            bus,
            monitor,
            partitions,
            device_of,
            vendors,
            shares: Vec::new(),
            next_share: 1,
            recorder: None,
            recovery_enqueued: HashMap::new(),
            ledger,
        }
    }

    /// Current virtual time for ledger records: the recorder's elapsed-time
    /// watermark, or [`SimNs::ZERO`] before one is installed.
    fn now(&self) -> SimNs {
        self.recorder
            .as_ref()
            .map(FlightRecorder::total_elapsed)
            .unwrap_or(SimNs::ZERO)
    }

    /// The security-event ledger (every SPM instance has one; the core
    /// layer appends its stream/enclave lifecycle records through it too).
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Installs a flight recorder: the machine's event stream feeds its
    /// counters (so they agree with the `EventLog` by construction), the SPM
    /// charges recovery phases to it, and every device HAL gains kernel-level
    /// spans and metrics.
    pub fn set_recorder(&mut self, rec: FlightRecorder) {
        self.machine.set_event_sink(rec.sink());
        self.bus.set_recorder(rec.clone());
        for mos in self.partitions.values_mut() {
            match mos.hal_mut() {
                DeviceHal::Gpu(g) => g.set_recorder(rec.clone()),
                DeviceHal::Npu(n) => n.set_recorder(rec.clone()),
                DeviceHal::Cpu(_) => {}
            }
        }
        rec.queue_declare("spm.recovery", QueueKind::Recovery, 0);
        self.recorder = Some(rec);
    }

    /// The installed flight recorder, if any.
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_ref()
    }

    /// The machine (read side).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The machine (write side) — used by runtime layers issuing accesses.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The PCIe bus.
    pub fn bus(&self) -> &PcieBus {
        &self.bus
    }

    /// The secure monitor.
    pub fn monitor(&self) -> &SecureMonitor {
        &self.monitor
    }

    /// Iterates over partition ids.
    pub fn partition_ids(&self) -> Vec<AsId> {
        let mut ids: Vec<AsId> = self.partitions.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Finds the partition managing a device kind (first match in id order).
    pub fn partition_of_kind(&self, kind: DeviceKind) -> Option<AsId> {
        self.partition_ids()
            .into_iter()
            .find(|asid| self.partitions[asid].device_kind() == kind)
    }

    /// The device a partition owns, if any.
    pub fn device_of(&self, asid: AsId) -> Option<DeviceId> {
        self.device_of.get(&asid).copied()
    }

    /// Read-only views of every shared-memory grant, in creation order —
    /// the share provenance the isolation auditor checks mappings against.
    pub fn shares(&self) -> impl Iterator<Item = ShareView<'_>> {
        self.shares.iter().map(|r| ShareView {
            handle: r.handle,
            owner: r.owner,
            peer: r.peer,
            pages: &r.pages,
            state: r.state,
        })
    }

    /// Immutable access to a partition's mOS.
    ///
    /// # Errors
    ///
    /// [`SpmError::UnknownPartition`].
    pub fn mos(&self, asid: AsId) -> Result<&MicroOs, SpmError> {
        self.partitions
            .get(&asid)
            .ok_or(SpmError::UnknownPartition(asid))
    }

    /// Mutable access to a partition's mOS.
    ///
    /// # Errors
    ///
    /// [`SpmError::UnknownPartition`].
    pub fn mos_mut(&mut self, asid: AsId) -> Result<&mut MicroOs, SpmError> {
        self.partitions
            .get_mut(&asid)
            .ok_or(SpmError::UnknownPartition(asid))
    }

    /// Mutable access to a partition's mOS *and* the machine together
    /// (the common pattern for enclave memory operations).
    ///
    /// # Errors
    ///
    /// [`SpmError::UnknownPartition`].
    pub fn mos_and_machine(
        &mut self,
        asid: AsId,
    ) -> Result<(&mut MicroOs, &mut Machine), SpmError> {
        let mos = self
            .partitions
            .get_mut(&asid)
            .ok_or(SpmError::UnknownPartition(asid))?;
        Ok((mos, &mut self.machine))
    }

    /// Splits borrows for HAL DMA operations: the partition's mOS, the
    /// machine and the bus together.
    ///
    /// # Errors
    ///
    /// [`SpmError::UnknownPartition`].
    pub fn mos_machine_bus(
        &mut self,
        asid: AsId,
    ) -> Result<(&mut MicroOs, &mut Machine, &PcieBus), SpmError> {
        let mos = self
            .partitions
            .get_mut(&asid)
            .ok_or(SpmError::UnknownPartition(asid))?;
        Ok((mos, &mut self.machine, &self.bus))
    }

    /// Creates an mEnclave in a partition (the dispatcher's entry point).
    ///
    /// # Errors
    ///
    /// Partition/mOS errors; [`SpmError::PartitionFailed`] while `r_f = 1`.
    pub fn create_enclave(
        &mut self,
        asid: AsId,
        manifest: Manifest,
        images: &BTreeMap<String, Vec<u8>>,
        owner: Owner,
        owner_dh_public: u64,
    ) -> Result<Eid, SpmError> {
        if self.machine.is_failed(asid) {
            return Err(SpmError::PartitionFailed(asid));
        }
        let mos = self
            .partitions
            .get_mut(&asid)
            .ok_or(SpmError::UnknownPartition(asid))?;
        Ok(mos.create_enclave(manifest, images, owner, owner_dh_public)?)
    }

    fn validate_eid(&self, asid: AsId, eid: Eid) -> Result<(), SpmError> {
        let mos = self.mos(asid)?;
        if mos.id() != eid.mos() {
            return Err(SpmError::EidPartitionMismatch {
                eid,
                partition: asid,
            });
        }
        Ok(())
    }

    /// Establishes trusted shared memory between two enclaves in different
    /// partitions (Figure 6 steps 2–3): allocates fresh secure frames,
    /// grants them in both partitions' stage-2 tables, and maps them into
    /// both enclaves' address spaces. A page is shared by exactly one pair
    /// ("a memory page can be shared only once", §IV-D).
    ///
    /// Returns the handle plus both base virtual addresses.
    ///
    /// # Errors
    ///
    /// Failed partitions block sharing; eids must belong to their partitions.
    pub fn share_memory(
        &mut self,
        owner: (AsId, Eid),
        peer: (AsId, Eid),
        pages: usize,
    ) -> Result<(ShareHandle, VirtAddr, VirtAddr), SpmError> {
        let (owner_asid, owner_eid) = owner;
        let (peer_asid, peer_eid) = peer;
        self.validate_eid(owner_asid, owner_eid)?;
        self.validate_eid(peer_asid, peer_eid)?;
        for asid in [owner_asid, peer_asid] {
            if self.machine.is_failed(asid) {
                return Err(SpmError::PartitionFailed(asid));
            }
        }

        let frames = self
            .machine
            .alloc_frames(World::Secure, pages)
            .ok_or(SpmError::OutOfMemory)?;
        let ppns: Vec<u64> = frames.iter().map(|f| f.page()).collect();
        for ppn in &ppns {
            self.machine
                .stage2_grant(owner_asid, *ppn, PagePerms::RW)
                .expect("partition healthy, checked above");
            self.machine
                .stage2_grant(peer_asid, *ppn, PagePerms::RW)
                .expect("partition healthy, checked above");
        }

        let owner_va = self
            .partitions
            .get_mut(&owner_asid)
            .expect("validated")
            .map_pages(owner_eid, &ppns, PagePerms::RW)?;
        let peer_va = self
            .partitions
            .get_mut(&peer_asid)
            .expect("validated")
            .map_pages(peer_eid, &ppns, PagePerms::RW)?;

        let handle = ShareHandle(self.next_share);
        self.next_share += 1;
        self.machine.record(EventKind::MemoryShared {
            from: owner_asid,
            to: peer_asid,
            pages,
        });
        if let Some(rec) = &self.recorder {
            // Both partitions map the pages (Figure 6 steps 2–3).
            rec.charge(
                TimeCategory::Mgmt,
                self.machine.cost().page_map * (2 * pages as u64),
            );
        }
        self.shares.push(ShareRecord {
            handle,
            owner,
            peer,
            pages: ppns,
            frames,
            state: ShareState::Active,
        });
        // Grant on the owner's chain, acceptance on the peer's: the verifier
        // pairs them across chains (causal consistency).
        let at = self.now();
        self.ledger.append(
            owner_asid.as_u32(),
            at,
            SecurityEvent::ShareGranted {
                share: handle.as_u64(),
                owner: owner_asid.as_u32(),
                peer: peer_asid.as_u32(),
                pages: pages as u64,
            },
        );
        self.ledger.append(
            peer_asid.as_u32(),
            at,
            SecurityEvent::ShareAccepted {
                share: handle.as_u64(),
                owner: owner_asid.as_u32(),
                peer: peer_asid.as_u32(),
            },
        );
        Ok((handle, owner_va, peer_va))
    }

    /// Physical pages of a share (tests and the sRPC layer use this).
    ///
    /// # Errors
    ///
    /// [`SpmError::UnknownShare`].
    pub fn share_pages(&self, handle: ShareHandle) -> Result<&[u64], SpmError> {
        self.shares
            .iter()
            .find(|s| s.handle == handle)
            .map(|s| s.pages.as_slice())
            .ok_or(SpmError::UnknownShare(handle))
    }

    // ---- failure detection ------------------------------------------------

    /// Sweeps all partitions for hangs/panics ("the SPM proactively detects
    /// if a P_a hangs by checking the status of P_a's mOS"). Returns the
    /// partitions newly detected as failed.
    pub fn detect_failures(&mut self) -> Vec<AsId> {
        let ids = self.partition_ids();
        let mut newly = Vec::new();
        for asid in ids {
            let failed = self.partitions[&asid].status() == MosStatus::Failed;
            if failed && !self.machine.is_failed(asid) {
                newly.push(asid);
            }
        }
        if let Some(rec) = &self.recorder {
            rec.counter_add("failure.detect_sweeps", &[], 1);
            rec.counter_add("failure.detected", &[], newly.len() as u64);
        }
        let at = self.now();
        for asid in &newly {
            self.ledger.append(
                MONITOR_CHAIN,
                at,
                SecurityEvent::FailureDetected {
                    asid: asid.as_u32(),
                },
            );
        }
        newly
    }

    /// Proceed (failover step 1) for one failed partition: invalidates all
    /// peers' stage-2 + SMMU entries for shared memory and marks the
    /// partition failed. Returns `(invalidated_pages, proceed_time)`.
    ///
    /// # Errors
    ///
    /// [`SpmError::UnknownPartition`].
    pub fn fail_partition(&mut self, asid: AsId) -> Result<(usize, SimNs), SpmError> {
        let mos = self
            .partitions
            .get_mut(&asid)
            .ok_or(SpmError::UnknownPartition(asid))?;
        mos.fail();
        let mut invalidated = 0usize;
        let mut poisoned: Vec<(ShareHandle, AsId)> = Vec::new();
        for share in self
            .shares
            .iter_mut()
            .filter(|s| s.state == ShareState::Active)
        {
            let survivor = if share.owner.0 == asid {
                Some(share.peer.0)
            } else if share.peer.0 == asid {
                Some(share.owner.0)
            } else {
                None
            };
            let Some(survivor) = survivor else { continue };
            for ppn in &share.pages {
                if self.machine.stage2_invalidate(survivor, *ppn) {
                    invalidated += 1;
                }
                // Invalidate the survivor's device DMA path too.
                if let Some(device) = self.device_of.get(&survivor) {
                    let stream = StreamId::new(device.as_u32());
                    self.machine.smmu_mut().invalidate(stream, *ppn);
                }
            }
            share.state = ShareState::Poisoned { survivor };
            poisoned.push((share.handle, survivor));
        }
        self.machine.mark_failed(asid);
        let t = self.machine.cost().page_unmap * (invalidated.max(1) as u64);
        // Phase marker after the PartitionFailed event: tests assert the
        // failed → invalidated → cleared → recovered ordering.
        self.machine
            .record(EventKind::Marker("failover:invalidated"));
        if let Some(rec) = &self.recorder {
            let track = rec.track("recovery");
            let start = rec.total_elapsed();
            rec.complete_span(
                track,
                format!("invalidate {asid}"),
                "recovery",
                start,
                start + t,
            );
            rec.charge_detail(TimeCategory::Recovery, "invalidate", t);
            // The clear+reload work item now waits for recover_partition.
            rec.queue_enqueue("spm.recovery", start);
            self.recovery_enqueued.insert(asid, start);
        }
        let at = self.now();
        self.ledger.append(
            asid.as_u32(),
            at,
            SecurityEvent::PartitionFailed {
                asid: asid.as_u32(),
                invalidated: invalidated as u64,
            },
        );
        for (handle, survivor) in poisoned {
            self.ledger.append(
                survivor.as_u32(),
                at,
                SecurityEvent::SharePoisoned {
                    share: handle.as_u64(),
                    survivor: survivor.as_u32(),
                },
            );
        }
        Ok((invalidated, t))
    }

    /// Clear + reload (failover step 2): zeroes the failed partition's
    /// device and shared memory, restarts its mOS from `image`, and clears
    /// the failed mark. Non-faulting partitions keep running throughout.
    ///
    /// # Errors
    ///
    /// [`SpmError::NotFailed`] if step 1 has not run.
    pub fn recover_partition(
        &mut self,
        asid: AsId,
        image: &[u8],
        version: &str,
    ) -> Result<RecoveryStats, SpmError> {
        if !self.machine.is_failed(asid) {
            return Err(SpmError::NotFailed(asid));
        }
        let mos = self
            .partitions
            .get_mut(&asid)
            .ok_or(SpmError::UnknownPartition(asid))?;

        // Step 2a: clear device + smem of the failed partition.
        let mut cleared_pages = 0usize;
        for share in self
            .shares
            .iter()
            .filter(|s| matches!(s.state, ShareState::Poisoned { .. }))
        {
            if share.owner.0 == asid || share.peer.0 == asid {
                cleared_pages += share.pages.len();
            }
        }
        for share in &self.shares {
            if matches!(share.state, ShareState::Poisoned { .. })
                && (share.owner.0 == asid || share.peer.0 == asid)
            {
                for ppn in &share.pages {
                    self.machine.zero_page(*ppn);
                }
            }
        }
        // Revoke the failed partition's stage-2 view of the shares entirely.
        for share in &self.shares {
            if matches!(share.state, ShareState::Poisoned { .. }) {
                for ppn in &share.pages {
                    if share.owner.0 == asid || share.peer.0 == asid {
                        self.machine.stage2_revoke(asid, *ppn);
                    }
                }
            }
        }
        mos.restart(&mut self.machine, image, version);
        self.machine
            .record(EventKind::PartitionCleared { partition: asid });
        self.machine.mark_recovered(asid);

        let cost = self.machine.cost();
        let stats = RecoveryStats {
            invalidated_pages: cleared_pages,
            proceed_time: cost.page_unmap * (cleared_pages.max(1) as u64),
            clear_time: cost.partition_clear,
            restart_time: cost.mos_restart,
        };
        let recovery_enq = self.recovery_enqueued.remove(&asid);
        if let Some(rec) = &self.recorder {
            let track = rec.track("recovery");
            let t0 = rec.total_elapsed();
            let t1 = t0 + stats.clear_time;
            rec.complete_span(track, format!("clear {asid}"), "recovery", t0, t1);
            rec.complete_span(
                track,
                format!("reload {asid}"),
                "recovery",
                t1,
                t1 + stats.restart_time,
            );
            rec.charge_detail(TimeCategory::Recovery, "clear", stats.clear_time);
            rec.charge_detail(TimeCategory::Recovery, "reload", stats.restart_time);
            if let Some(enq_at) = recovery_enq {
                let service = stats.clear_time + stats.restart_time;
                rec.queue_dequeue(
                    "spm.recovery",
                    t1 + stats.restart_time,
                    t0.saturating_sub(enq_at),
                    service,
                );
            }
        }
        let at = self.now();
        for step in ["clear", "reload"] {
            self.ledger.append(
                asid.as_u32(),
                at,
                SecurityEvent::RecoveryStep {
                    asid: asid.as_u32(),
                    step,
                },
            );
        }
        Ok(stats)
    }

    /// Proactive mOS restart/update: "a P_a or the untrusted OS proactively
    /// requests a restart of the P_a's mOS to the SPM. This is often caused
    /// by a update or configuration of mOS" (§IV-D). Runs the same
    /// proceed → clear → reload pipeline as a crash, so in-flight sharing
    /// peers observe the standard failure signal rather than a silent
    /// substitution.
    ///
    /// # Errors
    ///
    /// [`SpmError::UnknownPartition`].
    pub fn request_update(
        &mut self,
        asid: AsId,
        new_image: &[u8],
        new_version: &str,
    ) -> Result<RecoveryStats, SpmError> {
        self.fail_partition(asid)?;
        self.recover_partition(asid, new_image, new_version)
    }

    /// Trap handling (failover step 3): a surviving enclave faulted on a
    /// poisoned share's page. The SPM unmaps the enclave's stage-1 entries
    /// for the share, reclaims the pages for the survivor (they were zeroed
    /// in step 2), and delivers a failure signal.
    ///
    /// # Errors
    ///
    /// [`SpmError::NoPoisonedShare`] if the faulting page is not part of any
    /// poisoned share the survivor participates in.
    pub fn handle_trap(&mut self, survivor: AsId, ppn: u64) -> Result<TrapOutcome, SpmError> {
        let idx = self
            .shares
            .iter()
            .position(|s| {
                matches!(s.state, ShareState::Poisoned { survivor: sv } if sv == survivor)
                    && s.pages.contains(&ppn)
            })
            .ok_or(SpmError::NoPoisonedShare { ppn })?;

        let (signalled, failed_asid, pages) = {
            let share = &self.shares[idx];
            let (eid, failed_asid) = if share.owner.0 == survivor {
                (share.owner.1, share.peer.0)
            } else {
                (share.peer.1, share.owner.0)
            };
            (eid, failed_asid, share.pages.clone())
        };

        // Unmap the enclave's stage-1 entries mapping the share.
        let unmapped = self
            .partitions
            .get_mut(&survivor)
            .ok_or(SpmError::UnknownPartition(survivor))?
            .unmap_phys_pages(signalled, &pages);

        // Reclaim: zero (defensive; step 2 already cleared if it ran) and
        // revalidate the survivor's stage-2 entries. The failed endpoint's
        // entries are revoked *now*: once the share is marked reclaimed,
        // recovery's sweep (which only visits poisoned shares) will never
        // touch them, and they would otherwise survive as stale writable
        // mappings of pages the survivor reuses (isolation invariant I1).
        for p in &pages {
            self.machine.zero_page(*p);
            self.machine.stage2_revalidate(survivor, *p);
            self.machine.stage2_revoke(failed_asid, *p);
        }
        self.machine.record(EventKind::FailureSignal {
            partition: survivor,
        });
        self.shares[idx].state = ShareState::Reclaimed;
        if let Some(rec) = &self.recorder {
            let t = self.machine.cost().page_unmap * (unmapped.max(1) as u64);
            let track = rec.track("recovery");
            let start = rec.total_elapsed();
            rec.complete_span(
                track,
                format!("trap {survivor}"),
                "recovery",
                start,
                start + t,
            );
            rec.charge_detail(TimeCategory::Recovery, "trap", t);
            // Trap handling is serviced synchronously inside the fault path:
            // zero wait, unmap-time service.
            rec.queue_enqueue("spm.recovery", start);
            rec.queue_dequeue("spm.recovery", start + t, SimNs::ZERO, t);
        }
        let at = self.now();
        self.ledger.append(
            survivor.as_u32(),
            at,
            SecurityEvent::TrapHandled {
                survivor: survivor.as_u32(),
                ppn,
                signalled: signalled.as_u32(),
            },
        );
        // Capture the black box *after* the trap record so the snapshot's
        // ledger tail includes it. Stream snapshots and the mapping digest
        // are annotated by the core layer, which owns those tables.
        self.ledger
            .capture_blackbox(at, survivor.as_u32(), ppn, signalled.as_u32());
        Ok(TrapOutcome {
            signalled,
            unmapped,
            reclaimed: true,
        })
    }

    /// Reclaims a share when the surviving enclave terminates without ever
    /// touching the poisoned memory ("the (invalidated) shared memory is
    /// reclaimed ... after the mEnclave terminates").
    ///
    /// # Errors
    ///
    /// [`SpmError::UnknownShare`].
    pub fn reclaim_share(&mut self, handle: ShareHandle) -> Result<(), SpmError> {
        let share = self
            .shares
            .iter_mut()
            .find(|s| s.handle == handle)
            .ok_or(SpmError::UnknownShare(handle))?;
        for (asid, eid) in [share.owner, share.peer] {
            if let Some(mos) = self.partitions.get_mut(&asid) {
                mos.unmap_phys_pages(eid, &share.pages);
            }
            for ppn in &share.pages {
                self.machine.stage2_revoke(asid, *ppn);
            }
        }
        for frame in share.frames.drain(..) {
            self.machine.free_frame(frame);
        }
        share.state = ShareState::Reclaimed;
        let owner_chain = share.owner.0.as_u32();
        let at = self.now();
        self.ledger.append(
            owner_chain,
            at,
            SecurityEvent::ShareReclaimed {
                share: handle.as_u64(),
            },
        );
        Ok(())
    }

    /// Builds and signs the attestation report for a partition (§IV-A).
    ///
    /// # Errors
    ///
    /// [`SpmError::UnknownPartition`].
    pub fn make_report(&self, asid: AsId) -> Result<SignedReport, SpmError> {
        let mos = self.mos(asid)?;
        let device_id = self.device_of[&asid];
        let (vendor, endorsement) = self.vendors[&device_id].clone();
        let dt_digest = self
            .machine
            .devtree()
            .map(|dt| measure("devtree", &dt.canonical_bytes()))
            .unwrap_or(cronus_crypto::Digest::ZERO);
        let report = AttestationReport {
            mos_id: mos.id(),
            mos_digest: mos.image_digest(),
            mos_version: mos.version().to_string(),
            enclaves: mos.manager().enclave_measurements(),
            devtree_digest: dt_digest,
            device: mos.hal().attest_device(),
            vendor,
            device_endorsement: endorsement,
        };
        let signature = self.monitor.sign_report(&report.digest());
        // Ledger the measurement the monitor just signed (interior
        // mutability: report generation is a read-only SPM operation).
        self.ledger.append(
            asid.as_u32(),
            self.now(),
            SecurityEvent::AttestMeasurement {
                subject: format!("report {asid}"),
                digest: report.digest(),
            },
        );
        Ok(SignedReport {
            report,
            atk_public: self.monitor.atk_public(),
            atk_endorsement: self.monitor.atk_endorsement(),
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cronus_sim::Fault;

    fn two_partition_config() -> BootConfig {
        BootConfig {
            partitions: vec![
                PartitionSpec::new(1, b"cpu-mos", "v1", DeviceSpec::Cpu),
                PartitionSpec::new(
                    2,
                    b"cuda-mos",
                    "v3",
                    DeviceSpec::Gpu {
                        memory: 1 << 24,
                        sms: 46,
                    },
                ),
            ],
            ..Default::default()
        }
    }

    fn booted() -> Spm {
        Spm::boot(two_partition_config())
    }

    fn create_pair(spm: &mut Spm) -> ((AsId, Eid), (AsId, Eid)) {
        let cpu = asid_of(MosId(1));
        let gpu = asid_of(MosId(2));
        let a = spm
            .create_enclave(
                cpu,
                Manifest::new(DeviceKind::Cpu),
                &BTreeMap::new(),
                Owner::App(1),
                7,
            )
            .unwrap();
        let b = spm
            .create_enclave(
                gpu,
                Manifest::new(DeviceKind::Gpu).with_memory(1 << 20),
                &BTreeMap::new(),
                Owner::Enclave(a),
                7,
            )
            .unwrap();
        ((cpu, a), (gpu, b))
    }

    #[test]
    fn boot_creates_partitions_and_locks_tzpc() {
        let spm = booted();
        assert_eq!(spm.partition_ids().len(), 2);
        assert!(spm.machine().tzpc().is_locked());
        assert!(spm.machine().devtree().is_some());
        assert_eq!(
            spm.partition_of_kind(DeviceKind::Gpu),
            Some(asid_of(MosId(2)))
        );
        assert_eq!(spm.partition_of_kind(DeviceKind::Npu), None);
    }

    #[test]
    fn shared_memory_is_readable_by_both_sides() {
        let mut spm = booted();
        let (owner, peer) = create_pair(&mut spm);
        let (_h, owner_va, peer_va) = spm.share_memory(owner, peer, 2).unwrap();

        let (mos_a, machine) = spm.mos_and_machine(owner.0).unwrap();
        mos_a
            .enclave_write(machine, owner.1, owner_va, b"ring-entry")
            .unwrap();

        let (mos_b, machine) = spm.mos_and_machine(peer.0).unwrap();
        let mut buf = [0u8; 10];
        mos_b
            .enclave_read(machine, peer.1, peer_va, &mut buf)
            .unwrap();
        assert_eq!(&buf, b"ring-entry");
    }

    #[test]
    fn eid_partition_mismatch_rejected() {
        let mut spm = booted();
        let (owner, peer) = create_pair(&mut spm);
        // Swap the eids: the SPM validates the mOS part of each eid.
        let err = spm.share_memory((owner.0, peer.1), peer, 1).unwrap_err();
        assert!(matches!(err, SpmError::EidPartitionMismatch { .. }));
    }

    #[test]
    fn proceed_invalidates_survivor_stage2() {
        let mut spm = booted();
        let (owner, peer) = create_pair(&mut spm);
        let (_h, owner_va, _) = spm.share_memory(owner, peer, 1).unwrap();

        let (invalidated, t) = spm.fail_partition(peer.0).unwrap();
        assert_eq!(invalidated, 1);
        assert!(t > SimNs::ZERO);

        // The survivor's next access faults (TOCTOU window closed).
        let (mos_a, machine) = spm.mos_and_machine(owner.0).unwrap();
        let err = mos_a
            .enclave_write(machine, owner.1, owner_va, b"leak?")
            .unwrap_err();
        assert!(matches!(err, MosError::Fault(f) if f.is_stage2()));

        // New sharing with the failed partition is blocked.
        let err = spm.share_memory(owner, peer, 1).unwrap_err();
        assert_eq!(err, SpmError::PartitionFailed(peer.0));
    }

    #[test]
    fn recover_clears_and_restarts_only_faulting_partition() {
        let mut spm = booted();
        let (owner, peer) = create_pair(&mut spm);
        let (h, _, _) = spm.share_memory(owner, peer, 1).unwrap();
        let page = spm.share_pages(h).unwrap()[0];

        // Put secret data in the shared page via raw write (the enclave path
        // is already tested).
        spm.machine_mut()
            .phys_write(World::Secure, PhysAddr::from_page_number(page), b"secret")
            .unwrap();

        spm.fail_partition(peer.0).unwrap();
        let stats = spm.recover_partition(peer.0, b"cuda-mos-v4", "v4").unwrap();
        assert!(
            stats.total() < SimNs::from_secs(1),
            "recovery in sub-second range"
        );
        assert!(stats.total() > SimNs::from_millis(100));

        // Crashed information cleared (A3).
        let data = spm
            .machine_mut()
            .phys_read_vec(World::Secure, PhysAddr::from_page_number(page), 6)
            .unwrap();
        assert_eq!(data, vec![0u8; 6]);

        // The recovered mOS runs the new image; the CPU partition never stopped.
        assert_eq!(spm.mos(peer.0).unwrap().version(), "v4");
        assert_eq!(spm.mos(peer.0).unwrap().status(), MosStatus::Running);
        assert_eq!(spm.mos(owner.0).unwrap().status(), MosStatus::Running);
        assert!(!spm.machine().is_failed(peer.0));
    }

    #[test]
    fn trap_unmaps_signals_and_reclaims() {
        let mut spm = booted();
        let (owner, peer) = create_pair(&mut spm);
        let (h, owner_va, _) = spm.share_memory(owner, peer, 1).unwrap();
        let page = spm.share_pages(h).unwrap()[0];

        spm.fail_partition(peer.0).unwrap();
        spm.recover_partition(peer.0, b"cuda-mos", "v3").unwrap();

        // Survivor touches the poisoned memory: stage-2 fault.
        let (mos_a, machine) = spm.mos_and_machine(owner.0).unwrap();
        let mut buf = [0u8; 1];
        let err = mos_a
            .enclave_read(machine, owner.1, owner_va, &mut buf)
            .unwrap_err();
        let MosError::Fault(Fault::Stage2Unmapped { .. }) = err else {
            panic!("expected stage-2 fault, got {err:?}");
        };

        // The SPM handles the trap.
        let outcome = spm.handle_trap(owner.0, page).unwrap();
        assert_eq!(outcome.signalled, owner.1);
        assert_eq!(outcome.unmapped, 1);
        assert!(outcome.reclaimed);

        // After the trap, the enclave's stage-1 mapping is gone entirely.
        let (mos_a, machine) = spm.mos_and_machine(owner.0).unwrap();
        let err = mos_a
            .enclave_read(machine, owner.1, owner_va, &mut buf)
            .unwrap_err();
        assert!(matches!(err, MosError::Fault(Fault::Stage1Unmapped { .. })));

        // A second trap on the same page is not found (already reclaimed).
        assert!(spm.handle_trap(owner.0, page).is_err());
    }

    #[test]
    fn detect_failures_finds_panicked_mos() {
        let mut spm = booted();
        let gpu = asid_of(MosId(2));
        assert!(spm.detect_failures().is_empty());
        spm.mos_mut(gpu).unwrap().fail();
        assert_eq!(spm.detect_failures(), vec![gpu]);
        spm.fail_partition(gpu).unwrap();
        // Once marked in the machine, it is no longer "newly" failed.
        assert!(spm.detect_failures().is_empty());
    }

    #[test]
    fn proactive_update_swaps_mos_version() {
        let mut spm = booted();
        let (owner, peer) = create_pair(&mut spm);
        let (_h, owner_va, _) = spm.share_memory(owner, peer, 1).unwrap();
        let stats = spm.request_update(peer.0, b"cuda-mos-v4", "v4").unwrap();
        assert!(stats.total() < SimNs::from_secs(1));
        assert_eq!(spm.mos(peer.0).unwrap().version(), "v4");
        // Peers of the updated partition get the standard failure signal on
        // their next shared-memory access — no silent substitution.
        let (mos_a, machine) = spm.mos_and_machine(owner.0).unwrap();
        let err = mos_a
            .enclave_write(machine, owner.1, owner_va, b"x")
            .unwrap_err();
        assert!(matches!(err, MosError::Fault(f) if f.is_stage2()));
    }

    #[test]
    fn recover_healthy_partition_rejected() {
        let mut spm = booted();
        let gpu = asid_of(MosId(2));
        assert_eq!(
            spm.recover_partition(gpu, b"img", "v").unwrap_err(),
            SpmError::NotFailed(gpu)
        );
    }

    #[test]
    fn reclaim_share_frees_frames() {
        let mut spm = booted();
        let (owner, peer) = create_pair(&mut spm);
        let free_before = spm.machine().free_pages(World::Secure);
        let (h, _, _) = spm.share_memory(owner, peer, 3).unwrap();
        assert_eq!(spm.machine().free_pages(World::Secure), free_before - 3);
        spm.reclaim_share(h).unwrap();
        assert_eq!(spm.machine().free_pages(World::Secure), free_before);
    }

    #[test]
    fn attestation_report_covers_partition() {
        use crate::attest::{ClientVerifier, Expectations};
        let mut spm = booted();
        let (_, peer) = create_pair(&mut spm);
        let signed = spm.make_report(peer.0).unwrap();
        assert_eq!(signed.report.mos_id, MosId(2));
        assert_eq!(signed.report.enclaves.len(), 1);

        let mut verifier = ClientVerifier::new(spm.monitor().platform_public());
        verifier.add_vendor("nvidia", vendor_keypair("nvidia").public());
        verifier
            .verify(
                &signed,
                &Expectations {
                    mos_digest: Some(measure("mos-image", b"cuda-mos")),
                    enclaves: signed.report.enclaves.clone(),
                    devtree_digest: Some(signed.report.devtree_digest),
                },
            )
            .unwrap();
    }

    #[test]
    fn concurrent_failures_serialize_step1() {
        let mut config = two_partition_config();
        config.partitions.push(PartitionSpec::new(
            3,
            b"npu-mos",
            "v1",
            DeviceSpec::Npu { memory: 1 << 24 },
        ));
        let mut spm = Spm::boot(config);
        let (owner, peer) = create_pair(&mut spm);
        let npu = asid_of(MosId(3));
        let c = spm
            .create_enclave(
                npu,
                Manifest::new(DeviceKind::Npu).with_memory(1 << 20),
                &BTreeMap::new(),
                Owner::Enclave(owner.1),
                7,
            )
            .unwrap();
        spm.share_memory(owner, peer, 1).unwrap();
        spm.share_memory(owner, (npu, c), 1).unwrap();

        // Both accelerator partitions fail "concurrently"; step 1 runs
        // serially per the paper, steps 2–3 independently.
        spm.fail_partition(peer.0).unwrap();
        spm.fail_partition(npu).unwrap();
        spm.recover_partition(peer.0, b"cuda-mos", "v3").unwrap();
        spm.recover_partition(npu, b"npu-mos", "v1").unwrap();
        assert!(!spm.machine().is_failed(peer.0));
        assert!(!spm.machine().is_failed(npu));
        // The CPU partition survived both.
        assert_eq!(spm.mos(owner.0).unwrap().status(), MosStatus::Running);
    }
}
