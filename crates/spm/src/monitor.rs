//! The secure monitor (EL3).
//!
//! "CRONUS adopts the same root of trust (a secret key (PubK, PvK)) for the
//! platform ... CRONUS's secure monitor proves the ownership of the root key
//! for generating an attestation key (AtK)" (§IV-A). Local attestation uses
//! "a local seal key LSK in SM".

use cronus_crypto::{Digest, KeyPair, PublicKey, Signature};

/// The secure monitor's key material and signing services.
pub struct SecureMonitor {
    platform: KeyPair,
    atk: KeyPair,
    lsk: KeyPair,
}

impl std::fmt::Debug for SecureMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureMonitor")
            .field("platform_public", &self.platform.public())
            .field("atk_public", &self.atk.public())
            .finish_non_exhaustive()
    }
}

impl SecureMonitor {
    /// Boots the monitor with the platform root key derived from
    /// `platform_seed` (standing in for the fused ROM secret).
    pub fn new(platform_seed: &str) -> Self {
        let platform = KeyPair::from_seed(platform_seed);
        let atk = platform.derive("attestation-key");
        let lsk = platform.derive("local-seal-key");
        SecureMonitor { platform, atk, lsk }
    }

    /// The platform public key (`PubK`), known to the attestation service.
    pub fn platform_public(&self) -> PublicKey {
        self.platform.public()
    }

    /// The attestation public key (`AtK`'s public half) sent to clients.
    pub fn atk_public(&self) -> PublicKey {
        self.atk.public()
    }

    /// The platform's endorsement of `AtK` — clients "verify that AtK is
    /// endorsed by the attestation service".
    pub fn atk_endorsement(&self) -> Signature {
        self.platform.sign(&self.atk.public().0.to_le_bytes())
    }

    /// Signs a remote attestation report digest with `AtK`.
    pub fn sign_report(&self, report_digest: &Digest) -> Signature {
        self.atk.sign_digest(report_digest)
    }

    /// Seals a *local* measurement report with `LSK` (never leaves the
    /// machine; co-located enclaves verify via [`SecureMonitor::verify_local`]).
    pub fn seal_local(&self, report_digest: &Digest) -> Signature {
        self.lsk.sign_digest(report_digest)
    }

    /// Verifies a local seal. Only the SPM on the same machine can do this,
    /// which is exactly the co-location proof local attestation needs.
    pub fn verify_local(&self, report_digest: &Digest, sig: &Signature) -> bool {
        self.lsk.public().verify_digest(report_digest, sig).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cronus_crypto::sha256;

    #[test]
    fn atk_is_endorsed_by_platform() {
        let sm = SecureMonitor::new("platform-root");
        let endorsement = sm.atk_endorsement();
        assert!(sm
            .platform_public()
            .verify(&sm.atk_public().0.to_le_bytes(), &endorsement)
            .is_ok());
    }

    #[test]
    fn report_signatures_verify_under_atk() {
        let sm = SecureMonitor::new("platform-root");
        let digest = sha256(b"report");
        let sig = sm.sign_report(&digest);
        assert!(sm.atk_public().verify_digest(&digest, &sig).is_ok());
        // And not under the platform key.
        assert!(sm.platform_public().verify_digest(&digest, &sig).is_err());
    }

    #[test]
    fn local_seal_round_trip() {
        let sm = SecureMonitor::new("platform-root");
        let digest = sha256(b"local measurement");
        let sig = sm.seal_local(&digest);
        assert!(sm.verify_local(&digest, &sig));
        assert!(!sm.verify_local(&sha256(b"other"), &sig));
        // A different machine's monitor cannot forge local seals.
        let other = SecureMonitor::new("other-machine");
        assert!(!other.verify_local(&digest, &sig));
    }

    #[test]
    fn different_seeds_are_different_platforms() {
        let a = SecureMonitor::new("a");
        let b = SecureMonitor::new("b");
        assert_ne!(a.platform_public(), b.platform_public());
        assert_ne!(a.atk_public(), b.atk_public());
    }
}
