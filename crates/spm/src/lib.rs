//! # cronus-spm — the Secure Partition Manager and secure monitor
//!
//! The SPM "runs as the hypervisor in the secure world and isolates physical
//! resources (e.g., memory and devices) into different partitions" (§II-A).
//! This crate provides:
//!
//! * [`monitor::SecureMonitor`] — the EL3 root of trust: holds the platform
//!   key `(PubK, PvK)`, derives the attestation key `AtK` and the local seal
//!   key `LSK`, and signs attestation reports (§IV-A);
//! * [`attest`] — remote and local attestation report structures and their
//!   client-side verification, including device-tree and accelerator
//!   authenticity checks;
//! * [`spm::Spm`] — partition lifecycle (boot, per-partition mOS + device),
//!   trusted shared memory between partitions (Figure 6), failure detection,
//!   and the **proceed-trap** failover protocol of §IV-D: invalidate all
//!   peers' stage-2/SMMU entries, mark the partition failed, clear device
//!   and shared memory, reload the mOS, and convert subsequent accesses into
//!   failure signals.

pub mod attest;
pub mod monitor;
pub mod spm;

pub use attest::{
    AttestationError, AttestationReport, ClientVerifier, LocalAttestation, SignedReport,
};
pub use monitor::SecureMonitor;
pub use spm::{BootConfig, PartitionSpec, RecoveryStats, ShareHandle, Spm, SpmError};
