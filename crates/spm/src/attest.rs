//! Remote and local attestation (§IV-A).
//!
//! CRONUS extends two-phase attestation to a *dynamic* TEE platform: the
//! client first verifies a closure of hardware and software state — mOS
//! hashes, mEnclave hashes, the validated device tree, and each
//! accelerator's authenticity key — and then relies on local attestation for
//! mEnclaves created later, "so a client does not need to attest an mEnclave
//! each time it is created".

use std::collections::HashMap;
use std::fmt;

use cronus_crypto::hmac::{hmac_sha256, verify_hmac};
use cronus_crypto::{Digest, PublicKey, Sha256, Signature};
use cronus_mos::hal::DeviceAttestation;
use cronus_mos::manifest::{Eid, MosId};

use crate::monitor::SecureMonitor;

/// The complete attestation report for one partition:
/// `(hash(mEnclave), hash(mOS), DT, PubK_acc)` signed by `AtK` (§IV-A).
#[derive(Clone, Debug)]
pub struct AttestationReport {
    /// The attested mOS.
    pub mos_id: MosId,
    /// Measured mOS image hash.
    pub mos_digest: Digest,
    /// mOS software version string.
    pub mos_version: String,
    /// Measurements of the partition's live mEnclaves.
    pub enclaves: Vec<(Eid, Digest)>,
    /// Hash of the boot device tree.
    pub devtree_digest: Digest,
    /// The accelerator's authenticity evidence.
    pub device: DeviceAttestation,
    /// The accelerator vendor name the client should resolve an endorsement
    /// key for.
    pub vendor: String,
    /// The vendor's endorsement of the device key (`Sign_vendor(PubK_acc)`).
    pub device_endorsement: Signature,
}

impl AttestationReport {
    /// Canonical digest of the report contents.
    pub fn digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(&[self.mos_id.0]);
        h.update(self.mos_digest.as_bytes());
        h.update(self.mos_version.as_bytes());
        h.update(&[0]);
        for (eid, d) in &self.enclaves {
            h.update(&eid.as_u32().to_le_bytes());
            h.update(d.as_bytes());
        }
        h.update(self.devtree_digest.as_bytes());
        h.update(&self.device.rot_public.0.to_le_bytes());
        h.update(&self.device.config);
        h.update(self.vendor.as_bytes());
        h.finalize()
    }
}

/// A report signed by the monitor's attestation key.
#[derive(Clone, Debug)]
pub struct SignedReport {
    /// The report body.
    pub report: AttestationReport,
    /// `AtK`'s public half.
    pub atk_public: PublicKey,
    /// The platform's endorsement of `AtK`.
    pub atk_endorsement: Signature,
    /// Signature over [`AttestationReport::digest`] by `AtK`.
    pub signature: Signature,
}

/// Why client verification failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttestationError {
    /// `AtK` is not endorsed by the attestation service's key.
    BadAtkEndorsement,
    /// The report signature does not verify under `AtK`.
    BadReportSignature,
    /// The device's self-signature over its configuration failed.
    BadDeviceSignature,
    /// The client has no endorsement key for this vendor.
    UnknownVendor(String),
    /// The vendor endorsement of `PubK_acc` failed — a fabricated device.
    BadVendorEndorsement,
    /// mOS hash differs from the client's expectation.
    MosDigestMismatch { expected: Digest, actual: Digest },
    /// A required enclave measurement is missing or different.
    EnclaveMeasurementMismatch { eid: Eid },
    /// Device tree hash differs from the client's expectation.
    DevtreeMismatch { expected: Digest, actual: Digest },
}

impl fmt::Display for AttestationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttestationError::BadAtkEndorsement => f.write_str("atk not endorsed by platform"),
            AttestationError::BadReportSignature => f.write_str("report signature invalid"),
            AttestationError::BadDeviceSignature => {
                f.write_str("device config self-signature invalid")
            }
            AttestationError::UnknownVendor(v) => write!(f, "unknown vendor {v:?}"),
            AttestationError::BadVendorEndorsement => {
                f.write_str("device key not endorsed by its vendor")
            }
            AttestationError::MosDigestMismatch { .. } => f.write_str("mos hash mismatch"),
            AttestationError::EnclaveMeasurementMismatch { eid } => {
                write!(f, "enclave {eid} measurement mismatch")
            }
            AttestationError::DevtreeMismatch { .. } => f.write_str("device tree hash mismatch"),
        }
    }
}

impl std::error::Error for AttestationError {}

/// What the client expects the platform to look like.
#[derive(Clone, Debug, Default)]
pub struct Expectations {
    /// Expected mOS image hash (the version of the mOS the service chose).
    pub mos_digest: Option<Digest>,
    /// Expected measurements for specific enclaves.
    pub enclaves: Vec<(Eid, Digest)>,
    /// Expected device tree hash.
    pub devtree_digest: Option<Digest>,
}

/// The client side of remote attestation.
#[derive(Clone, Debug)]
pub struct ClientVerifier {
    attestation_service: PublicKey,
    vendors: HashMap<String, PublicKey>,
}

impl ClientVerifier {
    /// Creates a verifier trusting the given attestation-service key (the
    /// platform's `PubK`).
    pub fn new(attestation_service: PublicKey) -> Self {
        ClientVerifier {
            attestation_service,
            vendors: HashMap::new(),
        }
    }

    /// Registers a vendor's endorsement key.
    pub fn add_vendor(&mut self, name: &str, key: PublicKey) -> &mut Self {
        self.vendors.insert(name.to_string(), key);
        self
    }

    /// Verifies a signed report against `expectations`.
    ///
    /// # Errors
    ///
    /// The first failed check, in the order: AtK endorsement, report
    /// signature, device self-signature, vendor endorsement, mOS digest,
    /// enclave measurements, device tree digest.
    pub fn verify(
        &self,
        signed: &SignedReport,
        expectations: &Expectations,
    ) -> Result<(), AttestationError> {
        // 1. AtK is endorsed by the attestation service.
        if self
            .attestation_service
            .verify(&signed.atk_public.0.to_le_bytes(), &signed.atk_endorsement)
            .is_err()
        {
            return Err(AttestationError::BadAtkEndorsement);
        }
        // 2. The report is signed by AtK.
        if signed
            .atk_public
            .verify_digest(&signed.report.digest(), &signed.signature)
            .is_err()
        {
            return Err(AttestationError::BadReportSignature);
        }
        // 3. The device signed its configuration with PvK_acc.
        if !signed.report.device.verify_self() {
            return Err(AttestationError::BadDeviceSignature);
        }
        // 4. PubK_acc is endorsed by the vendor.
        let vendor_key = self
            .vendors
            .get(&signed.report.vendor)
            .ok_or_else(|| AttestationError::UnknownVendor(signed.report.vendor.clone()))?;
        if !cronus_devices::verify_endorsement(
            *vendor_key,
            signed.report.device.rot_public,
            &signed.report.device_endorsement,
        ) {
            return Err(AttestationError::BadVendorEndorsement);
        }
        // 5..7. Software/configuration expectations.
        if let Some(expected) = expectations.mos_digest {
            if expected != signed.report.mos_digest {
                return Err(AttestationError::MosDigestMismatch {
                    expected,
                    actual: signed.report.mos_digest,
                });
            }
        }
        for (eid, expected) in &expectations.enclaves {
            match signed.report.enclaves.iter().find(|(e, _)| e == eid) {
                Some((_, actual)) if actual == expected => {}
                _ => return Err(AttestationError::EnclaveMeasurementMismatch { eid: *eid }),
            }
        }
        if let Some(expected) = expectations.devtree_digest {
            if expected != signed.report.devtree_digest {
                return Err(AttestationError::DevtreeMismatch {
                    expected,
                    actual: signed.report.devtree_digest,
                });
            }
        }
        Ok(())
    }
}

/// Local attestation (§IV-A): three steps between co-located mEnclaves.
///
/// 1. The challenger sends a request *via untrusted memory*, authenticated
///    under `secret_dhke`.
/// 2. The attested enclave obtains a measurement report sealed by the secure
///    monitor's `LSK` and tags it under `secret_dhke`.
/// 3. The challenger checks the tag (right peer) and the seal (co-located,
///    correct identity).
#[derive(Clone, Debug)]
pub struct LocalAttestation {
    /// Challenger's eid.
    pub challenger: Eid,
    /// Attested enclave's eid.
    pub attested: Eid,
    /// Fresh challenge nonce.
    pub nonce: u64,
}

impl LocalAttestation {
    fn request_bytes(&self) -> Vec<u8> {
        let mut out = b"local-attest-req".to_vec();
        out.extend_from_slice(&self.challenger.as_u32().to_le_bytes());
        out.extend_from_slice(&self.attested.as_u32().to_le_bytes());
        out.extend_from_slice(&self.nonce.to_le_bytes());
        out
    }

    fn report_digest(&self, measurement: &Digest) -> Digest {
        let mut h = Sha256::new();
        h.update(b"local-attest-report");
        h.update(&self.attested.as_u32().to_le_bytes());
        h.update(measurement.as_bytes());
        h.update(&self.nonce.to_le_bytes());
        h.finalize()
    }

    /// Step 1: the challenger authenticates the request under the shared
    /// secret.
    pub fn make_request_tag(&self, secret: &[u8]) -> Digest {
        hmac_sha256(secret, &self.request_bytes())
    }

    /// Step 2 (attested side): checks the request tag, then produces the
    /// sealed measurement report and its tag. Returns `None` if the request
    /// is not authentic (a forged challenger).
    pub fn answer(
        &self,
        secret: &[u8],
        request_tag: &Digest,
        measurement: Digest,
        sm: &SecureMonitor,
    ) -> Option<(Signature, Digest)> {
        if !verify_hmac(secret, &self.request_bytes(), request_tag) {
            return None;
        }
        let digest = self.report_digest(&measurement);
        let seal = sm.seal_local(&digest);
        let tag = hmac_sha256(secret, digest.as_bytes());
        Some((seal, tag))
    }

    /// Step 3 (challenger side): verifies the report came from the right
    /// peer (`secret_dhke` tag) and was sealed by the co-located monitor.
    pub fn verify(
        &self,
        secret: &[u8],
        measurement: Digest,
        seal: &Signature,
        tag: &Digest,
        sm: &SecureMonitor,
    ) -> bool {
        let digest = self.report_digest(&measurement);
        verify_hmac(secret, digest.as_bytes(), tag) && sm.verify_local(&digest, seal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cronus_crypto::measure;
    use cronus_devices::gpu::GpuDevice;
    use cronus_devices::{endorse_device, vendor_keypair, SimDevice};
    use cronus_mos::hal::DeviceHal;
    use cronus_sim::tzpc::DeviceId;
    use cronus_sim::StreamId;

    fn sample_signed_report(sm: &SecureMonitor) -> SignedReport {
        let gpu = GpuDevice::gtx2080(DeviceId::new(1), StreamId::new(1));
        let vendor = vendor_keypair("nvidia");
        let endorsement = endorse_device(&vendor, gpu.rot_public());
        let hal = DeviceHal::Gpu(gpu);
        let report = AttestationReport {
            mos_id: MosId(2),
            mos_digest: measure("mos-image", b"cuda-mos"),
            mos_version: "v3".into(),
            enclaves: vec![(Eid::new(MosId(2), 1), measure("manifest", b"m"))],
            devtree_digest: measure("devtree", b"dt"),
            device: hal.attest_device(),
            vendor: "nvidia".into(),
            device_endorsement: endorsement,
        };
        let signature = sm.sign_report(&report.digest());
        SignedReport {
            report,
            atk_public: sm.atk_public(),
            atk_endorsement: sm.atk_endorsement(),
            signature,
        }
    }

    fn verifier(sm: &SecureMonitor) -> ClientVerifier {
        let mut v = ClientVerifier::new(sm.platform_public());
        v.add_vendor("nvidia", vendor_keypair("nvidia").public());
        v
    }

    #[test]
    fn honest_report_verifies() {
        let sm = SecureMonitor::new("platform");
        let signed = sample_signed_report(&sm);
        verifier(&sm)
            .verify(&signed, &Expectations::default())
            .unwrap();
    }

    #[test]
    fn expectations_checked() {
        let sm = SecureMonitor::new("platform");
        let signed = sample_signed_report(&sm);
        let v = verifier(&sm);
        let good = Expectations {
            mos_digest: Some(signed.report.mos_digest),
            enclaves: signed.report.enclaves.clone(),
            devtree_digest: Some(signed.report.devtree_digest),
        };
        v.verify(&signed, &good).unwrap();

        let bad_mos = Expectations {
            mos_digest: Some(measure("mos-image", b"other")),
            ..Default::default()
        };
        assert!(matches!(
            v.verify(&signed, &bad_mos).unwrap_err(),
            AttestationError::MosDigestMismatch { .. }
        ));

        let bad_enclave = Expectations {
            enclaves: vec![(Eid::new(MosId(2), 99), measure("manifest", b"m"))],
            ..Default::default()
        };
        assert!(matches!(
            v.verify(&signed, &bad_enclave).unwrap_err(),
            AttestationError::EnclaveMeasurementMismatch { .. }
        ));

        let bad_dt = Expectations {
            devtree_digest: Some(measure("devtree", b"tampered")),
            ..Default::default()
        };
        assert!(matches!(
            v.verify(&signed, &bad_dt).unwrap_err(),
            AttestationError::DevtreeMismatch { .. }
        ));
    }

    #[test]
    fn tampered_report_rejected() {
        let sm = SecureMonitor::new("platform");
        let mut signed = sample_signed_report(&sm);
        signed.report.mos_version = "vEVIL".into();
        assert_eq!(
            verifier(&sm)
                .verify(&signed, &Expectations::default())
                .unwrap_err(),
            AttestationError::BadReportSignature
        );
    }

    #[test]
    fn wrong_platform_rejected() {
        let sm = SecureMonitor::new("platform");
        let evil = SecureMonitor::new("evil-platform");
        let signed = sample_signed_report(&evil);
        assert_eq!(
            verifier(&sm)
                .verify(&signed, &Expectations::default())
                .unwrap_err(),
            AttestationError::BadAtkEndorsement
        );
    }

    #[test]
    fn fabricated_accelerator_rejected() {
        // A device whose key is NOT endorsed by the claimed vendor.
        let sm = SecureMonitor::new("platform");
        let mut signed = sample_signed_report(&sm);
        let fake_vendor = vendor_keypair("fabricator");
        signed.report.device_endorsement =
            endorse_device(&fake_vendor, signed.report.device.rot_public);
        // Re-sign so only the endorsement is wrong.
        signed.signature = sm.sign_report(&signed.report.digest());
        assert_eq!(
            verifier(&sm)
                .verify(&signed, &Expectations::default())
                .unwrap_err(),
            AttestationError::BadVendorEndorsement
        );
    }

    #[test]
    fn unknown_vendor_rejected() {
        let sm = SecureMonitor::new("platform");
        let mut signed = sample_signed_report(&sm);
        signed.report.vendor = "unheard-of".into();
        signed.signature = sm.sign_report(&signed.report.digest());
        assert!(matches!(
            verifier(&sm)
                .verify(&signed, &Expectations::default())
                .unwrap_err(),
            AttestationError::UnknownVendor(_)
        ));
    }

    #[test]
    fn local_attestation_happy_path() {
        let sm = SecureMonitor::new("platform");
        let secret = [9u8; 32];
        let la = LocalAttestation {
            challenger: Eid::new(MosId(1), 1),
            attested: Eid::new(MosId(2), 1),
            nonce: 777,
        };
        let measurement = measure("manifest", b"gpu-enclave");
        let req_tag = la.make_request_tag(&secret);
        let (seal, tag) = la.answer(&secret, &req_tag, measurement, &sm).unwrap();
        assert!(la.verify(&secret, measurement, &seal, &tag, &sm));
    }

    #[test]
    fn local_attestation_rejects_forged_request() {
        let sm = SecureMonitor::new("platform");
        let la = LocalAttestation {
            challenger: Eid::new(MosId(1), 1),
            attested: Eid::new(MosId(2), 1),
            nonce: 1,
        };
        let wrong_secret = [1u8; 32];
        let req_tag = la.make_request_tag(&wrong_secret);
        // The attested side holds a different secret.
        assert!(la.answer(&[2u8; 32], &req_tag, Digest::ZERO, &sm).is_none());
    }

    #[test]
    fn local_attestation_rejects_substituted_enclave() {
        // After a crash, a malicious mOS substitutes an enclave with the same
        // eid but a different measurement/secret; verification fails.
        let sm = SecureMonitor::new("platform");
        let secret = [9u8; 32];
        let la = LocalAttestation {
            challenger: Eid::new(MosId(1), 1),
            attested: Eid::new(MosId(2), 1),
            nonce: 3,
        };
        let honest = measure("manifest", b"honest");
        let evil = measure("manifest", b"evil");
        let req_tag = la.make_request_tag(&secret);
        // The substituted enclave doesn't know secret_dhke; simulate it
        // sealing with the right monitor but wrong secret.
        let (seal, tag) = la.answer(&secret, &req_tag, evil, &sm).unwrap();
        assert!(!la.verify(&secret, honest, &seal, &tag, &sm));
    }

    #[test]
    fn local_attestation_rejects_other_machine() {
        let sm = SecureMonitor::new("platform");
        let remote = SecureMonitor::new("remote-machine");
        let secret = [9u8; 32];
        let la = LocalAttestation {
            challenger: Eid::new(MosId(1), 1),
            attested: Eid::new(MosId(2), 1),
            nonce: 4,
        };
        let m = measure("manifest", b"x");
        let req_tag = la.make_request_tag(&secret);
        let (seal, tag) = la.answer(&secret, &req_tag, m, &remote).unwrap();
        // Verifier checks against the local monitor: not co-located => fail.
        assert!(!la.verify(&secret, m, &seal, &tag, &sm));
    }
}
