//! Property-based tests for the SPM's sharing and failover invariants.
//!
//! The full generated suite lives in the gated `full` module (enable with the
//! non-default `proptest` feature, e.g. `cargo test --all-features`); the
//! `smoke` module keeps a deterministic subset always on.

#[cfg(feature = "proptest")]
mod full {
    use std::collections::BTreeMap;

    use proptest::prelude::*;

    use cronus_devices::DeviceKind;
    use cronus_mos::manager::Owner;
    use cronus_mos::manifest::{Manifest, MosId};
    use cronus_sim::{PhysAddr, World};
    use cronus_spm::spm::{asid_of, BootConfig, DeviceSpec, PartitionSpec, Spm};

    fn boot() -> Spm {
        Spm::boot(BootConfig {
            partitions: vec![
                PartitionSpec::new(1, b"cpu-mos", "v1", DeviceSpec::Cpu),
                PartitionSpec::new(
                    2,
                    b"cuda-mos",
                    "v3",
                    DeviceSpec::Gpu {
                        memory: 1 << 26,
                        sms: 46,
                    },
                ),
            ],
            ..Default::default()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Share → fail → recover → reclaim conserves secure memory for any
        /// number of shares of any size, and the recovered partition always
        /// comes back clean.
        #[test]
        fn failover_conserves_memory(shares in proptest::collection::vec(1usize..6, 1..6)) {
            let mut spm = boot();
            let cpu = asid_of(MosId(1));
            let gpu = asid_of(MosId(2));
            let a = spm
                .create_enclave(cpu, Manifest::new(DeviceKind::Cpu), &BTreeMap::new(), Owner::App(1), 7)
                .expect("cpu enclave");
            let b = spm
                .create_enclave(
                    gpu,
                    Manifest::new(DeviceKind::Gpu).with_memory(1 << 20),
                    &BTreeMap::new(),
                    Owner::Enclave(a),
                    7,
                )
                .expect("gpu enclave");
            let before = spm.machine().free_pages(World::Secure);
            let mut handles = Vec::new();
            for pages in &shares {
                let (h, _, _) = spm.share_memory((cpu, a), (gpu, b), *pages).expect("share");
                handles.push(h);
            }
            spm.fail_partition(gpu).expect("fail");
            spm.recover_partition(gpu, b"cuda-mos", "v3").expect("recover");
            for h in handles {
                spm.reclaim_share(h).expect("reclaim");
            }
            prop_assert_eq!(spm.machine().free_pages(World::Secure), before);
            prop_assert_eq!(spm.mos(gpu).expect("mos").manager().len(), 0);
        }

        /// After step 1 (proceed), every shared page is invalid for the
        /// survivor and every page is zero after step 2, whatever was written.
        #[test]
        fn proceed_and_clear_cover_every_page(pages in 1usize..8, fill in any::<u8>()) {
            prop_assume!(fill != 0);
            let mut spm = boot();
            let cpu = asid_of(MosId(1));
            let gpu = asid_of(MosId(2));
            let a = spm
                .create_enclave(cpu, Manifest::new(DeviceKind::Cpu), &BTreeMap::new(), Owner::App(1), 7)
                .expect("cpu enclave");
            let b = spm
                .create_enclave(
                    gpu,
                    Manifest::new(DeviceKind::Gpu).with_memory(1 << 20),
                    &BTreeMap::new(),
                    Owner::Enclave(a),
                    7,
                )
                .expect("gpu enclave");
            let (h, _, _) = spm.share_memory((cpu, a), (gpu, b), pages).expect("share");
            let ppns = spm.share_pages(h).expect("pages").to_vec();
            for ppn in &ppns {
                spm.machine_mut()
                    .phys_write(World::Secure, PhysAddr::from_page_number(*ppn), &[fill; 64])
                    .expect("fill");
            }
            let (invalidated, _) = spm.fail_partition(gpu).expect("fail");
            prop_assert_eq!(invalidated, ppns.len(), "every shared page invalidated");
            for ppn in &ppns {
                prop_assert!(!spm.machine().stage2_is_valid(cpu, *ppn));
            }
            spm.recover_partition(gpu, b"cuda-mos", "v3").expect("recover");
            for ppn in &ppns {
                let bytes = spm
                    .machine_mut()
                    .phys_read_vec(World::Secure, PhysAddr::from_page_number(*ppn), 64)
                    .expect("read");
                prop_assert_eq!(bytes, vec![0u8; 64], "page {:#x} cleared", ppn);
            }
        }

        /// Attestation reports verify for any mix of live enclaves, and always
        /// fail once any enclave measurement expectation is wrong.
        #[test]
        fn reports_cover_all_enclaves(count in 1usize..6) {
            use cronus_spm::attest::{ClientVerifier, Expectations};
            let mut spm = boot();
            let gpu = asid_of(MosId(2));
            for i in 0..count {
                spm.create_enclave(
                    gpu,
                    Manifest::new(DeviceKind::Gpu).with_memory(1 << 16),
                    &BTreeMap::new(),
                    Owner::App(i as u32),
                    7,
                )
                .expect("enclave");
            }
            let signed = spm.make_report(gpu).expect("report");
            prop_assert_eq!(signed.report.enclaves.len(), count);
            let mut verifier = ClientVerifier::new(spm.monitor().platform_public());
            verifier.add_vendor("nvidia", cronus_devices::vendor_keypair("nvidia").public());
            verifier
                .verify(&signed, &Expectations { enclaves: signed.report.enclaves.clone(), ..Default::default() })
                .expect("honest verification");
            // Corrupt one expectation.
            let mut bad = signed.report.enclaves.clone();
            bad[0].1 = cronus_crypto::measure("manifest", b"not-the-real-one");
            let tampered = verifier
                .verify(&signed, &Expectations { enclaves: bad, ..Default::default() })
                .is_err();
            prop_assert!(tampered);
        }
    }
}

mod smoke {
    use std::collections::BTreeMap;

    use cronus_devices::DeviceKind;
    use cronus_mos::manager::Owner;
    use cronus_mos::manifest::{Manifest, MosId};
    use cronus_sim::World;
    use cronus_spm::spm::{asid_of, BootConfig, DeviceSpec, PartitionSpec, Spm};

    #[test]
    fn failover_conserves_memory_fixed() {
        let mut spm = Spm::boot(BootConfig {
            partitions: vec![
                PartitionSpec::new(1, b"cpu-mos", "v1", DeviceSpec::Cpu),
                PartitionSpec::new(
                    2,
                    b"cuda-mos",
                    "v3",
                    DeviceSpec::Gpu {
                        memory: 1 << 26,
                        sms: 46,
                    },
                ),
            ],
            ..Default::default()
        });
        let cpu = asid_of(MosId(1));
        let gpu = asid_of(MosId(2));
        let a = spm
            .create_enclave(
                cpu,
                Manifest::new(DeviceKind::Cpu),
                &BTreeMap::new(),
                Owner::App(1),
                7,
            )
            .expect("cpu enclave");
        let b = spm
            .create_enclave(
                gpu,
                Manifest::new(DeviceKind::Gpu).with_memory(1 << 20),
                &BTreeMap::new(),
                Owner::Enclave(a),
                7,
            )
            .expect("gpu enclave");
        let free_before = spm.machine().free_pages(World::Secure);
        let (handle, _, _) = spm.share_memory((cpu, a), (gpu, b), 3).expect("share");
        spm.fail_partition(gpu).expect("fail");
        spm.recover_partition(gpu, b"cuda-mos", "v3")
            .expect("recover");
        spm.reclaim_share(handle).expect("reclaim");
        assert_eq!(spm.machine().free_pages(World::Secure), free_before);
        assert!(!spm.machine().is_failed(gpu));
    }
}
