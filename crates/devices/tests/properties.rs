//! Property-based tests for the device simulators.
//!
//! The full generated suite lives in the gated `full` module (enable with the
//! non-default `proptest` feature, e.g. `cargo test --all-features`); the
//! `smoke` module keeps a deterministic subset always on.

#[cfg(feature = "proptest")]
mod full {
    use proptest::prelude::*;

    use cronus_devices::gpu::GpuDevice;
    use cronus_devices::npu::{NpuDevice, VtaInsn, VtaProgram};
    use cronus_sim::tzpc::DeviceId;
    use cronus_sim::{CostModel, StreamId};

    proptest! {
        /// GPU context quotas are conserved under arbitrary alloc/free
        /// interleavings, and frees always return quota.
        #[test]
        fn gpu_quota_conservation(sizes in proptest::collection::vec(1u64..4096, 1..32)) {
            let mut dev = GpuDevice::new(DeviceId::new(1), StreamId::new(1), 1 << 22, 46);
            let quota = 1 << 20;
            let ctx = dev.create_context(quota).expect("context");
            let mut live = Vec::new();
            let mut used = 0u64;
            for (i, len) in sizes.iter().enumerate() {
                match dev.alloc(ctx, *len) {
                    Ok(buf) => {
                        used += len;
                        prop_assert!(used <= quota);
                        live.push((buf, *len));
                    }
                    Err(_) => prop_assert!(used + len > quota, "only quota exhaustion may fail"),
                }
                // Free every other allocation as we go.
                if i % 2 == 1 {
                    if let Some((buf, len)) = live.pop() {
                        dev.free(ctx, buf).expect("free");
                        used -= len;
                    }
                }
            }
            for (buf, _) in live {
                dev.free(ctx, buf).expect("free");
            }
            // Full quota is available again.
            let big = dev.alloc(ctx, quota).expect("quota restored");
            dev.free(ctx, big).expect("free");
        }

        /// GPU buffer contents round-trip at arbitrary offsets.
        #[test]
        fn gpu_buffer_roundtrip(len in 1usize..4096, offset in 0usize..4096, data in proptest::collection::vec(any::<u8>(), 1..256)) {
            prop_assume!(offset + data.len() <= len);
            let mut dev = GpuDevice::new(DeviceId::new(1), StreamId::new(1), 1 << 22, 46);
            let ctx = dev.create_context(1 << 20).expect("context");
            let buf = dev.alloc(ctx, len as u64).expect("alloc");
            dev.write_buffer(ctx, buf, offset as u64, &data).expect("write");
            let mut out = vec![0u8; data.len()];
            dev.read_buffer(ctx, buf, offset as u64, &mut out).expect("read");
            prop_assert_eq!(out, data);
        }

        /// NPU GEMM matches a CPU reference for arbitrary small shapes.
        #[test]
        fn npu_gemm_matches_reference(
            m in 1usize..8, n in 1usize..8, k in 1usize..8,
            inp in proptest::collection::vec(-4i8..=4, 64),
            wgt in proptest::collection::vec(-4i8..=4, 64),
        ) {
            let cm = CostModel::default();
            let mut dev = NpuDevice::new(DeviceId::new(2), StreamId::new(2), 1 << 20);
            let ctx = dev.create_context(1 << 16).expect("context");
            let a = dev.alloc(ctx, (m * k) as u64).expect("alloc");
            let b = dev.alloc(ctx, (n * k) as u64).expect("alloc");
            let out = dev.alloc(ctx, (m * n) as u64).expect("alloc");
            let inp = &inp[..m * k];
            let wgt = &wgt[..n * k];
            let to_u8 = |s: &[i8]| s.iter().map(|v| *v as u8).collect::<Vec<u8>>();
            dev.write_buffer(ctx, a, 0, &to_u8(inp)).expect("h2d");
            dev.write_buffer(ctx, b, 0, &to_u8(wgt)).expect("h2d");
            let mut prog = VtaProgram::new();
            prog.push(VtaInsn::LoadInp { src: a, offset: 0, rows: m, cols: k, stride: k })
                .push(VtaInsn::LoadWgt { src: b, offset: 0, rows: n, cols: k, stride: k })
                .push(VtaInsn::ResetAcc { rows: m, cols: n })
                .push(VtaInsn::Gemm)
                .push(VtaInsn::StoreAcc { dst: out, offset: 0, stride: n });
            dev.run(&cm, ctx, &prog).expect("run");
            let mut got = vec![0u8; m * n];
            dev.read_buffer(ctx, out, 0, &mut got).expect("d2h");
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0i32;
                    for kk in 0..k {
                        acc += inp[i * k + kk] as i32 * wgt[j * k + kk] as i32;
                    }
                    let expect = acc.clamp(i8::MIN as i32, i8::MAX as i32) as i8;
                    prop_assert_eq!(got[i * n + j] as i8, expect, "element ({}, {})", i, j);
                }
            }
        }

        /// Device reset leaves no residue: after reset every context id is dead
        /// and capacity is fully available.
        #[test]
        fn gpu_reset_clears_everything(quotas in proptest::collection::vec(1u64..1 << 16, 1..8)) {
            let mut dev = GpuDevice::new(DeviceId::new(1), StreamId::new(1), 1 << 20, 46);
            let mut ctxs = Vec::new();
            for q in &quotas {
                if let Ok(c) = dev.create_context(*q) {
                    ctxs.push(c);
                }
            }
            use cronus_devices::SimDevice;
            dev.reset();
            prop_assert_eq!(dev.context_count(), 0);
            prop_assert_eq!(dev.memory_used(), 0);
            for c in ctxs {
                prop_assert!(dev.alloc(c, 1).is_err(), "stale context rejected");
            }
            // Full capacity available to a new tenant.
            prop_assert!(dev.create_context(1 << 20).is_ok());
        }
    }
}

mod smoke {
    use cronus_devices::gpu::GpuDevice;
    use cronus_sim::tzpc::DeviceId;
    use cronus_sim::StreamId;

    #[test]
    fn gpu_quota_and_buffer_roundtrip_fixed() {
        let mut dev = GpuDevice::new(DeviceId::new(1), StreamId::new(1), 1 << 22, 46);
        let quota = 1 << 20;
        let ctx = dev.create_context(quota).expect("context");
        let a = dev.alloc(ctx, 4096).expect("alloc");
        let data: Vec<u8> = (0..256u32).map(|i| i as u8).collect();
        dev.write_buffer(ctx, a, 128, &data).expect("write");
        let mut out = vec![0u8; data.len()];
        dev.read_buffer(ctx, a, 128, &mut out).expect("read");
        assert_eq!(out, data);
        dev.free(ctx, a).expect("free");
        let big = dev.alloc(ctx, quota).expect("full quota available again");
        dev.free(ctx, big).expect("free");
    }
}
