//! PCIe bus model with secure DMA routing.
//!
//! The paper creates "a 'secure' PCIe bus" in QEMU and "binds its resources
//! (e.g., BAR) to different memory addresses from the original PCIe bus";
//! DMA from secure-bus devices may touch only secure memory. Our bus tracks
//! per-slot BARs and worlds and performs DMA *through the machine*, so every
//! transfer is filtered by the SMMU and the TZASC.

use std::collections::HashMap;
use std::fmt;

use cronus_obs::{FlightRecorder, QueueKind};
use cronus_sim::addr::{PhysAddr, PhysRange};
use cronus_sim::tzpc::DeviceId;
use cronus_sim::{Fault, Machine, SimNs, StreamId, World};

/// A device slot on the bus.
#[derive(Clone, Debug)]
pub struct PcieSlot {
    /// Bus/TZPC device id.
    pub device: DeviceId,
    /// The device's MMIO BAR window.
    pub bar: PhysRange,
    /// SMMU stream for the device's DMA.
    pub stream: StreamId,
    /// World the slot is wired into (secure bus vs normal bus).
    pub world: World,
}

/// Errors raised by bus operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BusError {
    /// The slot's BAR overlaps an existing slot's BAR.
    BarOverlap(DeviceId, DeviceId),
    /// A device id was registered twice.
    DuplicateDevice(DeviceId),
    /// The referenced device is not on the bus.
    UnknownDevice(DeviceId),
    /// The DMA transfer was blocked by the SMMU/TZASC.
    DmaFault(Fault),
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::BarOverlap(a, b) => write!(f, "bar windows of {a} and {b} overlap"),
            BusError::DuplicateDevice(d) => write!(f, "device {d} already on the bus"),
            BusError::UnknownDevice(d) => write!(f, "device {d} not on the bus"),
            BusError::DmaFault(fault) => write!(f, "dma blocked: {fault}"),
        }
    }
}

impl std::error::Error for BusError {}

impl From<Fault> for BusError {
    fn from(f: Fault) -> Self {
        BusError::DmaFault(f)
    }
}

/// The PCIe bus: a registry of slots plus a DMA engine.
#[derive(Debug, Default)]
pub struct PcieBus {
    slots: HashMap<DeviceId, PcieSlot>,
    recorder: Option<FlightRecorder>,
}

impl PcieBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        PcieBus::default()
    }

    /// Installs a flight recorder: every DMA transfer then emits a span on
    /// the `bus` track plus byte counters, and the transfer queue reports
    /// to the queue observatory.
    pub fn set_recorder(&mut self, rec: FlightRecorder) {
        // One serial transfer engine; nothing waits in the simulated model,
        // so the station's utilization is the interesting USE signal.
        rec.queue_declare("bus.dma", QueueKind::Dma, 1);
        self.recorder = Some(rec);
    }

    /// Records one DMA transfer of `bytes` taking `t`.
    fn record_dma(&self, dir: &str, device: DeviceId, bytes: u64, t: SimNs) {
        if let Some(rec) = &self.recorder {
            rec.counter_add("bus.dma_bytes", &[("dir", dir)], bytes);
            rec.counter_add("bus.dma_transfers", &[("dir", dir)], 1);
            // Device-timebase span, not attributed to the ambient request:
            // the sRPC layer covers the request's transfer time on the
            // stream/enclave tracks, and mixing the bus timebase into the
            // request window would surface as a phantom queue gap.
            let track = rec.track("bus");
            let start = rec.total_elapsed();
            let req = rec.current_req();
            rec.set_current_req(None);
            rec.complete_span(track, format!("{dir}:{device}"), "dma", start, start + t);
            rec.set_current_req(req);
            rec.queue_enqueue("bus.dma", start);
            rec.queue_dequeue("bus.dma", start + t, SimNs::ZERO, t);
        }
    }

    /// Registers a device slot.
    ///
    /// # Errors
    ///
    /// [`BusError::DuplicateDevice`] or [`BusError::BarOverlap`].
    pub fn register(&mut self, slot: PcieSlot) -> Result<(), BusError> {
        if self.slots.contains_key(&slot.device) {
            return Err(BusError::DuplicateDevice(slot.device));
        }
        for existing in self.slots.values() {
            if existing.bar.overlaps(slot.bar) {
                return Err(BusError::BarOverlap(existing.device, slot.device));
            }
        }
        self.slots.insert(slot.device, slot);
        Ok(())
    }

    /// Looks up a slot.
    pub fn slot(&self, device: DeviceId) -> Option<&PcieSlot> {
        self.slots.get(&device)
    }

    /// All registered slots.
    pub fn slots(&self) -> impl Iterator<Item = &PcieSlot> {
        self.slots.values()
    }

    /// Which device (if any) claims the MMIO address `pa`.
    pub fn route_mmio(&self, pa: PhysAddr) -> Option<DeviceId> {
        self.slots
            .values()
            .find(|s| s.bar.contains(pa))
            .map(|s| s.device)
    }

    /// DMA from host memory into a device-provided buffer.
    ///
    /// Returns the simulated transfer duration (PCIe bandwidth bound).
    ///
    /// # Errors
    ///
    /// [`BusError::UnknownDevice`] or [`BusError::DmaFault`] when the SMMU or
    /// TZASC blocks the transfer.
    pub fn dma_to_device(
        &self,
        machine: &mut Machine,
        device: DeviceId,
        host_src: PhysAddr,
        buf: &mut [u8],
    ) -> Result<SimNs, BusError> {
        let slot = self
            .slots
            .get(&device)
            .ok_or(BusError::UnknownDevice(device))?;
        machine.dma_read(slot.stream, slot.world, host_src, buf)?;
        let t = machine.cost().pcie_copy(buf.len() as u64);
        self.record_dma("h2d", device, buf.len() as u64, t);
        Ok(t)
    }

    /// DMA from a device buffer into host memory.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PcieBus::dma_to_device`].
    pub fn dma_from_device(
        &self,
        machine: &mut Machine,
        device: DeviceId,
        host_dst: PhysAddr,
        data: &[u8],
    ) -> Result<SimNs, BusError> {
        let slot = self
            .slots
            .get(&device)
            .ok_or(BusError::UnknownDevice(device))?;
        machine.dma_write(slot.stream, slot.world, host_dst, data)?;
        let t = machine.cost().pcie_copy(data.len() as u64);
        self.record_dma("d2h", device, data.len() as u64, t);
        Ok(t)
    }

    /// Peer-to-peer DMA between two devices over PCIe (used by Fig. 11b's
    /// direct GPU-GPU communication). Both devices must be on the bus; data
    /// does not touch host DRAM, so only the transfer time is charged.
    ///
    /// # Errors
    ///
    /// [`BusError::UnknownDevice`] if either endpoint is missing.
    pub fn dma_peer_to_peer(
        &self,
        machine: &Machine,
        from: DeviceId,
        to: DeviceId,
        bytes: u64,
    ) -> Result<SimNs, BusError> {
        if !self.slots.contains_key(&from) {
            return Err(BusError::UnknownDevice(from));
        }
        if !self.slots.contains_key(&to) {
            return Err(BusError::UnknownDevice(to));
        }
        let t = machine.cost().pcie_copy(bytes);
        self.record_dma("p2p", from, bytes, t);
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cronus_sim::pagetable::PagePerms;
    use cronus_sim::MachineConfig;

    fn slot(id: u32, bar_base: u64, world: World) -> PcieSlot {
        PcieSlot {
            device: DeviceId::new(id),
            bar: PhysRange::from_base_len(PhysAddr::new(bar_base), 0x1000),
            stream: StreamId::new(id),
            world,
        }
    }

    #[test]
    fn register_and_route() {
        let mut bus = PcieBus::new();
        bus.register(slot(1, 0x1000_0000, World::Secure)).unwrap();
        bus.register(slot(2, 0x1001_0000, World::Secure)).unwrap();
        assert_eq!(
            bus.route_mmio(PhysAddr::new(0x1000_0800)),
            Some(DeviceId::new(1))
        );
        assert_eq!(bus.route_mmio(PhysAddr::new(0x2000_0000)), None);
        assert_eq!(bus.slots().count(), 2);
    }

    #[test]
    fn duplicate_and_overlap_rejected() {
        let mut bus = PcieBus::new();
        bus.register(slot(1, 0x1000_0000, World::Secure)).unwrap();
        assert_eq!(
            bus.register(slot(1, 0x2000_0000, World::Secure)),
            Err(BusError::DuplicateDevice(DeviceId::new(1)))
        );
        assert!(matches!(
            bus.register(slot(3, 0x1000_0800, World::Secure)),
            Err(BusError::BarOverlap(..))
        ));
    }

    #[test]
    fn dma_round_trip_with_grants() {
        let mut machine = Machine::new(MachineConfig::default());
        let mut bus = PcieBus::new();
        let s = slot(1, 0x1000_0000, World::Secure);
        let stream = s.stream;
        bus.register(s).unwrap();

        let frame = machine.alloc_frame(World::Secure).unwrap();
        machine
            .smmu_mut()
            .grant(stream, frame.page(), PagePerms::RW);
        machine
            .phys_write(World::Secure, frame.base(), b"weights")
            .unwrap();

        let mut buf = vec![0u8; 7];
        let t = bus
            .dma_to_device(&mut machine, DeviceId::new(1), frame.base(), &mut buf)
            .unwrap();
        assert_eq!(&buf, b"weights");
        assert!(t > SimNs::ZERO);

        let t2 = bus
            .dma_from_device(&mut machine, DeviceId::new(1), frame.base(), b"grads!!")
            .unwrap();
        assert!(t2 > SimNs::ZERO);
        let back = machine
            .phys_read_vec(World::Secure, frame.base(), 7)
            .unwrap();
        assert_eq!(&back, b"grads!!");
    }

    #[test]
    fn dma_without_smmu_grant_faults() {
        let mut machine = Machine::new(MachineConfig::default());
        let mut bus = PcieBus::new();
        bus.register(slot(1, 0x1000_0000, World::Secure)).unwrap();
        let frame = machine.alloc_frame(World::Secure).unwrap();
        let mut buf = vec![0u8; 4];
        let err = bus
            .dma_to_device(&mut machine, DeviceId::new(1), frame.base(), &mut buf)
            .unwrap_err();
        assert!(matches!(err, BusError::DmaFault(_)));
    }

    #[test]
    fn normal_bus_device_cannot_dma_secure_memory() {
        let mut machine = Machine::new(MachineConfig::default());
        let mut bus = PcieBus::new();
        let s = slot(1, 0x1000_0000, World::Normal);
        let stream = s.stream;
        bus.register(s).unwrap();
        let frame = machine.alloc_frame(World::Secure).unwrap();
        machine
            .smmu_mut()
            .grant(stream, frame.page(), PagePerms::RW);
        let err = bus
            .dma_from_device(&mut machine, DeviceId::new(1), frame.base(), &[1])
            .unwrap_err();
        assert!(matches!(err, BusError::DmaFault(f) if f.is_world_filter()));
    }

    #[test]
    fn p2p_requires_both_endpoints() {
        let machine = Machine::new(MachineConfig::default());
        let mut bus = PcieBus::new();
        bus.register(slot(1, 0x1000_0000, World::Secure)).unwrap();
        assert!(bus
            .dma_peer_to_peer(&machine, DeviceId::new(1), DeviceId::new(2), 1024)
            .is_err());
        bus.register(slot(2, 0x1001_0000, World::Secure)).unwrap();
        let t = bus
            .dma_peer_to_peer(&machine, DeviceId::new(1), DeviceId::new(2), 1 << 20)
            .unwrap();
        assert!(t > SimNs::ZERO);
    }
}
