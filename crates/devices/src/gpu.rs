//! A CUDA-class GPU simulator with spatial sharing.
//!
//! Stands in for the paper's GTX 2080 driven by nouveau/gdev. The device:
//!
//! * holds device DRAM partitioned into per-context buffers; contexts model
//!   the "GPU virtual address isolation for isolating different mEnclaves'
//!   code" (§V-B) — a buffer handle from one context is invisible to another,
//! * runs *named kernels that really compute* (registered as Rust closures
//!   by the CUDA runtime layer, the analogue of loading a `.cubin`),
//! * models MPS-style spatial sharing: concurrent contexts split the SMs and
//!   memory bandwidth, so small kernels from different tenants overlap until
//!   the machine saturates — the effect behind Fig. 11a,
//! * can be fully [`reset`](crate::SimDevice::reset) so failover clears all
//!   tenant state (attack A3 in §IV-D).

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use cronus_crypto::{KeyPair, PublicKey, Signature};
use cronus_obs::{FlightRecorder, QueueKind};
use cronus_sim::tzpc::DeviceId;
use cronus_sim::{CostModel, SimNs, StreamId};

use crate::{device_rot_keypair, DeviceKind, SimDevice};

/// Completion-IRQ queue slots a driver ring would provide.
pub const IRQ_QUEUE_SLOTS: u64 = 64;

/// Handle to a GPU execution context (one spatially sharing tenant).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GpuContextId(u32);

/// Handle to a device-memory buffer. Handles are context-scoped: using a
/// handle with the wrong context fails, enforcing VA isolation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GpuBuffer(u64);

impl GpuBuffer {
    /// Reconstructs a handle from its raw id (runtime wire format).
    pub const fn from_raw(raw: u64) -> Self {
        GpuBuffer(raw)
    }

    /// The raw handle id (runtime wire format).
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

/// An argument passed to a kernel launch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KernelArg {
    /// A device buffer.
    Buffer(GpuBuffer),
    /// A 64-bit integer scalar.
    Int(i64),
    /// A 32-bit float scalar.
    Float(f32),
}

/// Errors raised by GPU operations.
#[derive(Clone, Debug, PartialEq)]
pub enum GpuError {
    /// The context id is stale or belongs to a cleared device.
    UnknownContext(GpuContextId),
    /// The buffer handle is unknown *to this context* — either never
    /// allocated or owned by a different tenant.
    UnknownBuffer(GpuBuffer),
    /// The context's memory quota or the device capacity is exhausted.
    OutOfMemory { requested: u64, available: u64 },
    /// No kernel with this name is loaded in the context.
    UnknownKernel(String),
    /// A buffer access fell outside the allocation.
    OutOfBounds {
        buffer: GpuBuffer,
        offset: u64,
        len: u64,
    },
    /// The kernel rejected its arguments.
    BadArg(String),
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::UnknownContext(c) => write!(f, "unknown gpu context {c:?}"),
            GpuError::UnknownBuffer(b) => write!(f, "unknown gpu buffer {b:?}"),
            GpuError::OutOfMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "gpu out of memory: requested {requested}, available {available}"
                )
            }
            GpuError::UnknownKernel(k) => write!(f, "unknown kernel {k:?}"),
            GpuError::OutOfBounds {
                buffer,
                offset,
                len,
            } => {
                write!(f, "access [{offset}, +{len}) out of bounds for {buffer:?}")
            }
            GpuError::BadArg(msg) => write!(f, "bad kernel argument: {msg}"),
        }
    }
}

impl std::error::Error for GpuError {}

/// Device-memory access handed to a running kernel. All reads and writes are
/// confined to the launching context's buffers.
pub trait GpuMemAccess {
    /// Reads bytes from a buffer.
    ///
    /// # Errors
    ///
    /// [`GpuError::UnknownBuffer`] or [`GpuError::OutOfBounds`].
    fn read_bytes(&self, buf: GpuBuffer, offset: u64, out: &mut [u8]) -> Result<(), GpuError>;

    /// Writes bytes to a buffer.
    ///
    /// # Errors
    ///
    /// [`GpuError::UnknownBuffer`] or [`GpuError::OutOfBounds`].
    fn write_bytes(&mut self, buf: GpuBuffer, offset: u64, data: &[u8]) -> Result<(), GpuError>;

    /// Length of a buffer in bytes.
    ///
    /// # Errors
    ///
    /// [`GpuError::UnknownBuffer`].
    fn buffer_len(&self, buf: GpuBuffer) -> Result<u64, GpuError>;

    /// Reads a whole buffer as `f32`s.
    ///
    /// # Errors
    ///
    /// Propagates buffer errors; the length is truncated to whole floats.
    fn read_f32s(&self, buf: GpuBuffer) -> Result<Vec<f32>, GpuError> {
        let len = self.buffer_len(buf)? as usize / 4 * 4;
        let mut bytes = vec![0u8; len];
        self.read_bytes(buf, 0, &mut bytes)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Overwrites a buffer prefix with `values` as little-endian `f32`s.
    ///
    /// # Errors
    ///
    /// Propagates buffer errors.
    fn write_f32s(&mut self, buf: GpuBuffer, values: &[f32]) -> Result<(), GpuError> {
        let mut bytes = Vec::with_capacity(values.len() * 4);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write_bytes(buf, 0, &bytes)
    }
}

/// A kernel implementation: the Rust closure standing in for compiled SASS.
pub type KernelFn =
    Arc<dyn Fn(&mut dyn GpuMemAccess, &[KernelArg]) -> Result<(), GpuError> + Send + Sync>;

/// Description of a kernel launch's cost for the contention model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuKernelDesc {
    /// Floating point work in FLOPs.
    pub flops: f64,
    /// DRAM traffic in bytes.
    pub mem_bytes: f64,
    /// SMs the launch can usefully occupy (grid width).
    pub sm_demand: u32,
}

struct GpuContextState {
    buffers: HashMap<u64, Vec<u8>>,
    kernels: HashMap<String, KernelFn>,
    quota: u64,
    used: u64,
    kernels_launched: u64,
}

struct ContextMem<'a> {
    buffers: &'a mut HashMap<u64, Vec<u8>>,
}

impl GpuMemAccess for ContextMem<'_> {
    fn read_bytes(&self, buf: GpuBuffer, offset: u64, out: &mut [u8]) -> Result<(), GpuError> {
        let data = self
            .buffers
            .get(&buf.0)
            .ok_or(GpuError::UnknownBuffer(buf))?;
        let end = offset as usize + out.len();
        if end > data.len() {
            return Err(GpuError::OutOfBounds {
                buffer: buf,
                offset,
                len: out.len() as u64,
            });
        }
        out.copy_from_slice(&data[offset as usize..end]);
        Ok(())
    }

    fn write_bytes(&mut self, buf: GpuBuffer, offset: u64, data: &[u8]) -> Result<(), GpuError> {
        let dst = self
            .buffers
            .get_mut(&buf.0)
            .ok_or(GpuError::UnknownBuffer(buf))?;
        let end = offset as usize + data.len();
        if end > dst.len() {
            return Err(GpuError::OutOfBounds {
                buffer: buf,
                offset,
                len: data.len() as u64,
            });
        }
        dst[offset as usize..end].copy_from_slice(data);
        Ok(())
    }

    fn buffer_len(&self, buf: GpuBuffer) -> Result<u64, GpuError> {
        self.buffers
            .get(&buf.0)
            .map(|d| d.len() as u64)
            .ok_or(GpuError::UnknownBuffer(buf))
    }
}

/// The simulated GPU.
pub struct GpuDevice {
    id: DeviceId,
    stream: StreamId,
    rot: KeyPair,
    capacity: u64,
    used: u64,
    sm_count: u32,
    contexts: HashMap<u32, GpuContextState>,
    next_ctx: u32,
    next_buf: u64,
    total_launches: u64,
    pending_irqs: u32,
    irq_raised_at: VecDeque<SimNs>,
    recorder: Option<FlightRecorder>,
}

impl fmt::Debug for GpuDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GpuDevice")
            .field("id", &self.id)
            .field("contexts", &self.contexts.len())
            .field("used", &self.used)
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl GpuDevice {
    /// Creates a GPU with `capacity` bytes of device DRAM and `sm_count`
    /// streaming multiprocessors.
    pub fn new(id: DeviceId, stream: StreamId, capacity: u64, sm_count: u32) -> Self {
        GpuDevice {
            id,
            stream,
            rot: device_rot_keypair("nvidia", id),
            capacity,
            used: 0,
            sm_count,
            contexts: HashMap::new(),
            next_ctx: 1,
            next_buf: 1,
            total_launches: 0,
            pending_irqs: 0,
            irq_raised_at: VecDeque::new(),
            recorder: None,
        }
    }

    /// Installs a flight recorder: kernel launches gain spans on the
    /// `gpu:<id>` track plus launch/latency/occupancy metrics, and the
    /// completion-IRQ queue reports to the queue observatory.
    pub fn set_recorder(&mut self, rec: FlightRecorder) {
        rec.queue_declare(
            &format!("gpu:{}.completion", self.id.as_u32()),
            QueueKind::Completion,
            IRQ_QUEUE_SLOTS,
        );
        self.recorder = Some(rec);
    }

    /// Creates a GTX 2080-class GPU (8 GiB, 46 SMs) scaled to the cost
    /// model's defaults.
    pub fn gtx2080(id: DeviceId, stream: StreamId) -> Self {
        GpuDevice::new(id, stream, 8 << 30, 46)
    }

    /// Opens a context with a device-memory `quota` (from the manifest's
    /// `resources.memory`).
    ///
    /// # Errors
    ///
    /// [`GpuError::OutOfMemory`] if the quota cannot be reserved.
    pub fn create_context(&mut self, quota: u64) -> Result<GpuContextId, GpuError> {
        if self.used + quota > self.capacity {
            return Err(GpuError::OutOfMemory {
                requested: quota,
                available: self.capacity - self.used,
            });
        }
        self.used += quota;
        let id = self.next_ctx;
        self.next_ctx += 1;
        self.contexts.insert(
            id,
            GpuContextState {
                buffers: HashMap::new(),
                kernels: HashMap::new(),
                quota,
                used: 0,
                kernels_launched: 0,
            },
        );
        Ok(GpuContextId(id))
    }

    /// Destroys a context, zeroing and releasing all of its memory.
    ///
    /// # Errors
    ///
    /// [`GpuError::UnknownContext`].
    pub fn destroy_context(&mut self, ctx: GpuContextId) -> Result<(), GpuError> {
        let mut state = self
            .contexts
            .remove(&ctx.0)
            .ok_or(GpuError::UnknownContext(ctx))?;
        for buf in state.buffers.values_mut() {
            buf.fill(0);
        }
        self.used -= state.quota;
        Ok(())
    }

    fn ctx(&self, ctx: GpuContextId) -> Result<&GpuContextState, GpuError> {
        self.contexts
            .get(&ctx.0)
            .ok_or(GpuError::UnknownContext(ctx))
    }

    fn ctx_mut(&mut self, ctx: GpuContextId) -> Result<&mut GpuContextState, GpuError> {
        self.contexts
            .get_mut(&ctx.0)
            .ok_or(GpuError::UnknownContext(ctx))
    }

    /// Allocates `len` bytes of device memory in `ctx`.
    ///
    /// # Errors
    ///
    /// [`GpuError::UnknownContext`] or [`GpuError::OutOfMemory`] when the
    /// context quota is exhausted.
    pub fn alloc(&mut self, ctx: GpuContextId, len: u64) -> Result<GpuBuffer, GpuError> {
        let handle = self.next_buf;
        let state = self.ctx_mut(ctx)?;
        if state.used + len > state.quota {
            return Err(GpuError::OutOfMemory {
                requested: len,
                available: state.quota - state.used,
            });
        }
        state.used += len;
        state.buffers.insert(handle, vec![0u8; len as usize]);
        self.next_buf += 1;
        Ok(GpuBuffer(handle))
    }

    /// Frees a buffer, zeroing it first.
    ///
    /// # Errors
    ///
    /// [`GpuError::UnknownContext`] or [`GpuError::UnknownBuffer`].
    pub fn free(&mut self, ctx: GpuContextId, buf: GpuBuffer) -> Result<(), GpuError> {
        let state = self.ctx_mut(ctx)?;
        let mut data = state
            .buffers
            .remove(&buf.0)
            .ok_or(GpuError::UnknownBuffer(buf))?;
        data.fill(0);
        state.used -= data.len() as u64;
        Ok(())
    }

    /// Copies host bytes into a device buffer (the device side of
    /// `cudaMemcpyHostToDevice`; the PCIe/SMMU cost is charged by the HAL).
    ///
    /// # Errors
    ///
    /// Buffer/context errors as above.
    pub fn write_buffer(
        &mut self,
        ctx: GpuContextId,
        buf: GpuBuffer,
        offset: u64,
        data: &[u8],
    ) -> Result<(), GpuError> {
        if let Some(rec) = &self.recorder {
            rec.counter_add("gpu.dma_bytes", &[("dir", "h2d")], data.len() as u64);
        }
        let state = self.ctx_mut(ctx)?;
        ContextMem {
            buffers: &mut state.buffers,
        }
        .write_bytes(buf, offset, data)
    }

    /// Copies a device buffer out to host bytes (`cudaMemcpyDeviceToHost`).
    ///
    /// # Errors
    ///
    /// Buffer/context errors as above.
    pub fn read_buffer(
        &mut self,
        ctx: GpuContextId,
        buf: GpuBuffer,
        offset: u64,
        out: &mut [u8],
    ) -> Result<(), GpuError> {
        if let Some(rec) = &self.recorder {
            rec.counter_add("gpu.dma_bytes", &[("dir", "d2h")], out.len() as u64);
        }
        let state = self.ctx_mut(ctx)?;
        ContextMem {
            buffers: &mut state.buffers,
        }
        .read_bytes(buf, offset, out)
    }

    /// Length of a buffer.
    ///
    /// # Errors
    ///
    /// Buffer/context errors as above.
    pub fn buffer_len(&self, ctx: GpuContextId, buf: GpuBuffer) -> Result<u64, GpuError> {
        self.ctx(ctx)?
            .buffers
            .get(&buf.0)
            .map(|d| d.len() as u64)
            .ok_or(GpuError::UnknownBuffer(buf))
    }

    /// Registers a kernel implementation under `name` in `ctx` (the device
    /// half of module loading; the image hash lives in the manifest).
    ///
    /// # Errors
    ///
    /// [`GpuError::UnknownContext`].
    pub fn register_kernel(
        &mut self,
        ctx: GpuContextId,
        name: &str,
        f: KernelFn,
    ) -> Result<(), GpuError> {
        self.ctx_mut(ctx)?.kernels.insert(name.to_string(), f);
        Ok(())
    }

    /// Launches a kernel: runs the registered closure against the context's
    /// buffers and returns the simulated execution time under the current
    /// spatial-sharing contention.
    ///
    /// # Errors
    ///
    /// [`GpuError::UnknownKernel`] plus anything the kernel body raises.
    pub fn launch(
        &mut self,
        cost: &CostModel,
        ctx: GpuContextId,
        kernel: &str,
        args: &[KernelArg],
        desc: GpuKernelDesc,
    ) -> Result<SimNs, GpuError> {
        let active = self.contexts.len().max(1) as u32;
        let sm_count = self.sm_count;
        let state = self.ctx_mut(ctx)?;
        let f = state
            .kernels
            .get(kernel)
            .ok_or_else(|| GpuError::UnknownKernel(kernel.to_string()))?
            .clone();
        f(
            &mut ContextMem {
                buffers: &mut state.buffers,
            },
            args,
        )?;
        state.kernels_launched += 1;
        self.total_launches += 1;
        // Completion interrupt for the driver to service.
        self.pending_irqs += 1;
        let t = Self::exec_time(cost, sm_count, active, desc);
        if let Some(rec) = &self.recorder {
            rec.counter_add("gpu.kernel_launches", &[("kernel", kernel)], 1);
            rec.observe("gpu.kernel_ns", &[("kernel", kernel)], t);
            rec.gauge_set("gpu.active_contexts", &[], active as i64);
            rec.gauge_set("gpu.mem_used", &[], self.used as i64);
            // Device-wide SM occupancy under the MPS split.
            let sms_avail = (sm_count as f64 / active as f64).max(1.0);
            let sms_used = (desc.sm_demand.max(1) as f64).min(sms_avail);
            let pct = (sms_used * active as f64 / sm_count as f64 * 100.0).min(100.0);
            rec.gauge_set("gpu.sm_occupancy_pct", &[], pct as i64);
            // Span on the device track (time profiling stays in the sRPC
            // layer, which charges the handler's execution time). The span
            // is deliberately not attributed to the ambient request: it uses
            // the device's own timebase, and the sRPC layer already covers
            // the request's kernel phase on the stream track — attaching
            // this one too would stretch the request window with a
            // clock-skew gap the causal report would misread as queueing.
            let track = rec.track(&format!("gpu:{}", self.id.as_u32()));
            let start = rec.total_elapsed();
            let req = rec.current_req();
            rec.set_current_req(None);
            rec.complete_span(track, kernel.to_string(), "kernel", start, start + t);
            rec.set_current_req(req);
            // The completion IRQ is raised when the kernel finishes; it sits
            // queued until the driver's ISR (take_irqs) services it.
            let raised = start + t;
            self.irq_raised_at.push_back(raised);
            rec.queue_enqueue(&format!("gpu:{}.completion", self.id.as_u32()), raised);
        }
        Ok(t)
    }

    /// The contention model: concurrent contexts split SMs (MPS-style) and
    /// memory bandwidth, and the launch path (driver + doorbell) degrades
    /// quadratically with tenant count — small kernels from different
    /// tenants overlap well at 2 tenants but the submission pipeline
    /// saturates by 4, which is the Fig. 11a shape ("up to 63.4% higher
    /// throughput" at 2, degradation at 4).
    pub fn exec_time(
        cost: &CostModel,
        sm_count: u32,
        active_contexts: u32,
        desc: GpuKernelDesc,
    ) -> SimNs {
        let active = active_contexts.max(1) as f64;
        let sms_avail = (sm_count as f64 / active).max(1.0);
        let sms_used = (desc.sm_demand.max(1) as f64).min(sms_avail);
        let compute_ns = desc.flops / (cost.gpu_flops_per_sm_ns * sms_used);
        let mem_ns = desc.mem_bytes / (cost.gpu_mem_bytes_per_ns / active);
        let launch_factor = 1.0 + 0.18 * (active - 1.0) * (active - 1.0);
        cost.gpu_kernel_launch.scale(launch_factor)
            + SimNs::from_nanos(compute_ns.max(mem_ns).ceil() as u64)
    }

    /// Number of kernels launched in a context (throughput accounting).
    ///
    /// # Errors
    ///
    /// [`GpuError::UnknownContext`].
    pub fn kernels_launched(&self, ctx: GpuContextId) -> Result<u64, GpuError> {
        Ok(self.ctx(ctx)?.kernels_launched)
    }

    /// Total kernels launched across all contexts since the last reset.
    pub fn total_launches(&self) -> u64 {
        self.total_launches
    }

    /// Takes (and clears) the pending completion interrupts — the HAL's
    /// interrupt service routine.
    pub fn take_irqs(&mut self) -> u32 {
        let n = std::mem::take(&mut self.pending_irqs);
        if let Some(rec) = &self.recorder {
            let now = rec.total_elapsed();
            let qname = format!("gpu:{}.completion", self.id.as_u32());
            while let Some(raised) = self.irq_raised_at.pop_front() {
                rec.queue_dequeue(
                    &qname,
                    now.max(raised),
                    now.saturating_sub(raised),
                    SimNs::ZERO,
                );
            }
        } else {
            self.irq_raised_at.clear();
        }
        n
    }

    /// Device memory in use (context quotas reserved).
    pub fn memory_used(&self) -> u64 {
        self.used
    }

    /// Device memory capacity.
    pub fn memory_capacity(&self) -> u64 {
        self.capacity
    }

    /// SM count.
    pub fn sm_count(&self) -> u32 {
        self.sm_count
    }
}

impl SimDevice for GpuDevice {
    fn id(&self) -> DeviceId {
        self.id
    }

    fn dma_stream(&self) -> StreamId {
        self.stream
    }

    fn compatible(&self) -> &str {
        "nvidia,gtx2080"
    }

    fn kind(&self) -> DeviceKind {
        DeviceKind::Gpu
    }

    fn rot_public(&self) -> PublicKey {
        self.rot.public()
    }

    fn sign_config(&self, config: &[u8]) -> Signature {
        self.rot.sign(config)
    }

    fn context_count(&self) -> usize {
        self.contexts.len()
    }

    fn reset(&mut self) {
        for state in self.contexts.values_mut() {
            for buf in state.buffers.values_mut() {
                buf.fill(0);
            }
        }
        self.contexts.clear();
        self.used = 0;
        self.total_launches = 0;
        self.pending_irqs = 0;
        // Reset discards in-flight completions: flush the queue station so
        // the observatory sees the drop rather than a stuck depth.
        if let Some(rec) = &self.recorder {
            let now = rec.total_elapsed();
            rec.queue_flush(&format!("gpu:{}.completion", self.id.as_u32()), now);
        }
        self.irq_raised_at.clear();
        self.next_ctx = 1;
        self.next_buf = 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuDevice {
        GpuDevice::new(DeviceId::new(1), StreamId::new(1), 1 << 20, 46)
    }

    fn scale_kernel() -> KernelFn {
        Arc::new(|mem, args| {
            let (buf, factor) = match args {
                [KernelArg::Buffer(b), KernelArg::Float(f)] => (*b, *f),
                _ => return Err(GpuError::BadArg("expected (buffer, float)".into())),
            };
            let mut vals = mem.read_f32s(buf)?;
            for v in &mut vals {
                *v *= factor;
            }
            mem.write_f32s(buf, &vals)
        })
    }

    #[test]
    fn alloc_write_read_round_trip() {
        let mut g = gpu();
        let ctx = g.create_context(4096).unwrap();
        let buf = g.alloc(ctx, 16).unwrap();
        g.write_buffer(ctx, buf, 4, &[1, 2, 3]).unwrap();
        let mut out = [0u8; 3];
        g.read_buffer(ctx, buf, 4, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3]);
        assert_eq!(g.buffer_len(ctx, buf).unwrap(), 16);
    }

    #[test]
    fn contexts_cannot_see_each_others_buffers() {
        let mut g = gpu();
        let a = g.create_context(4096).unwrap();
        let b = g.create_context(4096).unwrap();
        let buf = g.alloc(a, 16).unwrap();
        let mut out = [0u8; 1];
        let err = g.read_buffer(b, buf, 0, &mut out).unwrap_err();
        assert_eq!(err, GpuError::UnknownBuffer(buf));
    }

    #[test]
    fn quota_enforced_per_context() {
        let mut g = gpu();
        let ctx = g.create_context(100).unwrap();
        assert!(g.alloc(ctx, 64).is_ok());
        let err = g.alloc(ctx, 64).unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { available: 36, .. }));
    }

    #[test]
    fn device_capacity_enforced_across_contexts() {
        let mut g = GpuDevice::new(DeviceId::new(1), StreamId::new(1), 1000, 46);
        g.create_context(600).unwrap();
        let err = g.create_context(600).unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { .. }));
    }

    #[test]
    fn kernel_computes_on_device_memory() {
        let cm = CostModel::default();
        let mut g = gpu();
        let ctx = g.create_context(4096).unwrap();
        let buf = g.alloc(ctx, 16).unwrap();
        let init: Vec<u8> = [1.0f32, 2.0, 3.0, 4.0]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        g.write_buffer(ctx, buf, 0, &init).unwrap();
        g.register_kernel(ctx, "scale", scale_kernel()).unwrap();
        let desc = GpuKernelDesc {
            flops: 4.0,
            mem_bytes: 32.0,
            sm_demand: 1,
        };
        let t = g
            .launch(
                &cm,
                ctx,
                "scale",
                &[KernelArg::Buffer(buf), KernelArg::Float(2.0)],
                desc,
            )
            .unwrap();
        assert!(t >= cm.gpu_kernel_launch);
        let mut out = [0u8; 4];
        g.read_buffer(ctx, buf, 0, &mut out).unwrap();
        assert_eq!(f32::from_le_bytes(out), 2.0);
        assert_eq!(g.kernels_launched(ctx).unwrap(), 1);
        assert_eq!(g.total_launches(), 1);
    }

    #[test]
    fn unknown_kernel_rejected() {
        let cm = CostModel::default();
        let mut g = gpu();
        let ctx = g.create_context(4096).unwrap();
        let desc = GpuKernelDesc {
            flops: 1.0,
            mem_bytes: 1.0,
            sm_demand: 1,
        };
        let err = g.launch(&cm, ctx, "nope", &[], desc).unwrap_err();
        assert_eq!(err, GpuError::UnknownKernel("nope".into()));
    }

    #[test]
    fn exec_time_contention_shape() {
        let cm = CostModel::default();
        // A small kernel (8 SM demand) should not slow down with 2 tenants on
        // a 46-SM machine but must slow down with 16.
        let small = GpuKernelDesc {
            flops: 1e8,
            mem_bytes: 0.0,
            sm_demand: 8,
        };
        let t1 = GpuDevice::exec_time(&cm, 46, 1, small);
        let t2 = GpuDevice::exec_time(&cm, 46, 2, small);
        let t16 = GpuDevice::exec_time(&cm, 46, 16, small);
        // Two tenants: only the mild launch-path contention applies.
        assert!(t2 >= t1);
        assert!(t2 < t1.scale(1.3));
        assert!(t16 > t2);
        // A machine-filling kernel slows down immediately.
        let big = GpuKernelDesc {
            flops: 1e9,
            mem_bytes: 0.0,
            sm_demand: 46,
        };
        assert!(GpuDevice::exec_time(&cm, 46, 2, big) > GpuDevice::exec_time(&cm, 46, 1, big));
    }

    #[test]
    fn destroy_context_releases_quota() {
        let mut g = GpuDevice::new(DeviceId::new(1), StreamId::new(1), 1000, 46);
        let ctx = g.create_context(600).unwrap();
        g.destroy_context(ctx).unwrap();
        assert_eq!(g.memory_used(), 0);
        assert!(g.create_context(600).is_ok());
        assert_eq!(
            g.destroy_context(ctx).unwrap_err(),
            GpuError::UnknownContext(ctx)
        );
    }

    #[test]
    fn reset_clears_everything() {
        let mut g = gpu();
        let ctx = g.create_context(4096).unwrap();
        let _ = g.alloc(ctx, 64).unwrap();
        g.reset();
        assert_eq!(g.context_count(), 0);
        assert_eq!(g.memory_used(), 0);
        assert_eq!(g.total_launches(), 0);
        // Old handles are dead.
        assert!(g.alloc(ctx, 1).is_err());
    }

    #[test]
    fn out_of_bounds_access_rejected() {
        let mut g = gpu();
        let ctx = g.create_context(4096).unwrap();
        let buf = g.alloc(ctx, 8).unwrap();
        let err = g.write_buffer(ctx, buf, 6, &[0; 4]).unwrap_err();
        assert!(matches!(err, GpuError::OutOfBounds { .. }));
    }

    #[test]
    fn free_zeroes_and_releases() {
        let mut g = gpu();
        let ctx = g.create_context(100).unwrap();
        let buf = g.alloc(ctx, 64).unwrap();
        g.free(ctx, buf).unwrap();
        let mut out = [0u8; 1];
        assert!(g.read_buffer(ctx, buf, 0, &mut out).is_err());
        assert!(g.alloc(ctx, 64).is_ok(), "quota was released");
    }

    #[test]
    fn sim_device_trait_surface() {
        let g = gpu();
        assert_eq!(g.kind(), DeviceKind::Gpu);
        assert_eq!(g.compatible(), "nvidia,gtx2080");
        let sig = g.sign_config(b"cfg");
        assert!(g.rot_public().verify(b"cfg", &sig).is_ok());
    }
}
