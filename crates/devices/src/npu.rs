//! A VTA-class NPU simulator.
//!
//! The paper builds its NPU "by implementing a simulated QEMU PCIe device
//! that runs VTA's fsim simulator code" and enforces "isolated concurrent
//! NPU code execution within the device using virtual memory" (§V-B). This
//! module is the Rust analogue: an interpreter for a VTA-style instruction
//! set (LOAD / GEMM / ALU / STORE) over int8 tensors with int32 accumulation,
//! with per-context buffer isolation and a MAC-throughput cost model.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use cronus_crypto::{KeyPair, PublicKey, Signature};
use cronus_obs::{FlightRecorder, QueueKind};
use cronus_sim::tzpc::DeviceId;
use cronus_sim::{CostModel, SimNs, StreamId};

use crate::{device_rot_keypair, DeviceKind, SimDevice};

/// Handle to an NPU execution context.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NpuContextId(u32);

/// Handle to an NPU device-memory buffer (context-scoped).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NpuBuffer(u64);

impl NpuBuffer {
    /// Reconstructs a handle from its raw id (runtime wire format).
    pub const fn from_raw(raw: u64) -> Self {
        NpuBuffer(raw)
    }

    /// The raw handle id (runtime wire format).
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

/// Element-wise ALU operations on the accumulator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AluOp {
    /// `acc += imm`
    AddImm(i32),
    /// `acc = max(acc, imm)` — ReLU is `MaxImm(0)`.
    MaxImm(i32),
    /// `acc = min(acc, imm)`
    MinImm(i32),
    /// Arithmetic right shift (requantization).
    ShrImm(u8),
}

/// One VTA instruction.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum VtaInsn {
    /// Loads an `rows x cols` i8 matrix from device memory into the input
    /// scratchpad. `stride` is the row pitch in bytes (2-D DMA); pass
    /// `cols` for a dense matrix.
    LoadInp {
        src: NpuBuffer,
        offset: u64,
        rows: usize,
        cols: usize,
        stride: usize,
    },
    /// Loads an `rows x cols` i8 matrix into the weight scratchpad (same
    /// 2-D addressing as `LoadInp`).
    LoadWgt {
        src: NpuBuffer,
        offset: u64,
        rows: usize,
        cols: usize,
        stride: usize,
    },
    /// Zeroes the accumulator and shapes it `rows x cols` (i32).
    ResetAcc { rows: usize, cols: usize },
    /// `acc[m x n] += inp[m x k] * wgt[n x k]^T` (VTA weight layout).
    Gemm,
    /// Applies an ALU op across the accumulator.
    Alu(AluOp),
    /// Stores the accumulator, saturated to i8, into device memory with a
    /// row pitch of `stride` bytes.
    StoreAcc {
        dst: NpuBuffer,
        offset: u64,
        stride: usize,
    },
}

/// A compiled NPU program (what the TVM-like compiler emits).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VtaProgram {
    /// Instruction sequence.
    pub insns: Vec<VtaInsn>,
}

impl VtaProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        VtaProgram::default()
    }

    /// Appends an instruction (builder style).
    pub fn push(&mut self, insn: VtaInsn) -> &mut Self {
        self.insns.push(insn);
        self
    }

    /// Total multiply-accumulate operations in the program, given the
    /// scratchpad shapes at each GEMM (computed by simulating shapes).
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }
}

/// Errors raised by NPU operations.
#[derive(Clone, Debug, PartialEq)]
pub enum NpuError {
    /// Stale or foreign context id.
    UnknownContext(NpuContextId),
    /// Unknown (or cross-context) buffer handle.
    UnknownBuffer(NpuBuffer),
    /// Context quota or device capacity exhausted.
    OutOfMemory { requested: u64, available: u64 },
    /// Buffer access out of bounds.
    OutOfBounds {
        buffer: NpuBuffer,
        offset: u64,
        len: u64,
    },
    /// GEMM with mismatched scratchpad shapes.
    ShapeMismatch {
        inp: (usize, usize),
        wgt: (usize, usize),
        acc: (usize, usize),
    },
    /// Instruction needs scratchpad state that was never loaded.
    ScratchpadEmpty(&'static str),
}

impl fmt::Display for NpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NpuError::UnknownContext(c) => write!(f, "unknown npu context {c:?}"),
            NpuError::UnknownBuffer(b) => write!(f, "unknown npu buffer {b:?}"),
            NpuError::OutOfMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "npu out of memory: requested {requested}, available {available}"
                )
            }
            NpuError::OutOfBounds {
                buffer,
                offset,
                len,
            } => {
                write!(f, "access [{offset}, +{len}) out of bounds for {buffer:?}")
            }
            NpuError::ShapeMismatch { inp, wgt, acc } => write!(
                f,
                "gemm shape mismatch: inp {inp:?}, wgt {wgt:?}, acc {acc:?}"
            ),
            NpuError::ScratchpadEmpty(which) => {
                write!(f, "{which} scratchpad is empty")
            }
        }
    }
}

impl std::error::Error for NpuError {}

#[derive(Default)]
struct Scratchpads {
    inp: Option<(Vec<i8>, usize, usize)>,
    wgt: Option<(Vec<i8>, usize, usize)>,
    acc: Option<(Vec<i32>, usize, usize)>,
}

struct NpuContextState {
    buffers: HashMap<u64, Vec<u8>>,
    quota: u64,
    used: u64,
    pads: Scratchpads,
    programs_run: u64,
}

/// The simulated NPU device.
pub struct NpuDevice {
    id: DeviceId,
    stream: StreamId,
    rot: KeyPair,
    capacity: u64,
    used: u64,
    contexts: HashMap<u32, NpuContextState>,
    next_ctx: u32,
    next_buf: u64,
    pending_irqs: u32,
    irq_raised_at: VecDeque<SimNs>,
    recorder: Option<FlightRecorder>,
}

impl fmt::Debug for NpuDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NpuDevice")
            .field("id", &self.id)
            .field("contexts", &self.contexts.len())
            .finish_non_exhaustive()
    }
}

impl NpuDevice {
    /// Creates an NPU with `capacity` bytes of device memory.
    pub fn new(id: DeviceId, stream: StreamId, capacity: u64) -> Self {
        NpuDevice {
            id,
            stream,
            rot: device_rot_keypair("vta", id),
            capacity,
            used: 0,
            contexts: HashMap::new(),
            next_ctx: 1,
            next_buf: 1,
            pending_irqs: 0,
            irq_raised_at: VecDeque::new(),
            recorder: None,
        }
    }

    /// Installs a flight recorder: program runs gain spans on the `npu:<id>`
    /// track plus run-count/latency metrics, and the completion-IRQ queue
    /// reports to the queue observatory.
    pub fn set_recorder(&mut self, rec: FlightRecorder) {
        rec.queue_declare(
            &format!("npu:{}.completion", self.id.as_u32()),
            QueueKind::Completion,
            crate::gpu::IRQ_QUEUE_SLOTS,
        );
        self.recorder = Some(rec);
    }

    /// A VTA-class device (256 MiB).
    pub fn vta(id: DeviceId, stream: StreamId) -> Self {
        NpuDevice::new(id, stream, 256 << 20)
    }

    /// Opens a context with a memory quota.
    ///
    /// # Errors
    ///
    /// [`NpuError::OutOfMemory`].
    pub fn create_context(&mut self, quota: u64) -> Result<NpuContextId, NpuError> {
        if self.used + quota > self.capacity {
            return Err(NpuError::OutOfMemory {
                requested: quota,
                available: self.capacity - self.used,
            });
        }
        self.used += quota;
        let id = self.next_ctx;
        self.next_ctx += 1;
        self.contexts.insert(
            id,
            NpuContextState {
                buffers: HashMap::new(),
                quota,
                used: 0,
                pads: Scratchpads::default(),
                programs_run: 0,
            },
        );
        Ok(NpuContextId(id))
    }

    /// Destroys a context, zeroing its buffers.
    ///
    /// # Errors
    ///
    /// [`NpuError::UnknownContext`].
    pub fn destroy_context(&mut self, ctx: NpuContextId) -> Result<(), NpuError> {
        let mut state = self
            .contexts
            .remove(&ctx.0)
            .ok_or(NpuError::UnknownContext(ctx))?;
        for buf in state.buffers.values_mut() {
            buf.fill(0);
        }
        self.used -= state.quota;
        Ok(())
    }

    fn ctx_mut(&mut self, ctx: NpuContextId) -> Result<&mut NpuContextState, NpuError> {
        self.contexts
            .get_mut(&ctx.0)
            .ok_or(NpuError::UnknownContext(ctx))
    }

    /// Allocates device memory.
    ///
    /// # Errors
    ///
    /// Context/quota errors as above.
    pub fn alloc(&mut self, ctx: NpuContextId, len: u64) -> Result<NpuBuffer, NpuError> {
        let handle = self.next_buf;
        let state = self.ctx_mut(ctx)?;
        if state.used + len > state.quota {
            return Err(NpuError::OutOfMemory {
                requested: len,
                available: state.quota - state.used,
            });
        }
        state.used += len;
        state.buffers.insert(handle, vec![0u8; len as usize]);
        self.next_buf += 1;
        Ok(NpuBuffer(handle))
    }

    /// Writes host bytes into a device buffer.
    ///
    /// # Errors
    ///
    /// Buffer/context errors.
    pub fn write_buffer(
        &mut self,
        ctx: NpuContextId,
        buf: NpuBuffer,
        offset: u64,
        data: &[u8],
    ) -> Result<(), NpuError> {
        if let Some(rec) = &self.recorder {
            rec.counter_add("npu.dma_bytes", &[("dir", "h2d")], data.len() as u64);
        }
        let state = self.ctx_mut(ctx)?;
        let dst = state
            .buffers
            .get_mut(&buf.0)
            .ok_or(NpuError::UnknownBuffer(buf))?;
        let end = offset as usize + data.len();
        if end > dst.len() {
            return Err(NpuError::OutOfBounds {
                buffer: buf,
                offset,
                len: data.len() as u64,
            });
        }
        dst[offset as usize..end].copy_from_slice(data);
        Ok(())
    }

    /// Reads a device buffer into host bytes.
    ///
    /// # Errors
    ///
    /// Buffer/context errors.
    pub fn read_buffer(
        &mut self,
        ctx: NpuContextId,
        buf: NpuBuffer,
        offset: u64,
        out: &mut [u8],
    ) -> Result<(), NpuError> {
        if let Some(rec) = &self.recorder {
            rec.counter_add("npu.dma_bytes", &[("dir", "d2h")], out.len() as u64);
        }
        let state = self.ctx_mut(ctx)?;
        let src = state
            .buffers
            .get(&buf.0)
            .ok_or(NpuError::UnknownBuffer(buf))?;
        let end = offset as usize + out.len();
        if end > src.len() {
            return Err(NpuError::OutOfBounds {
                buffer: buf,
                offset,
                len: out.len() as u64,
            });
        }
        out.copy_from_slice(&src[offset as usize..end]);
        Ok(())
    }

    /// Runs a program to completion, returning the simulated execution time.
    ///
    /// # Errors
    ///
    /// Shape/buffer/context errors from individual instructions. On error the
    /// scratchpads are left as-is (the device would raise an interrupt).
    pub fn run(
        &mut self,
        cost: &CostModel,
        ctx: NpuContextId,
        program: &VtaProgram,
    ) -> Result<SimNs, NpuError> {
        let mut total = SimNs::ZERO;
        // Split borrows: temporarily take the state out of the map.
        let state = self.ctx_mut(ctx)?;
        for insn in &program.insns {
            total += Self::step(cost, state, insn)?;
        }
        state.programs_run += 1;
        self.pending_irqs += 1;
        if let Some(rec) = &self.recorder {
            rec.counter_add("npu.programs_run", &[], 1);
            rec.counter_add("npu.insns_run", &[], program.insns.len() as u64);
            rec.observe("npu.program_ns", &[], total);
            // Device-timebase span, not attributed to the ambient request
            // (the sRPC layer covers the request's kernel phase on the
            // stream track; see the GPU device for the rationale).
            let track = rec.track(&format!("npu:{}", self.id.as_u32()));
            let start = rec.total_elapsed();
            let req = rec.current_req();
            rec.set_current_req(None);
            rec.complete_span(
                track,
                "vta-program".to_string(),
                "kernel",
                start,
                start + total,
            );
            rec.set_current_req(req);
            // Completion IRQ raised when the program finishes; queued until
            // the driver's ISR services it.
            let raised = start + total;
            self.irq_raised_at.push_back(raised);
            rec.queue_enqueue(&format!("npu:{}.completion", self.id.as_u32()), raised);
        }
        Ok(total)
    }

    fn step(
        cost: &CostModel,
        state: &mut NpuContextState,
        insn: &VtaInsn,
    ) -> Result<SimNs, NpuError> {
        let issue = cost.npu_issue;
        match *insn {
            VtaInsn::LoadInp {
                src,
                offset,
                rows,
                cols,
                stride,
            } => {
                let data = Self::load_i8_2d(state, src, offset, rows, cols, stride)?;
                state.pads.inp = Some((data, rows, cols));
                Ok(issue + cost.pcie_copy((rows * cols) as u64))
            }
            VtaInsn::LoadWgt {
                src,
                offset,
                rows,
                cols,
                stride,
            } => {
                let data = Self::load_i8_2d(state, src, offset, rows, cols, stride)?;
                state.pads.wgt = Some((data, rows, cols));
                Ok(issue + cost.pcie_copy((rows * cols) as u64))
            }
            VtaInsn::ResetAcc { rows, cols } => {
                state.pads.acc = Some((vec![0i32; rows * cols], rows, cols));
                Ok(issue)
            }
            VtaInsn::Gemm => {
                let (inp, m, k) = state
                    .pads
                    .inp
                    .as_ref()
                    .ok_or(NpuError::ScratchpadEmpty("input"))?;
                let (wgt, n, k2) = state
                    .pads
                    .wgt
                    .as_ref()
                    .ok_or(NpuError::ScratchpadEmpty("weight"))?;
                let (acc, am, an) = state
                    .pads
                    .acc
                    .as_mut()
                    .ok_or(NpuError::ScratchpadEmpty("accumulator"))?;
                if *k != *k2 || *am != *m || *an != *n {
                    return Err(NpuError::ShapeMismatch {
                        inp: (*m, *k),
                        wgt: (*n, *k2),
                        acc: (*am, *an),
                    });
                }
                for i in 0..*m {
                    for j in 0..*n {
                        let mut sum = 0i32;
                        for kk in 0..*k {
                            sum += inp[i * *k + kk] as i32 * wgt[j * *k + kk] as i32;
                        }
                        acc[i * *n + j] += sum;
                    }
                }
                let macs = (*m * *n * *k) as f64;
                Ok(issue + cost.npu_gemm(macs))
            }
            VtaInsn::Alu(op) => {
                let (acc, _, _) = state
                    .pads
                    .acc
                    .as_mut()
                    .ok_or(NpuError::ScratchpadEmpty("accumulator"))?;
                for v in acc.iter_mut() {
                    *v = match op {
                        AluOp::AddImm(imm) => v.saturating_add(imm),
                        AluOp::MaxImm(imm) => (*v).max(imm),
                        AluOp::MinImm(imm) => (*v).min(imm),
                        AluOp::ShrImm(s) => *v >> s,
                    };
                }
                Ok(issue + SimNs::from_nanos(acc.len() as u64 / 16 + 1))
            }
            VtaInsn::StoreAcc {
                dst,
                offset,
                stride,
            } => {
                let (acc, rows, cols) = state
                    .pads
                    .acc
                    .as_ref()
                    .ok_or(NpuError::ScratchpadEmpty("accumulator"))?;
                let (rows, cols) = (*rows, *cols);
                let stride = stride.max(cols);
                let bytes: Vec<u8> = acc
                    .iter()
                    .map(|v| (*v).clamp(i8::MIN as i32, i8::MAX as i32) as i8 as u8)
                    .collect();
                let buf = state
                    .buffers
                    .get_mut(&dst.0)
                    .ok_or(NpuError::UnknownBuffer(dst))?;
                let end = offset as usize + (rows - 1) * stride + cols;
                if rows == 0 || end > buf.len() {
                    return Err(NpuError::OutOfBounds {
                        buffer: dst,
                        offset,
                        len: (rows * cols) as u64,
                    });
                }
                for r in 0..rows {
                    let dst_off = offset as usize + r * stride;
                    buf[dst_off..dst_off + cols].copy_from_slice(&bytes[r * cols..(r + 1) * cols]);
                }
                Ok(issue + cost.pcie_copy((rows * cols) as u64))
            }
        }
    }

    fn load_i8_2d(
        state: &NpuContextState,
        src: NpuBuffer,
        offset: u64,
        rows: usize,
        cols: usize,
        stride: usize,
    ) -> Result<Vec<i8>, NpuError> {
        let stride = stride.max(cols);
        let buf = state
            .buffers
            .get(&src.0)
            .ok_or(NpuError::UnknownBuffer(src))?;
        if rows == 0 || cols == 0 {
            return Ok(Vec::new());
        }
        let end = offset as usize + (rows - 1) * stride + cols;
        if end > buf.len() {
            return Err(NpuError::OutOfBounds {
                buffer: src,
                offset,
                len: (rows * cols) as u64,
            });
        }
        let mut out = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            let row_off = offset as usize + r * stride;
            out.extend(buf[row_off..row_off + cols].iter().map(|b| *b as i8));
        }
        Ok(out)
    }

    /// Takes (and clears) the pending completion interrupts.
    pub fn take_irqs(&mut self) -> u32 {
        let n = std::mem::take(&mut self.pending_irqs);
        if let Some(rec) = &self.recorder {
            let now = rec.total_elapsed();
            let qname = format!("npu:{}.completion", self.id.as_u32());
            while let Some(raised) = self.irq_raised_at.pop_front() {
                rec.queue_dequeue(
                    &qname,
                    now.max(raised),
                    now.saturating_sub(raised),
                    SimNs::ZERO,
                );
            }
        } else {
            self.irq_raised_at.clear();
        }
        n
    }

    /// Programs completed in a context.
    ///
    /// # Errors
    ///
    /// [`NpuError::UnknownContext`].
    pub fn programs_run(&self, ctx: NpuContextId) -> Result<u64, NpuError> {
        self.contexts
            .get(&ctx.0)
            .map(|s| s.programs_run)
            .ok_or(NpuError::UnknownContext(ctx))
    }
}

impl SimDevice for NpuDevice {
    fn id(&self) -> DeviceId {
        self.id
    }

    fn dma_stream(&self) -> StreamId {
        self.stream
    }

    fn compatible(&self) -> &str {
        "tvm,vta-fsim"
    }

    fn kind(&self) -> DeviceKind {
        DeviceKind::Npu
    }

    fn rot_public(&self) -> PublicKey {
        self.rot.public()
    }

    fn sign_config(&self, config: &[u8]) -> Signature {
        self.rot.sign(config)
    }

    fn context_count(&self) -> usize {
        self.contexts.len()
    }

    fn reset(&mut self) {
        for state in self.contexts.values_mut() {
            for buf in state.buffers.values_mut() {
                buf.fill(0);
            }
        }
        self.contexts.clear();
        self.used = 0;
        self.pending_irqs = 0;
        // Reset discards in-flight completions: flush the queue station so
        // the observatory sees the drop rather than a stuck depth.
        if let Some(rec) = &self.recorder {
            let now = rec.total_elapsed();
            rec.queue_flush(&format!("npu:{}.completion", self.id.as_u32()), now);
        }
        self.irq_raised_at.clear();
        self.next_ctx = 1;
        self.next_buf = 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn npu() -> NpuDevice {
        NpuDevice::new(DeviceId::new(2), StreamId::new(2), 1 << 20)
    }

    /// Runs `acc = relu(inp[m x k] * wgt[n x k]^T)` through the ISA.
    fn matmul_relu(
        dev: &mut NpuDevice,
        ctx: NpuContextId,
        inp: &[i8],
        wgt: &[i8],
        m: usize,
        n: usize,
        k: usize,
    ) -> Vec<i8> {
        let cm = CostModel::default();
        let a = dev.alloc(ctx, (m * k) as u64).unwrap();
        let b = dev.alloc(ctx, (n * k) as u64).unwrap();
        let out = dev.alloc(ctx, (m * n) as u64).unwrap();
        let inp_u8: Vec<u8> = inp.iter().map(|v| *v as u8).collect();
        let wgt_u8: Vec<u8> = wgt.iter().map(|v| *v as u8).collect();
        dev.write_buffer(ctx, a, 0, &inp_u8).unwrap();
        dev.write_buffer(ctx, b, 0, &wgt_u8).unwrap();
        let mut prog = VtaProgram::new();
        prog.push(VtaInsn::LoadInp {
            src: a,
            offset: 0,
            rows: m,
            cols: k,
            stride: k,
        })
        .push(VtaInsn::LoadWgt {
            src: b,
            offset: 0,
            rows: n,
            cols: k,
            stride: k,
        })
        .push(VtaInsn::ResetAcc { rows: m, cols: n })
        .push(VtaInsn::Gemm)
        .push(VtaInsn::Alu(AluOp::MaxImm(0)))
        .push(VtaInsn::StoreAcc {
            dst: out,
            offset: 0,
            stride: n,
        });
        let t = dev.run(&cm, ctx, &prog).unwrap();
        assert!(t > SimNs::ZERO);
        let mut bytes = vec![0u8; m * n];
        dev.read_buffer(ctx, out, 0, &mut bytes).unwrap();
        bytes.iter().map(|b| *b as i8).collect()
    }

    #[test]
    fn gemm_computes_correctly() {
        let mut dev = npu();
        let ctx = dev.create_context(4096).unwrap();
        // inp = [[1, 2], [3, 4]], wgt = [[1, 0], [0, 1]] (identity) => out = inp.
        let out = matmul_relu(&mut dev, ctx, &[1, 2, 3, 4], &[1, 0, 0, 1], 2, 2, 2);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut dev = npu();
        let ctx = dev.create_context(4096).unwrap();
        // inp = [[-1, 2]], wgt = identity => pre-relu [-1, 2] => relu [0, 2].
        let out = matmul_relu(&mut dev, ctx, &[-1, 2], &[1, 0, 0, 1], 1, 2, 2);
        assert_eq!(out, vec![0, 2]);
    }

    #[test]
    fn store_saturates_to_i8() {
        let mut dev = npu();
        let ctx = dev.create_context(4096).unwrap();
        // 100 * 2 = 200 saturates to 127.
        let out = matmul_relu(&mut dev, ctx, &[100], &[2], 1, 1, 1);
        assert_eq!(out, vec![127]);
    }

    #[test]
    fn gemm_shape_mismatch_rejected() {
        let cm = CostModel::default();
        let mut dev = npu();
        let ctx = dev.create_context(4096).unwrap();
        let a = dev.alloc(ctx, 4).unwrap();
        dev.write_buffer(ctx, a, 0, &[1, 1, 1, 1]).unwrap();
        let mut prog = VtaProgram::new();
        prog.push(VtaInsn::LoadInp {
            src: a,
            offset: 0,
            rows: 2,
            cols: 2,
            stride: 2,
        })
        .push(VtaInsn::LoadWgt {
            src: a,
            offset: 0,
            rows: 1,
            cols: 4,
            stride: 4,
        })
        .push(VtaInsn::ResetAcc { rows: 2, cols: 1 })
        .push(VtaInsn::Gemm);
        let err = dev.run(&cm, ctx, &prog).unwrap_err();
        assert!(matches!(err, NpuError::ShapeMismatch { .. }));
    }

    #[test]
    fn gemm_without_loads_rejected() {
        let cm = CostModel::default();
        let mut dev = npu();
        let ctx = dev.create_context(4096).unwrap();
        let mut prog = VtaProgram::new();
        prog.push(VtaInsn::Gemm);
        assert_eq!(
            dev.run(&cm, ctx, &prog).unwrap_err(),
            NpuError::ScratchpadEmpty("input")
        );
    }

    #[test]
    fn contexts_are_isolated() {
        let mut dev = npu();
        let a = dev.create_context(4096).unwrap();
        let b = dev.create_context(4096).unwrap();
        let buf = dev.alloc(a, 16).unwrap();
        let mut out = [0u8; 1];
        assert_eq!(
            dev.read_buffer(b, buf, 0, &mut out).unwrap_err(),
            NpuError::UnknownBuffer(buf)
        );
    }

    #[test]
    fn alu_shift_requantizes() {
        let cm = CostModel::default();
        let mut dev = npu();
        let ctx = dev.create_context(4096).unwrap();
        let a = dev.alloc(ctx, 1).unwrap();
        let out = dev.alloc(ctx, 1).unwrap();
        dev.write_buffer(ctx, a, 0, &[64]).unwrap();
        let mut prog = VtaProgram::new();
        prog.push(VtaInsn::LoadInp {
            src: a,
            offset: 0,
            rows: 1,
            cols: 1,
            stride: 1,
        })
        .push(VtaInsn::LoadWgt {
            src: a,
            offset: 0,
            rows: 1,
            cols: 1,
            stride: 1,
        })
        .push(VtaInsn::ResetAcc { rows: 1, cols: 1 })
        .push(VtaInsn::Gemm) // 64 * 64 = 4096
        .push(VtaInsn::Alu(AluOp::ShrImm(6))) // 4096 >> 6 = 64
        .push(VtaInsn::StoreAcc {
            dst: out,
            offset: 0,
            stride: 1,
        });
        dev.run(&cm, ctx, &prog).unwrap();
        let mut b = [0u8; 1];
        dev.read_buffer(ctx, out, 0, &mut b).unwrap();
        assert_eq!(b[0] as i8, 64);
    }

    #[test]
    fn cost_scales_with_gemm_size() {
        let cm = CostModel::default();
        let mut dev = npu();
        let ctx = dev.create_context(1 << 16).unwrap();
        let small = matmul_time(&cm, &mut dev, ctx, 4);
        let large = matmul_time(&cm, &mut dev, ctx, 32);
        assert!(large > small);

        fn matmul_time(
            cm: &CostModel,
            dev: &mut NpuDevice,
            ctx: NpuContextId,
            dim: usize,
        ) -> SimNs {
            let a = dev.alloc(ctx, (dim * dim) as u64).unwrap();
            let mut prog = VtaProgram::new();
            prog.push(VtaInsn::LoadInp {
                src: a,
                offset: 0,
                rows: dim,
                cols: dim,
                stride: dim,
            })
            .push(VtaInsn::LoadWgt {
                src: a,
                offset: 0,
                rows: dim,
                cols: dim,
                stride: dim,
            })
            .push(VtaInsn::ResetAcc {
                rows: dim,
                cols: dim,
            })
            .push(VtaInsn::Gemm);
            dev.run(cm, ctx, &prog).unwrap()
        }
    }

    #[test]
    fn reset_clears_contexts_and_counters() {
        let mut dev = npu();
        let ctx = dev.create_context(4096).unwrap();
        let _ = dev.alloc(ctx, 16).unwrap();
        dev.reset();
        assert_eq!(dev.context_count(), 0);
        assert!(dev.alloc(ctx, 1).is_err());
    }

    #[test]
    fn programs_run_counter() {
        let cm = CostModel::default();
        let mut dev = npu();
        let ctx = dev.create_context(4096).unwrap();
        assert_eq!(dev.programs_run(ctx).unwrap(), 0);
        let mut prog = VtaProgram::new();
        prog.push(VtaInsn::ResetAcc { rows: 1, cols: 1 });
        dev.run(&cm, ctx, &prog).unwrap();
        dev.run(&cm, ctx, &prog).unwrap();
        assert_eq!(dev.programs_run(ctx).unwrap(), 2);
    }

    #[test]
    fn sim_device_trait_surface() {
        let dev = npu();
        assert_eq!(dev.kind(), DeviceKind::Npu);
        let sig = dev.sign_config(b"vta-config");
        assert!(dev.rot_public().verify(b"vta-config", &sig).is_ok());
    }
}
