//! # cronus-devices — simulated accelerators and the secure PCIe bus
//!
//! The paper evaluates CRONUS with an NVIDIA GTX 2080 (driven by
//! nouveau/gdev), a VTA-compatible NPU (TVM's `fsim` functional simulator
//! wrapped in a QEMU PCIe device), and CPU enclaves. This crate provides the
//! equivalent simulated hardware:
//!
//! * [`bus`] — a PCIe bus model whose DMA path is checked against the
//!   machine's SMMU and TZASC, mirroring the paper's modified QEMU bus that
//!   "allows devices in the secure PCIe bus to conduct DMA access only to
//!   the secure memory region",
//! * [`gpu`] — an SM-based GPU with per-context virtual memory isolation,
//!   named kernels that really compute, and an MPS-style spatial-sharing
//!   contention model,
//! * [`npu`] — a VTA-class NPU executing a LOAD/GEMM/ALU/STORE instruction
//!   set over int8 tensors (the reproduction's analogue of `fsim`),
//! * [`cpu`] — a trivial CPU "device" so CPU mEnclaves fit the same model.
//!
//! Every device carries a hardware root-of-trust key pair used by CRONUS's
//! accelerator-authenticity attestation (§IV-A), exposes a full
//! [`SimDevice::reset`] for failover clearing (§IV-D), and reports
//! per-operation costs from the machine's [`cronus_sim::CostModel`].

pub mod bus;
pub mod cpu;
pub mod gpu;
pub mod npu;

pub use bus::{BusError, PcieBus, PcieSlot};
pub use cpu::CpuDevice;
pub use gpu::{
    GpuBuffer, GpuContextId, GpuDevice, GpuError, GpuKernelDesc, GpuMemAccess, KernelArg, KernelFn,
};
pub use npu::{AluOp, NpuBuffer, NpuContextId, NpuDevice, NpuError, VtaInsn, VtaProgram};

use cronus_crypto::{KeyPair, PublicKey};
use cronus_sim::tzpc::DeviceId;
use cronus_sim::StreamId;

/// The kind of computation a device accelerates; matches the manifest's
/// `device_type` field.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DeviceKind {
    /// General-purpose CPU (the paper's CPU mEnclave substrate).
    Cpu,
    /// CUDA-class GPU.
    Gpu,
    /// VTA-class NPU.
    Npu,
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceKind::Cpu => f.write_str("cpu"),
            DeviceKind::Gpu => f.write_str("gpu"),
            DeviceKind::Npu => f.write_str("npu"),
        }
    }
}

/// Behaviour common to all simulated devices.
pub trait SimDevice {
    /// Bus/TZPC identifier.
    fn id(&self) -> DeviceId;

    /// SMMU stream used for this device's DMA.
    fn dma_stream(&self) -> StreamId;

    /// Device-tree compatible string.
    fn compatible(&self) -> &str;

    /// Kind of accelerator.
    fn kind(&self) -> DeviceKind;

    /// Hardware root-of-trust public key (the paper's `PubK_acc`).
    fn rot_public(&self) -> PublicKey;

    /// Digest of the root-of-trust public key, as recorded by the SPM's
    /// security-event ledger in `device-endorsed` records.
    fn rot_digest(&self) -> cronus_crypto::Digest {
        cronus_crypto::measure("rot-public", &self.rot_public().0.to_le_bytes())
    }

    /// Signs `config` with the hardware key, proving authenticity.
    fn sign_config(&self, config: &[u8]) -> cronus_crypto::Signature;

    /// Number of live contexts (spatially sharing tenants).
    fn context_count(&self) -> usize;

    /// Clears *all* device state: memory, contexts, queues. Failover step 2
    /// runs this before an mOS reload so a recovered partition cannot read
    /// the crashed tenant's data.
    fn reset(&mut self);
}

/// Creates the deterministic hardware key pair for a device, as if burned
/// into ROM by `vendor`.
pub fn device_rot_keypair(vendor: &str, device: DeviceId) -> KeyPair {
    KeyPair::from_seed(&format!("rot:{vendor}:{}", device.as_u32()))
}

/// Creates the vendor endorsement key pair used by clients to check that
/// `PubK_acc` "is endorsed by the accelerator vendors" (§IV-A).
pub fn vendor_keypair(vendor: &str) -> KeyPair {
    KeyPair::from_seed(&format!("vendor:{vendor}"))
}

/// A vendor's endorsement of a device key: `Sign_vendor(PubK_acc)`.
pub fn endorse_device(vendor: &KeyPair, device_key: PublicKey) -> cronus_crypto::Signature {
    vendor.sign(&device_key.0.to_le_bytes())
}

/// Verifies a vendor endorsement.
pub fn verify_endorsement(
    vendor_public: PublicKey,
    device_key: PublicKey,
    endorsement: &cronus_crypto::Signature,
) -> bool {
    vendor_public
        .verify(&device_key.0.to_le_bytes(), endorsement)
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rot_keys_are_per_device() {
        let a = device_rot_keypair("nvidia", DeviceId::new(1));
        let b = device_rot_keypair("nvidia", DeviceId::new(2));
        assert_ne!(a.public(), b.public());
        // Deterministic: same inputs, same key.
        let a2 = device_rot_keypair("nvidia", DeviceId::new(1));
        assert_eq!(a.public(), a2.public());
    }

    #[test]
    fn endorsement_round_trip() {
        let vendor = vendor_keypair("nvidia");
        let dev = device_rot_keypair("nvidia", DeviceId::new(1));
        let sig = endorse_device(&vendor, dev.public());
        assert!(verify_endorsement(vendor.public(), dev.public(), &sig));
        // A different vendor's endorsement does not verify.
        let other = vendor_keypair("fabricated");
        assert!(!verify_endorsement(other.public(), dev.public(), &sig));
        // A fabricated device key is not endorsed.
        let fake = device_rot_keypair("fabricated", DeviceId::new(1));
        assert!(!verify_endorsement(vendor.public(), fake.public(), &sig));
    }

    #[test]
    fn device_kind_display() {
        assert_eq!(DeviceKind::Gpu.to_string(), "gpu");
        assert_eq!(DeviceKind::Npu.to_string(), "npu");
        assert_eq!(DeviceKind::Cpu.to_string(), "cpu");
    }
}
