//! The CPU "device".
//!
//! CRONUS treats CPU TEE computation as just another mEnclave kind (§IV-A):
//! "both launching a CUDA kernel and doing ECalls in a CPU enclave offload
//! the computation of a function to a device". Modeling the CPU as a device
//! lets the mOS/HAL layers stay uniform. The CPU executes registered
//! functions over byte buffers with a scalar-ops cost model.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use cronus_crypto::{KeyPair, PublicKey, Signature};
use cronus_sim::tzpc::DeviceId;
use cronus_sim::{CostModel, SimNs, StreamId};

use crate::{device_rot_keypair, DeviceKind, SimDevice};

/// A registered CPU function: bytes in, bytes out.
pub type CpuFn = Arc<dyn Fn(&[u8]) -> Vec<u8> + Send + Sync>;

/// Errors raised by the CPU device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CpuError {
    /// No function registered under this name in this context.
    UnknownFunction(String),
    /// Stale context id.
    UnknownContext(u32),
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::UnknownFunction(name) => write!(f, "unknown cpu function {name:?}"),
            CpuError::UnknownContext(id) => write!(f, "unknown cpu context {id}"),
        }
    }
}

impl std::error::Error for CpuError {}

#[derive(Default)]
struct CpuContext {
    functions: HashMap<String, CpuFn>,
    calls: u64,
}

/// The simulated CPU device.
pub struct CpuDevice {
    id: DeviceId,
    stream: StreamId,
    rot: KeyPair,
    contexts: HashMap<u32, CpuContext>,
    next_ctx: u32,
}

impl fmt::Debug for CpuDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CpuDevice")
            .field("id", &self.id)
            .field("contexts", &self.contexts.len())
            .finish_non_exhaustive()
    }
}

impl CpuDevice {
    /// Creates a CPU device.
    pub fn new(id: DeviceId, stream: StreamId) -> Self {
        CpuDevice {
            id,
            stream,
            rot: device_rot_keypair("arm", id),
            contexts: HashMap::new(),
            next_ctx: 1,
        }
    }

    /// Opens a context (one CPU mEnclave's function table).
    pub fn create_context(&mut self) -> u32 {
        let id = self.next_ctx;
        self.next_ctx += 1;
        self.contexts.insert(id, CpuContext::default());
        id
    }

    /// Destroys a context.
    ///
    /// # Errors
    ///
    /// [`CpuError::UnknownContext`].
    pub fn destroy_context(&mut self, ctx: u32) -> Result<(), CpuError> {
        self.contexts
            .remove(&ctx)
            .map(|_| ())
            .ok_or(CpuError::UnknownContext(ctx))
    }

    /// Registers `f` as callable function `name` in `ctx` (the analogue of
    /// loading a `.so` mEnclave image and resolving its mECall table).
    ///
    /// # Errors
    ///
    /// [`CpuError::UnknownContext`].
    pub fn register_function(&mut self, ctx: u32, name: &str, f: CpuFn) -> Result<(), CpuError> {
        self.contexts
            .get_mut(&ctx)
            .ok_or(CpuError::UnknownContext(ctx))?
            .functions
            .insert(name.to_string(), f);
        Ok(())
    }

    /// Calls function `name` with `input`, returning the output bytes and
    /// the simulated execution time for `ops` scalar operations.
    ///
    /// # Errors
    ///
    /// [`CpuError::UnknownContext`] or [`CpuError::UnknownFunction`].
    pub fn call(
        &mut self,
        cost: &CostModel,
        ctx: u32,
        name: &str,
        input: &[u8],
        ops: f64,
    ) -> Result<(Vec<u8>, SimNs), CpuError> {
        let state = self
            .contexts
            .get_mut(&ctx)
            .ok_or(CpuError::UnknownContext(ctx))?;
        let f = state
            .functions
            .get(name)
            .ok_or_else(|| CpuError::UnknownFunction(name.to_string()))?
            .clone();
        state.calls += 1;
        let out = f(input);
        Ok((out, cost.cpu_ops(ops)))
    }

    /// Number of calls made in a context.
    pub fn calls(&self, ctx: u32) -> u64 {
        self.contexts.get(&ctx).map(|c| c.calls).unwrap_or(0)
    }
}

impl SimDevice for CpuDevice {
    fn id(&self) -> DeviceId {
        self.id
    }

    fn dma_stream(&self) -> StreamId {
        self.stream
    }

    fn compatible(&self) -> &str {
        "arm,cortex-a53"
    }

    fn kind(&self) -> DeviceKind {
        DeviceKind::Cpu
    }

    fn rot_public(&self) -> PublicKey {
        self.rot.public()
    }

    fn sign_config(&self, config: &[u8]) -> Signature {
        self.rot.sign(config)
    }

    fn context_count(&self) -> usize {
        self.contexts.len()
    }

    fn reset(&mut self) {
        self.contexts.clear();
        self.next_ctx = 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_call() {
        let cm = CostModel::default();
        let mut cpu = CpuDevice::new(DeviceId::new(0), StreamId::new(0));
        let ctx = cpu.create_context();
        cpu.register_function(
            ctx,
            "sum",
            Arc::new(|input| {
                let s: u64 = input.iter().map(|b| *b as u64).sum();
                s.to_le_bytes().to_vec()
            }),
        )
        .unwrap();
        let (out, t) = cpu.call(&cm, ctx, "sum", &[1, 2, 3], 3.0).unwrap();
        assert_eq!(u64::from_le_bytes(out.try_into().unwrap()), 6);
        assert!(t > SimNs::ZERO);
        assert_eq!(cpu.calls(ctx), 1);
    }

    #[test]
    fn unknown_function_and_context() {
        let cm = CostModel::default();
        let mut cpu = CpuDevice::new(DeviceId::new(0), StreamId::new(0));
        let ctx = cpu.create_context();
        assert_eq!(
            cpu.call(&cm, ctx, "nope", &[], 1.0).unwrap_err(),
            CpuError::UnknownFunction("nope".into())
        );
        assert_eq!(
            cpu.call(&cm, 999, "nope", &[], 1.0).unwrap_err(),
            CpuError::UnknownContext(999)
        );
    }

    #[test]
    fn destroy_and_reset() {
        let mut cpu = CpuDevice::new(DeviceId::new(0), StreamId::new(0));
        let ctx = cpu.create_context();
        assert_eq!(cpu.context_count(), 1);
        cpu.destroy_context(ctx).unwrap();
        assert_eq!(cpu.context_count(), 0);
        assert!(cpu.destroy_context(ctx).is_err());
        let _ = cpu.create_context();
        cpu.reset();
        assert_eq!(cpu.context_count(), 0);
    }

    #[test]
    fn rot_key_signs() {
        let cpu = CpuDevice::new(DeviceId::new(0), StreamId::new(0));
        let sig = cpu.sign_config(b"cfg");
        assert!(cpu.rot_public().verify(b"cfg", &sig).is_ok());
        assert_eq!(cpu.kind(), DeviceKind::Cpu);
    }
}
