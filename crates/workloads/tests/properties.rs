//! Property-based tests for workload reference implementations and model
//! accounting.
//!
//! The full generated suite lives in the gated `full` module (enable with the
//! non-default `proptest` feature, e.g. `cargo test --all-features`); the
//! `smoke` module keeps a deterministic subset always on.

#[cfg(feature = "proptest")]
mod full {
    use proptest::prelude::*;

    use cronus_workloads::dnn::layers::Layer;
    use cronus_workloads::dnn::models;
    use cronus_workloads::rodinia::{bfs, gaussian, lud, nw, pathfinder};

    proptest! {
        /// Gaussian elimination's solution satisfies the original system for
        /// arbitrary (diagonally dominant) sizes.
        #[test]
        fn gaussian_solution_is_valid(n in 2usize..24) {
            let (a, b) = gaussian::build_system(n);
            let x = gaussian::reference_solve(n);
            for i in 0..n {
                let lhs: f32 = (0..n).map(|j| a[i * n + j] * x[j]).sum();
                prop_assert!((lhs - b[i]).abs() < 1e-2, "row {}: {} vs {}", i, lhs, b[i]);
            }
        }

        /// LU reconstruction recovers the original matrix for arbitrary sizes.
        #[test]
        fn lud_reconstructs(n in 2usize..20) {
            let a = lud::build_matrix(n);
            let back = lud::reconstruct(&lud::reference_lu(n), n);
            for i in 0..n * n {
                prop_assert!((a[i] - back[i]).abs() < 1e-2);
            }
        }

        /// BFS levels are consistent: every reached node at depth d+1 has a
        /// predecessor at depth d.
        #[test]
        fn bfs_levels_consistent(n in 8usize..128) {
            let (offsets, targets) = bfs::build_graph(n, 4);
            let levels = bfs::reference_levels(&offsets, &targets);
            prop_assert_eq!(levels[0], 0);
            for v in 0..n {
                let lv = levels[v];
                if lv != u32::MAX && lv > 0 {
                    // Some u with level lv-1 has an edge to v.
                    let has_pred = (0..n).any(|u| {
                        levels[u] == lv - 1
                            && targets[offsets[u] as usize..offsets[u + 1] as usize]
                                .contains(&(v as u32))
                    });
                    prop_assert!(has_pred, "node {} at level {} lacks a predecessor", v, lv);
                }
            }
        }

        /// Needleman–Wunsch scores are bounded by ±n for n-length sequences.
        #[test]
        fn nw_score_bounds(n in 2usize..64) {
            let score = nw::reference_score(n);
            prop_assert!(score <= n as f32);
            prop_assert!(score >= -(2.0 * n as f32));
        }

        /// Pathfinder costs are bounded by the per-cell cost range: with cell
        /// costs in [0, 10), every best path over `rows` rows lies in
        /// [0, 10 * rows).
        #[test]
        fn pathfinder_costs_bounded(rows in 2usize..16, cols in 4usize..64) {
            let result = pathfinder::reference_result(rows, cols);
            prop_assert_eq!(result.len(), cols);
            for v in result {
                prop_assert!(v >= 0.0);
                prop_assert!(v < 10.0 * rows as f32);
            }
        }

        /// Conv layer accounting: FLOPs scale exactly with channel products and
        /// output area for arbitrary shapes.
        #[test]
        fn conv_flops_scale(in_ch in 1usize..32, out_ch in 1usize..32, hw in 4usize..64) {
            let base = Layer::Conv2d { in_ch, out_ch, kernel: 3, stride: 1, in_hw: hw };
            let double = Layer::Conv2d { in_ch, out_ch: out_ch * 2, kernel: 3, stride: 1, in_hw: hw };
            prop_assert!((double.forward_flops() / base.forward_flops() - 2.0).abs() < 1e-9);
            prop_assert_eq!(base.out_hw(), Some(hw));
            prop_assert!(base.params() > 0);
        }

        /// Every model constructor yields positive FLOPs, params and at least
        /// one parameterized layer; training FLOPs are exactly 3x forward.
        #[test]
        fn model_accounting_invariants(which in 0usize..7) {
            let model = match which {
                0 => models::lenet5(),
                1 => models::vgg16_cifar(),
                2 => models::resnet50_cifar(),
                3 => models::resnet18(),
                4 => models::resnet50(),
                5 => models::densenet121(),
                _ => models::yolov3(),
            };
            prop_assert!(model.forward_flops() > 0.0);
            prop_assert!(model.params() > 0);
            prop_assert!(model.param_layers() >= 1);
            prop_assert!((model.training_flops() - 3.0 * model.forward_flops()).abs() < 1.0);
        }
    }
}

mod smoke {
    use cronus_workloads::dnn::models;
    use cronus_workloads::rodinia::{bfs, gaussian, lud, nw, pathfinder};

    #[test]
    fn reference_kernels_fixed_sizes() {
        let n = 8;
        let (a, b) = gaussian::build_system(n);
        let x = gaussian::reference_solve(n);
        for i in 0..n {
            let lhs: f32 = (0..n).map(|j| a[i * n + j] * x[j]).sum();
            assert!((lhs - b[i]).abs() < 1e-2);
        }

        let m = lud::build_matrix(6);
        let back = lud::reconstruct(&lud::reference_lu(6), 6);
        for i in 0..36 {
            assert!((m[i] - back[i]).abs() < 1e-2);
        }

        let (offsets, targets) = bfs::build_graph(32, 4);
        let levels = bfs::reference_levels(&offsets, &targets);
        assert_eq!(levels[0], 0);

        assert!(nw::reference_score(16) <= 16.0);
        let costs = pathfinder::reference_result(4, 16);
        assert_eq!(costs.len(), 16);
        assert!(costs.iter().all(|v| (0.0..40.0).contains(v)));
    }

    #[test]
    fn model_accounting_fixed() {
        for model in [models::lenet5(), models::resnet18(), models::yolov3()] {
            assert!(model.forward_flops() > 0.0);
            assert!(model.params() > 0);
            assert!(model.param_layers() >= 1);
            assert!((model.training_flops() - 3.0 * model.forward_flops()).abs() < 1.0);
        }
    }
}
