//! # cronus-workloads — the paper's evaluation workloads
//!
//! Everything §VI of the paper runs, rebuilt over the simulated stack:
//!
//! * [`rodinia`] — the ten-program GPU microbenchmark suite of Fig. 7, each
//!   a faithful scaled-down implementation with CPU-verified results;
//! * [`vta_bench`] — the NPU microbenchmark of Fig. 10a (GEMM/ALU
//!   throughput programs over the VTA ISA);
//! * [`dnn`] — a miniature DNN framework (layers, models, synthetic
//!   datasets, a training loop) driving the GPU backend: LeNet, ResNet-50,
//!   VGG-16 and DenseNet for Fig. 8 and Fig. 11;
//! * [`inference`] — TVM-style quantized inference on the NPU for Fig. 10b;
//! * [`backend`] — the [`backend::GpuBackend`] seam that lets the same
//!   workloads run on CRONUS and on every baseline system.

pub mod backend;
pub mod dnn;
pub mod inference;
pub mod kernels;
pub mod rodinia;
pub mod vta_bench;

pub use backend::{Arg, BackendError, CronusGpuBackend, GpuBackend};

/// Test/benchmark fixtures shared across the workspace.
pub mod testutil {
    use std::collections::BTreeMap;

    use cronus_core::{Actor, CronusSystem, EnclaveRef};
    use cronus_devices::DeviceKind;
    use cronus_mos::manifest::Manifest;
    use cronus_runtime::{CudaContext, CudaOptions, VtaContext, VtaOptions};
    use cronus_spm::spm::{BootConfig, DeviceSpec, PartitionSpec};

    use crate::backend::CronusGpuBackend;

    /// Boots a CPU + GPU system and creates the driving CPU mEnclave.
    pub fn cronus_gpu_system() -> (CronusSystem, EnclaveRef) {
        let mut sys = CronusSystem::boot(BootConfig {
            partitions: vec![
                PartitionSpec::new(1, b"cpu-mos", "v1", DeviceSpec::Cpu),
                PartitionSpec::new(
                    2,
                    b"cuda-mos",
                    "v3",
                    DeviceSpec::Gpu {
                        memory: 1 << 28,
                        sms: 46,
                    },
                ),
            ],
            ..Default::default()
        });
        let app = sys.create_app();
        let cpu = sys
            .create_enclave(
                Actor::App(app),
                Manifest::new(DeviceKind::Cpu).with_memory(1 << 20),
                &BTreeMap::new(),
            )
            .expect("cpu enclave");
        (sys, cpu)
    }

    /// Boots a CPU + NPU system and creates the driving CPU mEnclave.
    pub fn cronus_npu_system() -> (CronusSystem, EnclaveRef) {
        let mut sys = CronusSystem::boot(BootConfig {
            partitions: vec![
                PartitionSpec::new(1, b"cpu-mos", "v1", DeviceSpec::Cpu),
                PartitionSpec::new(3, b"npu-mos", "v1", DeviceSpec::Npu { memory: 1 << 26 }),
            ],
            ..Default::default()
        });
        let app = sys.create_app();
        let cpu = sys
            .create_enclave(
                Actor::App(app),
                Manifest::new(DeviceKind::Cpu).with_memory(1 << 20),
                &BTreeMap::new(),
            )
            .expect("cpu enclave");
        (sys, cpu)
    }

    /// Runs `f` with a fresh CRONUS GPU backend (standard kernels loaded).
    pub fn cronus_backend_fixture<F: FnOnce(&mut CronusGpuBackend<'_>)>(f: F) {
        let (mut sys, cpu) = cronus_gpu_system();
        let cuda = CudaContext::new(&mut sys, cpu, CudaOptions::default()).expect("cuda ctx");
        let mut backend = CronusGpuBackend::new(&mut sys, cuda);
        crate::kernels::register_standard_kernels(&mut backend).expect("kernels");
        f(&mut backend);
    }

    /// Creates a VTA context on a fresh NPU system.
    pub fn cronus_vta_fixture() -> (CronusSystem, VtaContext) {
        let (mut sys, cpu) = cronus_npu_system();
        let vta = VtaContext::new(&mut sys, cpu, VtaOptions::default()).expect("vta ctx");
        (sys, vta)
    }
}
