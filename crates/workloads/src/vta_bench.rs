//! vta-bench: the NPU microbenchmark of Fig. 10a.
//!
//! The original vta-bench measures GEMM and ALU throughput over the VTA
//! ISA. Each workload here constructs a real [`VtaProgram`] (tiled int8
//! GEMMs, ALU sweeps), runs it on the NPU mEnclave and reports throughput
//! in simulated ops/second.

use cronus_core::CronusSystem;
use cronus_devices::npu::{AluOp, NpuBuffer, VtaInsn, VtaProgram};
use cronus_runtime::{VtaContext, VtaError};
use cronus_sim::SimNs;

/// One vta-bench result row.
#[derive(Clone, Debug, PartialEq)]
pub struct VtaBenchRun {
    /// Workload name.
    pub name: &'static str,
    /// Simulated execution time.
    pub sim_time: SimNs,
    /// Operations performed (MACs for GEMM, element ops for ALU).
    pub ops: u64,
}

impl VtaBenchRun {
    /// Throughput in giga-ops per simulated second.
    pub fn gops(&self) -> f64 {
        self.ops as f64 / self.sim_time.as_nanos().max(1) as f64
    }
}

/// Builds tiled GEMM programs: `out = inp * wgt^T` in `tile`-sized blocks,
/// one program per output block so each submission fits one sRPC slot
/// (TVM similarly chunks VTA instruction streams).
pub fn tiled_gemm_programs(
    inp: NpuBuffer,
    wgt: NpuBuffer,
    out: NpuBuffer,
    dim: usize,
    tile: usize,
) -> Vec<VtaProgram> {
    let mut progs = Vec::new();
    let tiles = dim / tile;
    for bi in 0..tiles {
        for bj in 0..tiles {
            let mut prog = VtaProgram::new();
            prog.push(VtaInsn::ResetAcc {
                rows: tile,
                cols: tile,
            });
            for bk in 0..tiles {
                prog.push(VtaInsn::LoadInp {
                    src: inp,
                    offset: ((bi * tile) * dim + bk * tile) as u64,
                    rows: tile,
                    cols: tile,
                    stride: dim,
                })
                .push(VtaInsn::LoadWgt {
                    src: wgt,
                    offset: ((bj * tile) * dim + bk * tile) as u64,
                    rows: tile,
                    cols: tile,
                    stride: dim,
                })
                .push(VtaInsn::Gemm);
            }
            prog.push(VtaInsn::Alu(AluOp::ShrImm(4)))
                .push(VtaInsn::StoreAcc {
                    dst: out,
                    offset: ((bi * tile) * dim + bj * tile) as u64,
                    stride: dim,
                });
            progs.push(prog);
        }
    }
    progs
}

/// GEMM throughput workload (`dim x dim` int8 matrices, `tile`d).
///
/// # Errors
///
/// RPC/device failures.
pub fn run_gemm(
    sys: &mut CronusSystem,
    vta: &mut VtaContext,
    dim: usize,
    tile: usize,
) -> Result<VtaBenchRun, VtaError> {
    assert!(dim.is_multiple_of(tile), "dim must be a multiple of tile");
    let bytes = (dim * dim) as u64;
    let inp = vta.alloc(sys, bytes)?;
    let wgt = vta.alloc(sys, bytes)?;
    let out = vta.alloc(sys, bytes)?;
    let data: Vec<u8> = (0..bytes).map(|i| (i % 5) as u8).collect();
    vta.memcpy_h2d(sys, inp, &data)?;
    vta.memcpy_h2d(sys, wgt, &data)?;

    let start = sys.enclave_time(vta.cpu);
    for prog in tiled_gemm_programs(
        NpuBuffer::from_raw(inp.0),
        NpuBuffer::from_raw(wgt.0),
        NpuBuffer::from_raw(out.0),
        dim,
        tile,
    ) {
        vta.run(sys, &prog)?;
    }
    vta.synchronize(sys)?;
    let sim_time = sys.enclave_time(vta.cpu) - start;
    Ok(VtaBenchRun {
        name: "gemm",
        sim_time,
        ops: (dim * dim * dim) as u64,
    })
}

/// ALU throughput workload: `reps` passes of relu + shift over a
/// `dim x dim` accumulator.
///
/// # Errors
///
/// RPC/device failures.
pub fn run_alu(
    sys: &mut CronusSystem,
    vta: &mut VtaContext,
    dim: usize,
    reps: usize,
) -> Result<VtaBenchRun, VtaError> {
    let bytes = (dim * dim) as u64;
    let buf = vta.alloc(sys, bytes)?;
    let data: Vec<u8> = (0..bytes).map(|i| (i % 97) as u8).collect();
    vta.memcpy_h2d(sys, buf, &data)?;

    let start = sys.enclave_time(vta.cpu);
    let mut prog = VtaProgram::new();
    prog.push(VtaInsn::LoadInp {
        src: NpuBuffer::from_raw(buf.0),
        offset: 0,
        rows: dim,
        cols: dim,
        stride: dim,
    })
    .push(VtaInsn::LoadWgt {
        src: NpuBuffer::from_raw(buf.0),
        offset: 0,
        rows: dim,
        cols: dim,
        stride: dim,
    })
    .push(VtaInsn::ResetAcc {
        rows: dim,
        cols: dim,
    });
    for _ in 0..reps {
        prog.push(VtaInsn::Alu(AluOp::MaxImm(0)))
            .push(VtaInsn::Alu(AluOp::AddImm(1)))
            .push(VtaInsn::Alu(AluOp::ShrImm(1)));
    }
    vta.run(sys, &prog)?;
    vta.synchronize(sys)?;
    let sim_time = sys.enclave_time(vta.cpu) - start;
    Ok(VtaBenchRun {
        name: "alu",
        sim_time,
        ops: (dim * dim * reps * 3) as u64,
    })
}

/// The full vta-bench suite at a given scale.
///
/// # Errors
///
/// RPC/device failures.
pub fn suite(
    sys: &mut CronusSystem,
    vta: &mut VtaContext,
    scale: usize,
) -> Result<Vec<VtaBenchRun>, VtaError> {
    let dim = 16 * scale.max(1);
    Ok(vec![
        run_gemm(sys, vta, dim, 16)?,
        run_alu(sys, vta, dim, 8)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::cronus_vta_fixture;

    #[test]
    fn gemm_and_alu_run() {
        let (mut sys, mut vta) = cronus_vta_fixture();
        let runs = suite(&mut sys, &mut vta, 1).unwrap();
        assert_eq!(runs.len(), 2);
        for r in &runs {
            assert!(r.sim_time > SimNs::ZERO, "{} took time", r.name);
            assert!(r.ops > 0);
            assert!(r.gops() > 0.0);
        }
    }

    #[test]
    fn tiled_gemm_matches_whole_gemm() {
        // Functional check: a 32x32 tiled GEMM equals a single 32x32 GEMM.
        let (mut sys, mut vta) = cronus_vta_fixture();
        let dim = 32;
        let bytes = (dim * dim) as u64;
        let a = vta.alloc(&mut sys, bytes).unwrap();
        let b = vta.alloc(&mut sys, bytes).unwrap();
        let tiled_out = vta.alloc(&mut sys, bytes).unwrap();
        let whole_out = vta.alloc(&mut sys, bytes).unwrap();
        let data: Vec<u8> = (0..bytes).map(|i| (i % 3) as u8).collect();
        vta.memcpy_h2d(&mut sys, a, &data).unwrap();
        vta.memcpy_h2d(&mut sys, b, &data).unwrap();

        for prog in tiled_gemm_programs(
            NpuBuffer::from_raw(a.0),
            NpuBuffer::from_raw(b.0),
            NpuBuffer::from_raw(tiled_out.0),
            dim,
            16,
        ) {
            vta.run(&mut sys, &prog).unwrap();
        }

        let mut whole = VtaProgram::new();
        whole
            .push(VtaInsn::LoadInp {
                src: NpuBuffer::from_raw(a.0),
                offset: 0,
                rows: dim,
                cols: dim,
                stride: dim,
            })
            .push(VtaInsn::LoadWgt {
                src: NpuBuffer::from_raw(b.0),
                offset: 0,
                rows: dim,
                cols: dim,
                stride: dim,
            })
            .push(VtaInsn::ResetAcc {
                rows: dim,
                cols: dim,
            })
            .push(VtaInsn::Gemm)
            .push(VtaInsn::Alu(AluOp::ShrImm(4)))
            .push(VtaInsn::StoreAcc {
                dst: NpuBuffer::from_raw(whole_out.0),
                offset: 0,
                stride: dim,
            });
        vta.run(&mut sys, &whole).unwrap();
        vta.synchronize(&mut sys).unwrap();

        let t = vta.memcpy_d2h(&mut sys, tiled_out, bytes).unwrap();
        let w = vta.memcpy_d2h(&mut sys, whole_out, bytes).unwrap();
        assert_eq!(t, w, "tiling must not change results");
    }
}
