//! The shared GPU kernel library.
//!
//! Real implementations (they compute on device memory) for the kernels the
//! Rodinia suite and the DNN trainer launch. Each kernel's cost descriptor
//! is built by the caller from its problem size; the implementations here
//! define *what* the kernel does so the workloads can assert correctness
//! against CPU references.

use std::sync::Arc;

use cronus_devices::gpu::{GpuError, GpuKernelDesc, KernelArg, KernelFn};

use crate::backend::{BackendError, GpuBackend};

fn want_buffer(args: &[KernelArg], i: usize) -> Result<cronus_devices::gpu::GpuBuffer, GpuError> {
    match args.get(i) {
        Some(KernelArg::Buffer(b)) => Ok(*b),
        other => Err(GpuError::BadArg(format!(
            "arg {i}: expected buffer, got {other:?}"
        ))),
    }
}

fn want_int(args: &[KernelArg], i: usize) -> Result<i64, GpuError> {
    match args.get(i) {
        Some(KernelArg::Int(v)) => Ok(*v),
        other => Err(GpuError::BadArg(format!(
            "arg {i}: expected int, got {other:?}"
        ))),
    }
}

fn want_float(args: &[KernelArg], i: usize) -> Result<f32, GpuError> {
    match args.get(i) {
        Some(KernelArg::Float(v)) => Ok(*v),
        other => Err(GpuError::BadArg(format!(
            "arg {i}: expected float, got {other:?}"
        ))),
    }
}

/// `saxpy(a, x, y)`: `y += a * x`.
pub fn saxpy() -> KernelFn {
    Arc::new(|mem, args| {
        let a = want_float(args, 0)?;
        let x = want_buffer(args, 1)?;
        let y = want_buffer(args, 2)?;
        let xs = mem.read_f32s(x)?;
        let mut ys = mem.read_f32s(y)?;
        for (yi, xi) in ys.iter_mut().zip(&xs) {
            *yi += a * xi;
        }
        mem.write_f32s(y, &ys)
    })
}

/// `matmul(a, b, c, m, n, k)`: `c[m x n] = a[m x k] * b[k x n]`.
pub fn matmul() -> KernelFn {
    Arc::new(|mem, args| {
        let a = want_buffer(args, 0)?;
        let b = want_buffer(args, 1)?;
        let c = want_buffer(args, 2)?;
        let m = want_int(args, 3)? as usize;
        let n = want_int(args, 4)? as usize;
        let k = want_int(args, 5)? as usize;
        let av = mem.read_f32s(a)?;
        let bv = mem.read_f32s(b)?;
        if av.len() < m * k || bv.len() < k * n {
            return Err(GpuError::BadArg("matmul operand too small".into()));
        }
        let mut cv = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let aik = av[i * k + kk];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    cv[i * n + j] += aik * bv[kk * n + j];
                }
            }
        }
        mem.write_f32s(c, &cv)
    })
}

/// `matmul_acc(a, b, c, m, n, k)`: `c += a * b` (for gradient accumulation).
pub fn matmul_acc() -> KernelFn {
    Arc::new(|mem, args| {
        let a = want_buffer(args, 0)?;
        let b = want_buffer(args, 1)?;
        let c = want_buffer(args, 2)?;
        let m = want_int(args, 3)? as usize;
        let n = want_int(args, 4)? as usize;
        let k = want_int(args, 5)? as usize;
        let av = mem.read_f32s(a)?;
        let bv = mem.read_f32s(b)?;
        let mut cv = mem.read_f32s(c)?;
        for i in 0..m {
            for kk in 0..k {
                let aik = av[i * k + kk];
                for j in 0..n {
                    cv[i * n + j] += aik * bv[kk * n + j];
                }
            }
        }
        mem.write_f32s(c, &cv)
    })
}

/// `relu(x)`: elementwise `max(0, x)` in place.
pub fn relu() -> KernelFn {
    Arc::new(|mem, args| {
        let x = want_buffer(args, 0)?;
        let mut xs = mem.read_f32s(x)?;
        for v in &mut xs {
            *v = v.max(0.0);
        }
        mem.write_f32s(x, &xs)
    })
}

/// `scale(x, a)`: `x *= a` in place.
pub fn scale() -> KernelFn {
    Arc::new(|mem, args| {
        let x = want_buffer(args, 0)?;
        let a = want_float(args, 1)?;
        let mut xs = mem.read_f32s(x)?;
        for v in &mut xs {
            *v *= a;
        }
        mem.write_f32s(x, &xs)
    })
}

/// `axpy_update(w, g, lr)`: `w -= lr * g` (SGD step).
pub fn sgd_update() -> KernelFn {
    Arc::new(|mem, args| {
        let w = want_buffer(args, 0)?;
        let g = want_buffer(args, 1)?;
        let lr = want_float(args, 2)?;
        let mut ws = mem.read_f32s(w)?;
        let gs = mem.read_f32s(g)?;
        for (wi, gi) in ws.iter_mut().zip(&gs) {
            *wi -= lr * gi;
        }
        mem.write_f32s(w, &ws)
    })
}

/// `reduce_sum(x, out)`: `out[0] = sum(x)`.
pub fn reduce_sum() -> KernelFn {
    Arc::new(|mem, args| {
        let x = want_buffer(args, 0)?;
        let out = want_buffer(args, 1)?;
        let xs = mem.read_f32s(x)?;
        let sum: f32 = xs.iter().sum();
        mem.write_f32s(out, &[sum])
    })
}

/// `stencil5(src, dst, rows, cols, alpha)`: 5-point stencil
/// `dst = src + alpha * laplacian(src)` (hotspot/srad building block).
pub fn stencil5() -> KernelFn {
    Arc::new(|mem, args| {
        let src = want_buffer(args, 0)?;
        let dst = want_buffer(args, 1)?;
        let rows = want_int(args, 2)? as usize;
        let cols = want_int(args, 3)? as usize;
        let alpha = want_float(args, 4)?;
        let s = mem.read_f32s(src)?;
        if s.len() < rows * cols {
            return Err(GpuError::BadArg("stencil grid too small".into()));
        }
        let mut d = vec![0.0f32; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                let idx = r * cols + c;
                let center = s[idx];
                let up = if r > 0 { s[idx - cols] } else { center };
                let down = if r + 1 < rows { s[idx + cols] } else { center };
                let left = if c > 0 { s[idx - 1] } else { center };
                let right = if c + 1 < cols { s[idx + 1] } else { center };
                d[idx] = center + alpha * (up + down + left + right - 4.0 * center);
            }
        }
        mem.write_f32s(dst, &d)
    })
}

/// `vec_sub_sq(a, b, out)`: `out[i] = (a[i] - b[i])^2` (kmeans / nn distances).
pub fn vec_sub_sq() -> KernelFn {
    Arc::new(|mem, args| {
        let a = want_buffer(args, 0)?;
        let b = want_buffer(args, 1)?;
        let out = want_buffer(args, 2)?;
        let av = mem.read_f32s(a)?;
        let bv = mem.read_f32s(b)?;
        let o: Vec<f32> = av.iter().zip(&bv).map(|(x, y)| (x - y) * (x - y)).collect();
        mem.write_f32s(out, &o)
    })
}

/// `noop()` — cost-only kernel used by synthetic large-model runs.
pub fn noop() -> KernelFn {
    Arc::new(|_, _| Ok(()))
}

/// Registers every kernel in this library on a backend.
///
/// # Errors
///
/// Propagates backend registration failures.
pub fn register_standard_kernels(backend: &mut dyn GpuBackend) -> Result<(), BackendError> {
    backend.register_kernel("saxpy", saxpy())?;
    backend.register_kernel("matmul", matmul())?;
    backend.register_kernel("matmul_acc", matmul_acc())?;
    backend.register_kernel("relu", relu())?;
    backend.register_kernel("scale", scale())?;
    backend.register_kernel("sgd_update", sgd_update())?;
    backend.register_kernel("reduce_sum", reduce_sum())?;
    backend.register_kernel("stencil5", stencil5())?;
    backend.register_kernel("vec_sub_sq", vec_sub_sq())?;
    backend.register_kernel("noop", noop())?;
    Ok(())
}

/// Cost descriptor for an `m x n x k` GEMM.
pub fn gemm_desc(m: usize, n: usize, k: usize) -> GpuKernelDesc {
    GpuKernelDesc {
        flops: 2.0 * m as f64 * n as f64 * k as f64,
        mem_bytes: 4.0 * (m * k + k * n + m * n) as f64,
        sm_demand: ((m * n / 1024) as u32).clamp(1, 46),
    }
}

/// Cost descriptor for an elementwise op over `n` f32 elements.
pub fn elementwise_desc(n: usize) -> GpuKernelDesc {
    GpuKernelDesc {
        flops: n as f64,
        mem_bytes: 8.0 * n as f64,
        sm_demand: ((n / 4096) as u32).clamp(1, 46),
    }
}

/// Cost descriptor for a stencil over `rows x cols`.
pub fn stencil_desc(rows: usize, cols: usize) -> GpuKernelDesc {
    let n = rows * cols;
    GpuKernelDesc {
        flops: 6.0 * n as f64,
        mem_bytes: 8.0 * n as f64,
        sm_demand: ((n / 2048) as u32).clamp(1, 46),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cronus_devices::gpu::GpuDevice;
    use cronus_devices::DeviceKind;
    use cronus_sim::tzpc::DeviceId;
    use cronus_sim::{CostModel, StreamId};

    /// Runs a kernel directly on a raw device (no TEE plumbing) to verify
    /// its math.
    struct Raw {
        dev: GpuDevice,
        ctx: cronus_devices::gpu::GpuContextId,
        cm: CostModel,
    }

    impl Raw {
        fn new() -> Self {
            let mut dev = GpuDevice::new(DeviceId::new(1), StreamId::new(1), 1 << 24, 46);
            let ctx = dev.create_context(1 << 20).unwrap();
            Raw {
                dev,
                ctx,
                cm: CostModel::default(),
            }
        }

        fn buf(&mut self, data: &[f32]) -> cronus_devices::gpu::GpuBuffer {
            let b = self.dev.alloc(self.ctx, (data.len() * 4) as u64).unwrap();
            let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
            self.dev.write_buffer(self.ctx, b, 0, &bytes).unwrap();
            b
        }

        fn read(&mut self, b: cronus_devices::gpu::GpuBuffer, n: usize) -> Vec<f32> {
            let mut bytes = vec![0u8; n * 4];
            self.dev.read_buffer(self.ctx, b, 0, &mut bytes).unwrap();
            bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect()
        }

        fn run(&mut self, name: &str, f: KernelFn, args: &[KernelArg]) {
            self.dev.register_kernel(self.ctx, name, f).unwrap();
            self.dev
                .launch(&self.cm, self.ctx, name, args, elementwise_desc(16))
                .unwrap();
        }
    }

    #[test]
    fn matmul_matches_reference() {
        let mut raw = Raw::new();
        // a = [[1,2],[3,4]], b = [[5,6],[7,8]] => c = [[19,22],[43,50]]
        let a = raw.buf(&[1.0, 2.0, 3.0, 4.0]);
        let b = raw.buf(&[5.0, 6.0, 7.0, 8.0]);
        let c = raw.buf(&[0.0; 4]);
        raw.run(
            "matmul",
            matmul(),
            &[
                KernelArg::Buffer(a),
                KernelArg::Buffer(b),
                KernelArg::Buffer(c),
                KernelArg::Int(2),
                KernelArg::Int(2),
                KernelArg::Int(2),
            ],
        );
        assert_eq!(raw.read(c, 4), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn relu_and_scale() {
        let mut raw = Raw::new();
        let x = raw.buf(&[-1.0, 2.0, -3.0, 4.0]);
        raw.run("relu", relu(), &[KernelArg::Buffer(x)]);
        assert_eq!(raw.read(x, 4), vec![0.0, 2.0, 0.0, 4.0]);
        raw.run(
            "scale",
            scale(),
            &[KernelArg::Buffer(x), KernelArg::Float(0.5)],
        );
        assert_eq!(raw.read(x, 4), vec![0.0, 1.0, 0.0, 2.0]);
    }

    #[test]
    fn sgd_update_math() {
        let mut raw = Raw::new();
        let w = raw.buf(&[1.0, 1.0]);
        let g = raw.buf(&[0.5, -0.5]);
        raw.run(
            "sgd_update",
            sgd_update(),
            &[
                KernelArg::Buffer(w),
                KernelArg::Buffer(g),
                KernelArg::Float(0.1),
            ],
        );
        let out = raw.read(w, 2);
        assert!((out[0] - 0.95).abs() < 1e-6);
        assert!((out[1] - 1.05).abs() < 1e-6);
    }

    #[test]
    fn stencil_interior_point() {
        let mut raw = Raw::new();
        // 3x3 grid with hot center.
        let src = raw.buf(&[0.0, 0.0, 0.0, 0.0, 10.0, 0.0, 0.0, 0.0, 0.0]);
        let dst = raw.buf(&[0.0; 9]);
        raw.run(
            "stencil5",
            stencil5(),
            &[
                KernelArg::Buffer(src),
                KernelArg::Buffer(dst),
                KernelArg::Int(3),
                KernelArg::Int(3),
                KernelArg::Float(0.1),
            ],
        );
        let out = raw.read(dst, 9);
        // Center loses heat: 10 + 0.1 * (0*4 - 40) = 6; neighbors gain 1.
        assert!((out[4] - 6.0).abs() < 1e-5);
        assert!((out[1] - 1.0).abs() < 1e-5);
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn reduce_and_distance() {
        let mut raw = Raw::new();
        let x = raw.buf(&[1.0, 2.0, 3.0]);
        let out = raw.buf(&[0.0]);
        raw.run(
            "reduce_sum",
            reduce_sum(),
            &[KernelArg::Buffer(x), KernelArg::Buffer(out)],
        );
        assert_eq!(raw.read(out, 1), vec![6.0]);

        let a = raw.buf(&[1.0, 5.0]);
        let b = raw.buf(&[4.0, 1.0]);
        let d = raw.buf(&[0.0, 0.0]);
        raw.run(
            "vec_sub_sq",
            vec_sub_sq(),
            &[
                KernelArg::Buffer(a),
                KernelArg::Buffer(b),
                KernelArg::Buffer(d),
            ],
        );
        assert_eq!(raw.read(d, 2), vec![9.0, 16.0]);
    }

    #[test]
    fn descriptors_scale_with_problem_size() {
        assert!(gemm_desc(64, 64, 64).flops < gemm_desc(128, 128, 128).flops);
        assert!(elementwise_desc(10).sm_demand >= 1);
        assert!(stencil_desc(1024, 1024).sm_demand > stencil_desc(8, 8).sm_demand);
        let _ = DeviceKind::Gpu; // silence unused import in some cfgs
    }
}
