//! TVM-style quantized inference on the NPU (Fig. 10b).
//!
//! The paper compiles ResNet-18/50 and YOLOv3 with TVM to a VTA NPU and
//! measures inference latency. Here each model's layers are lowered to
//! their im2col GEMM shapes; latency is computed from the NPU's calibrated
//! cost model (the same formula the simulated device charges per GEMM), and
//! functional correctness is demonstrated end-to-end on a real quantized
//! MLP executed by the device ([`run_quant_mlp`]).

use cronus_core::CronusSystem;
use cronus_devices::npu::{AluOp, NpuBuffer, VtaInsn, VtaProgram};
use cronus_runtime::{VtaContext, VtaError};
use cronus_sim::{CostModel, SimNs};

use crate::dnn::models::Model;

/// A model lowered to GEMM shapes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuantModel {
    /// Source model name.
    pub name: &'static str,
    /// `(m, n, k)` per compute layer.
    pub gemms: Vec<(usize, usize, usize)>,
}

/// Lowers a model to its GEMM sequence (conv/dense layers only; pooling,
/// ReLU and BN fold into the surrounding GEMMs as in TVM's quantized
/// pipelines).
pub fn lower(model: &Model) -> QuantModel {
    QuantModel {
        name: model.name,
        gemms: model.layers.iter().filter_map(|l| l.gemm_shape()).collect(),
    }
}

/// Total MACs of the lowered model.
pub fn total_macs(q: &QuantModel) -> f64 {
    q.gemms.iter().map(|(m, n, k)| (*m * *n * *k) as f64).sum()
}

/// Estimated NPU inference latency: per-GEMM issue + MAC time + scratchpad
/// load/store traffic, using the same constants the simulated device
/// charges.
pub fn estimate_npu_latency(q: &QuantModel, cm: &CostModel) -> SimNs {
    let mut total = SimNs::ZERO;
    for (m, n, k) in &q.gemms {
        let macs = (*m * *n * *k) as f64;
        total += cm.npu_gemm(macs);
        // Weight + activation traffic (int8).
        let bytes = (m * k + n * k + m * n) as u64;
        total += cm.pcie_copy(bytes) + cm.npu_issue * 3;
    }
    total
}

/// Estimated CPU inference latency for the same model (the paper's Fig. 10b
/// CPU bars): quantized ops at the CPU's scalar rate.
pub fn estimate_cpu_latency(q: &QuantModel, cm: &CostModel) -> SimNs {
    cm.cpu_ops(2.0 * total_macs(q))
}

/// An inference latency row for the Fig. 10b table.
#[derive(Clone, Debug, PartialEq)]
pub struct InferenceRow {
    /// Model name.
    pub model: &'static str,
    /// NPU latency.
    pub npu: SimNs,
    /// CPU latency.
    pub cpu: SimNs,
}

/// Builds Fig. 10b rows for a set of models.
pub fn latency_table(models: &[Model], cm: &CostModel) -> Vec<InferenceRow> {
    models
        .iter()
        .map(|m| {
            let q = lower(m);
            InferenceRow {
                model: m.name,
                npu: estimate_npu_latency(&q, cm),
                cpu: estimate_cpu_latency(&q, cm),
            }
        })
        .collect()
}

/// Runs a real quantized 2-layer MLP (`relu(x·W1)·W2`) on the NPU mEnclave
/// and returns the int8 logits. The CPU reference in the tests must match
/// exactly — this is the functional half of the Fig. 10b claim.
///
/// # Errors
///
/// RPC/device failures.
pub fn run_quant_mlp(
    sys: &mut CronusSystem,
    vta: &mut VtaContext,
    x: &[i8; 16],
    w1: &[i8; 16 * 16],
    w2: &[i8; 16 * 16],
) -> Result<Vec<i8>, VtaError> {
    let to_u8 = |s: &[i8]| s.iter().map(|v| *v as u8).collect::<Vec<u8>>();
    let d_x = vta.alloc(sys, 16)?;
    let d_w1 = vta.alloc(sys, 256)?;
    let d_w2 = vta.alloc(sys, 256)?;
    let d_h = vta.alloc(sys, 16)?;
    let d_out = vta.alloc(sys, 16)?;
    vta.memcpy_h2d(sys, d_x, &to_u8(x))?;
    vta.memcpy_h2d(sys, d_w1, &to_u8(w1))?;
    vta.memcpy_h2d(sys, d_w2, &to_u8(w2))?;

    let mut prog = VtaProgram::new();
    // h = relu((x W1^T) >> 4)
    prog.push(VtaInsn::LoadInp {
        src: NpuBuffer::from_raw(d_x.0),
        offset: 0,
        rows: 1,
        cols: 16,
        stride: 16,
    })
    .push(VtaInsn::LoadWgt {
        src: NpuBuffer::from_raw(d_w1.0),
        offset: 0,
        rows: 16,
        cols: 16,
        stride: 16,
    })
    .push(VtaInsn::ResetAcc { rows: 1, cols: 16 })
    .push(VtaInsn::Gemm)
    .push(VtaInsn::Alu(AluOp::ShrImm(4)))
    .push(VtaInsn::Alu(AluOp::MaxImm(0)))
    .push(VtaInsn::StoreAcc {
        dst: NpuBuffer::from_raw(d_h.0),
        offset: 0,
        stride: 16,
    });
    // out = (h W2^T) >> 4
    prog.push(VtaInsn::LoadInp {
        src: NpuBuffer::from_raw(d_h.0),
        offset: 0,
        rows: 1,
        cols: 16,
        stride: 16,
    })
    .push(VtaInsn::LoadWgt {
        src: NpuBuffer::from_raw(d_w2.0),
        offset: 0,
        rows: 16,
        cols: 16,
        stride: 16,
    })
    .push(VtaInsn::ResetAcc { rows: 1, cols: 16 })
    .push(VtaInsn::Gemm)
    .push(VtaInsn::Alu(AluOp::ShrImm(4)))
    .push(VtaInsn::StoreAcc {
        dst: NpuBuffer::from_raw(d_out.0),
        offset: 0,
        stride: 16,
    });
    vta.run(sys, &prog)?;
    vta.synchronize(sys)?;

    let out = vta.memcpy_d2h(sys, d_out, 16)?;
    Ok(out.iter().map(|b| *b as i8).collect())
}

/// CPU reference of [`run_quant_mlp`]'s arithmetic.
pub fn reference_quant_mlp(x: &[i8; 16], w1: &[i8; 16 * 16], w2: &[i8; 16 * 16]) -> Vec<i8> {
    let gemm = |inp: &[i32], wgt: &[i8]| -> Vec<i32> {
        (0..16)
            .map(|j| {
                (0..16)
                    .map(|k| inp[k] * wgt[j * 16 + k] as i32)
                    .sum::<i32>()
            })
            .collect()
    };
    let sat = |v: i32| v.clamp(i8::MIN as i32, i8::MAX as i32) as i8;
    let xi: Vec<i32> = x.iter().map(|v| *v as i32).collect();
    let h: Vec<i32> = gemm(&xi, w1).iter().map(|v| (v >> 4).max(0)).collect();
    // The device saturates h to i8 on store, then reloads it.
    let h8: Vec<i32> = h.iter().map(|v| sat(*v) as i32).collect();
    gemm(&h8, w2).iter().map(|v| sat(v >> 4)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnn::models;
    use crate::testutil::cronus_vta_fixture;

    #[test]
    fn lowering_produces_gemms() {
        let q = lower(&models::resnet18());
        assert!(
            q.gemms.len() > 15,
            "resnet18 has many conv layers: {}",
            q.gemms.len()
        );
        assert!(total_macs(&q) > 1e8);
    }

    #[test]
    fn latency_ordering_matches_fig10b() {
        let cm = CostModel::default();
        let rows = latency_table(
            &[models::resnet18(), models::resnet50(), models::yolov3()],
            &cm,
        );
        assert!(rows[0].npu < rows[1].npu, "resnet18 < resnet50");
        assert!(rows[1].npu < rows[2].npu, "resnet50 < yolov3");
        // The NPU beats scalar CPU execution on every model.
        for row in &rows {
            assert!(
                row.npu < row.cpu,
                "{}: npu {} < cpu {}",
                row.model,
                row.npu,
                row.cpu
            );
        }
    }

    #[test]
    fn quant_mlp_matches_reference() {
        let (mut sys, mut vta) = cronus_vta_fixture();
        let mut x = [0i8; 16];
        let mut w1 = [0i8; 256];
        let mut w2 = [0i8; 256];
        for (i, v) in x.iter_mut().enumerate() {
            *v = (i as i8) - 8;
        }
        for i in 0..256 {
            w1[i] = ((i * 7) % 11) as i8 - 5;
            w2[i] = ((i * 5) % 13) as i8 - 6;
        }
        let device = run_quant_mlp(&mut sys, &mut vta, &x, &w1, &w2).unwrap();
        let reference = reference_quant_mlp(&x, &w1, &w2);
        assert_eq!(device, reference);
    }
}
