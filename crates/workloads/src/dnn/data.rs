//! Synthetic datasets standing in for MNIST, CIFAR-10 and ImageNet.
//!
//! The paper trains on the real datasets; reproducing system behaviour only
//! needs batches with the right *shape and volume*, so each dataset here
//! generates deterministic pseudo-random samples with the correct
//! dimensions and an honest byte count per batch (this is what sizes the
//! host→device transfers in Fig. 8).

/// xorshift64* stream used for synthetic samples: deterministic per seed and
/// self-contained (no external PRNG crates in the offline build).
struct SampleRng(u64);

impl SampleRng {
    fn new(seed: u64) -> Self {
        // Splitmix-style scramble so adjacent seeds yield unrelated streams
        // and the all-zero fixed point is unreachable.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SampleRng((z ^ (z >> 31)) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform f32 in `[-1, 1)`.
    fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 23) as f32 * 2.0 - 1.0
    }

    fn below(&mut self, bound: u32) -> u32 {
        (self.next_u64() % bound as u64) as u32
    }
}

/// A dataset description plus a deterministic sample generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dataset {
    /// Dataset name.
    pub name: &'static str,
    /// Channels.
    pub channels: usize,
    /// Spatial size (square).
    pub hw: usize,
    /// Number of classes.
    pub classes: usize,
    /// Nominal training-set size (drives epoch accounting).
    pub train_size: usize,
}

impl Dataset {
    /// MNIST: 60k 28x28 grayscale digits.
    pub fn mnist() -> Self {
        Dataset {
            name: "mnist",
            channels: 1,
            hw: 28,
            classes: 10,
            train_size: 60_000,
        }
    }

    /// CIFAR-10: 50k 32x32 RGB images.
    pub fn cifar10() -> Self {
        Dataset {
            name: "cifar-10",
            channels: 3,
            hw: 32,
            classes: 10,
            train_size: 50_000,
        }
    }

    /// ImageNet (ILSVRC-2012): 1.28M 224x224 RGB images.
    pub fn imagenet() -> Self {
        Dataset {
            name: "imagenet",
            channels: 3,
            hw: 224,
            classes: 1000,
            train_size: 1_281_167,
        }
    }

    /// Elements per sample.
    pub fn sample_elems(&self) -> usize {
        self.channels * self.hw * self.hw
    }

    /// Bytes per f32 batch.
    pub fn batch_bytes(&self, batch: usize) -> u64 {
        (batch * self.sample_elems() * 4) as u64
    }

    /// Generates a deterministic batch (inputs flattened) plus labels.
    pub fn synthetic_batch(&self, seed: u64, batch: usize) -> (Vec<f32>, Vec<u32>) {
        let mut rng = SampleRng::new(seed ^ 0x0DA7_A5E7);
        let inputs = (0..batch * self.sample_elems())
            .map(|_| rng.unit_f32())
            .collect();
        let labels = (0..batch).map(|_| rng.below(self.classes as u32)).collect();
        (inputs, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_the_real_datasets() {
        assert_eq!(Dataset::mnist().sample_elems(), 784);
        assert_eq!(Dataset::cifar10().sample_elems(), 3072);
        assert_eq!(Dataset::imagenet().sample_elems(), 150_528);
        assert_eq!(Dataset::cifar10().batch_bytes(64), 64 * 3072 * 4);
    }

    #[test]
    fn batches_are_deterministic_per_seed() {
        let d = Dataset::mnist();
        let (a, la) = d.synthetic_batch(7, 4);
        let (b, lb) = d.synthetic_batch(7, 4);
        let (c, _) = d.synthetic_batch(8, 4);
        assert_eq!(a, b);
        assert_eq!(la, lb);
        assert_ne!(a, c);
        assert_eq!(a.len(), 4 * 784);
        assert!(la.iter().all(|l| *l < 10));
    }
}
