//! Synthetic datasets standing in for MNIST, CIFAR-10 and ImageNet.
//!
//! The paper trains on the real datasets; reproducing system behaviour only
//! needs batches with the right *shape and volume*, so each dataset here
//! generates deterministic pseudo-random samples with the correct
//! dimensions and an honest byte count per batch (this is what sizes the
//! host→device transfers in Fig. 8).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dataset description plus a deterministic sample generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dataset {
    /// Dataset name.
    pub name: &'static str,
    /// Channels.
    pub channels: usize,
    /// Spatial size (square).
    pub hw: usize,
    /// Number of classes.
    pub classes: usize,
    /// Nominal training-set size (drives epoch accounting).
    pub train_size: usize,
}

impl Dataset {
    /// MNIST: 60k 28x28 grayscale digits.
    pub fn mnist() -> Self {
        Dataset { name: "mnist", channels: 1, hw: 28, classes: 10, train_size: 60_000 }
    }

    /// CIFAR-10: 50k 32x32 RGB images.
    pub fn cifar10() -> Self {
        Dataset { name: "cifar-10", channels: 3, hw: 32, classes: 10, train_size: 50_000 }
    }

    /// ImageNet (ILSVRC-2012): 1.28M 224x224 RGB images.
    pub fn imagenet() -> Self {
        Dataset { name: "imagenet", channels: 3, hw: 224, classes: 1000, train_size: 1_281_167 }
    }

    /// Elements per sample.
    pub fn sample_elems(&self) -> usize {
        self.channels * self.hw * self.hw
    }

    /// Bytes per f32 batch.
    pub fn batch_bytes(&self, batch: usize) -> u64 {
        (batch * self.sample_elems() * 4) as u64
    }

    /// Generates a deterministic batch (inputs flattened) plus labels.
    pub fn synthetic_batch(&self, seed: u64, batch: usize) -> (Vec<f32>, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0DA7_A5E7);
        let inputs = (0..batch * self.sample_elems())
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        let labels = (0..batch)
            .map(|_| rng.gen_range(0..self.classes as u32))
            .collect();
        (inputs, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_the_real_datasets() {
        assert_eq!(Dataset::mnist().sample_elems(), 784);
        assert_eq!(Dataset::cifar10().sample_elems(), 3072);
        assert_eq!(Dataset::imagenet().sample_elems(), 150_528);
        assert_eq!(Dataset::cifar10().batch_bytes(64), 64 * 3072 * 4);
    }

    #[test]
    fn batches_are_deterministic_per_seed() {
        let d = Dataset::mnist();
        let (a, la) = d.synthetic_batch(7, 4);
        let (b, lb) = d.synthetic_batch(7, 4);
        let (c, _) = d.synthetic_batch(8, 4);
        assert_eq!(a, b);
        assert_eq!(la, lb);
        assert_ne!(a, c);
        assert_eq!(a.len(), 4 * 784);
        assert!(la.iter().all(|l| *l < 10));
    }
}
