//! Model constructors for the paper's networks.
//!
//! Architectures are faithful at the level that matters for systems
//! evaluation: layer counts, channel progressions and FLOP totals track the
//! published networks (LeNet-5 ≈ 0.8 MFLOPs/sample fwd on 28x28; VGG-16 on
//! CIFAR ≈ 0.6 GFLOPs; ResNet-50 on CIFAR ≈ 0.3 GFLOPs at 32x32;
//! DenseNet-121 on ImageNet ≈ 5.7 GFLOPs; YOLOv3 at 416² tens of GFLOPs).

use super::layers::Layer;

/// A network: an ordered list of layers.
#[derive(Clone, Debug, PartialEq)]
pub struct Model {
    /// Model name as reported in figures.
    pub name: &'static str,
    /// Input elements per sample (c * h * w).
    pub input_elems: usize,
    /// Layers in forward order.
    pub layers: Vec<Layer>,
}

impl Model {
    /// Forward FLOPs for one sample.
    pub fn forward_flops(&self) -> f64 {
        self.layers.iter().map(Layer::forward_flops).sum()
    }

    /// Training FLOPs for one sample (forward + ~2x backward).
    pub fn training_flops(&self) -> f64 {
        3.0 * self.forward_flops()
    }

    /// Total trainable parameters.
    pub fn params(&self) -> u64 {
        self.layers.iter().map(Layer::params).sum()
    }

    /// Layers that carry parameters (need gradient + update launches).
    pub fn param_layers(&self) -> usize {
        self.layers.iter().filter(|l| l.params() > 0).count()
    }
}

fn conv_bn_relu(
    layers: &mut Vec<Layer>,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    in_hw: usize,
) -> usize {
    let conv = Layer::Conv2d {
        in_ch,
        out_ch,
        kernel,
        stride,
        in_hw,
    };
    let out_hw = conv.out_hw().expect("conv output");
    let units = out_ch * out_hw * out_hw;
    layers.push(conv);
    layers.push(Layer::BatchNorm { units });
    layers.push(Layer::Relu { units });
    out_hw
}

/// LeNet-5 on 28x28x1 (MNIST). The paper's "LeNet-2" smallest model.
pub fn lenet5() -> Model {
    let mut layers = Vec::new();
    // conv1: 1 -> 6, 5x5 @ 28
    let conv1 = Layer::Conv2d {
        in_ch: 1,
        out_ch: 6,
        kernel: 5,
        stride: 1,
        in_hw: 28,
    };
    let hw1 = conv1.out_hw().expect("conv1");
    layers.push(conv1);
    layers.push(Layer::Relu {
        units: 6 * hw1 * hw1,
    });
    layers.push(Layer::Pool {
        channels: 6,
        in_hw: hw1,
        window: 2,
    });
    let hw1p = hw1 / 2;
    // conv2: 6 -> 16, 5x5
    let conv2 = Layer::Conv2d {
        in_ch: 6,
        out_ch: 16,
        kernel: 5,
        stride: 1,
        in_hw: hw1p,
    };
    let hw2 = conv2.out_hw().expect("conv2");
    layers.push(conv2);
    layers.push(Layer::Relu {
        units: 16 * hw2 * hw2,
    });
    layers.push(Layer::Pool {
        channels: 16,
        in_hw: hw2,
        window: 2,
    });
    let hw2p = hw2 / 2;
    layers.push(Layer::Dense {
        inputs: 16 * hw2p * hw2p,
        outputs: 120,
    });
    layers.push(Layer::Relu { units: 120 });
    layers.push(Layer::Dense {
        inputs: 120,
        outputs: 84,
    });
    layers.push(Layer::Relu { units: 84 });
    layers.push(Layer::Dense {
        inputs: 84,
        outputs: 10,
    });
    Model {
        name: "lenet",
        input_elems: 28 * 28,
        layers,
    }
}

/// VGG-16 adapted to 32x32x3 (CIFAR-10), the standard CIFAR variant.
pub fn vgg16_cifar() -> Model {
    let mut layers = Vec::new();
    let mut hw = 32;
    let mut in_ch = 3;
    for (blocks, out_ch) in [(2usize, 64usize), (2, 128), (3, 256), (3, 512), (3, 512)] {
        for _ in 0..blocks {
            hw = conv_bn_relu(&mut layers, in_ch, out_ch, 3, 1, hw);
            in_ch = out_ch;
        }
        layers.push(Layer::Pool {
            channels: in_ch,
            in_hw: hw,
            window: 2,
        });
        hw /= 2;
    }
    layers.push(Layer::Dense {
        inputs: in_ch * hw * hw,
        outputs: 512,
    });
    layers.push(Layer::Relu { units: 512 });
    layers.push(Layer::Dense {
        inputs: 512,
        outputs: 10,
    });
    Model {
        name: "vgg16",
        input_elems: 3 * 32 * 32,
        layers,
    }
}

fn residual_stage(
    layers: &mut Vec<Layer>,
    blocks: usize,
    in_ch: usize,
    mid_ch: usize,
    out_ch: usize,
    mut hw: usize,
    first_stride: usize,
) -> (usize, usize) {
    let mut cur_in = in_ch;
    for b in 0..blocks {
        let stride = if b == 0 { first_stride } else { 1 };
        // Bottleneck: 1x1 down, 3x3, 1x1 up.
        hw = conv_bn_relu(layers, cur_in, mid_ch, 1, stride, hw);
        hw = conv_bn_relu(layers, mid_ch, mid_ch, 3, 1, hw);
        hw = conv_bn_relu(layers, mid_ch, out_ch, 1, 1, hw);
        cur_in = out_ch;
    }
    (cur_in, hw)
}

/// ResNet-50 adapted to 32x32x3 (CIFAR-10) as in the paper's Fig. 8.
pub fn resnet50_cifar() -> Model {
    let mut layers = Vec::new();
    let mut hw = conv_bn_relu(&mut layers, 3, 64, 3, 1, 32);
    let (mut ch, _) = (64, hw);
    let stages = [
        (3usize, 64usize, 256usize, 1usize),
        (4, 128, 512, 2),
        (6, 256, 1024, 2),
        (3, 512, 2048, 2),
    ];
    for (blocks, mid, out, stride) in stages {
        let (c, h) = residual_stage(&mut layers, blocks, ch, mid, out, hw, stride);
        ch = c;
        hw = h;
    }
    layers.push(Layer::Pool {
        channels: ch,
        in_hw: hw,
        window: hw.max(1),
    });
    layers.push(Layer::Dense {
        inputs: ch,
        outputs: 10,
    });
    Model {
        name: "resnet50",
        input_elems: 3 * 32 * 32,
        layers,
    }
}

/// ResNet-18 at ImageNet resolution (224x224x3), for NPU inference.
pub fn resnet18() -> Model {
    let mut layers = Vec::new();
    let mut hw = conv_bn_relu(&mut layers, 3, 64, 7, 2, 224);
    layers.push(Layer::Pool {
        channels: 64,
        in_hw: hw,
        window: 2,
    });
    hw /= 2;
    let mut ch = 64;
    for (blocks, out_ch, stride) in [
        (2usize, 64usize, 1usize),
        (2, 128, 2),
        (2, 256, 2),
        (2, 512, 2),
    ] {
        for b in 0..blocks {
            let s = if b == 0 { stride } else { 1 };
            hw = conv_bn_relu(&mut layers, ch, out_ch, 3, s, hw);
            hw = conv_bn_relu(&mut layers, out_ch, out_ch, 3, 1, hw);
            ch = out_ch;
        }
    }
    layers.push(Layer::Pool {
        channels: ch,
        in_hw: hw,
        window: hw.max(1),
    });
    layers.push(Layer::Dense {
        inputs: ch,
        outputs: 1000,
    });
    Model {
        name: "resnet18",
        input_elems: 3 * 224 * 224,
        layers,
    }
}

/// ResNet-50 at ImageNet resolution (224x224x3), for NPU inference.
pub fn resnet50() -> Model {
    let mut layers = Vec::new();
    let mut hw = conv_bn_relu(&mut layers, 3, 64, 7, 2, 224);
    layers.push(Layer::Pool {
        channels: 64,
        in_hw: hw,
        window: 2,
    });
    hw /= 2;
    let mut ch = 64;
    for (blocks, mid, out, stride) in [
        (3usize, 64usize, 256usize, 1usize),
        (4, 128, 512, 2),
        (6, 256, 1024, 2),
        (3, 512, 2048, 2),
    ] {
        let (c, h) = residual_stage(&mut layers, blocks, ch, mid, out, hw, stride);
        ch = c;
        hw = h;
    }
    layers.push(Layer::Pool {
        channels: ch,
        in_hw: hw,
        window: hw.max(1),
    });
    layers.push(Layer::Dense {
        inputs: ch,
        outputs: 1000,
    });
    Model {
        name: "resnet50",
        input_elems: 3 * 224 * 224,
        layers,
    }
}

/// DenseNet-121-like network on ImageNet (224x224x3), used for training in
/// Fig. 8. Dense blocks are modeled as their equivalent conv sequences.
pub fn densenet121() -> Model {
    let mut layers = Vec::new();
    let mut hw = conv_bn_relu(&mut layers, 3, 64, 7, 2, 224);
    layers.push(Layer::Pool {
        channels: 64,
        in_hw: hw,
        window: 2,
    });
    hw /= 2;
    let growth = 32;
    let mut ch = 64;
    for (block_layers, last) in [(6usize, false), (12, false), (24, false), (16, true)] {
        for _ in 0..block_layers {
            // Each dense layer: 1x1 bottleneck to 4*growth, then 3x3 growth.
            conv_bn_relu(&mut layers, ch, 4 * growth, 1, 1, hw);
            conv_bn_relu(&mut layers, 4 * growth, growth, 3, 1, hw);
            ch += growth;
        }
        if !last {
            // Transition: 1x1 halving channels + 2x2 pool.
            conv_bn_relu(&mut layers, ch, ch / 2, 1, 1, hw);
            ch /= 2;
            layers.push(Layer::Pool {
                channels: ch,
                in_hw: hw,
                window: 2,
            });
            hw /= 2;
        }
    }
    layers.push(Layer::Pool {
        channels: ch,
        in_hw: hw,
        window: hw.max(1),
    });
    layers.push(Layer::Dense {
        inputs: ch,
        outputs: 1000,
    });
    Model {
        name: "densenet",
        input_elems: 3 * 224 * 224,
        layers,
    }
}

/// YOLOv3-like detector at 416x416x3, for NPU inference (Fig. 10b).
pub fn yolov3() -> Model {
    let mut layers = Vec::new();
    let mut hw = conv_bn_relu(&mut layers, 3, 32, 3, 1, 416);
    let mut ch = 32;
    for (blocks, out_ch) in [(1usize, 64usize), (2, 128), (8, 256), (8, 512), (4, 1024)] {
        // Downsample.
        hw = conv_bn_relu(&mut layers, ch, out_ch, 3, 2, hw);
        ch = out_ch;
        for _ in 0..blocks {
            conv_bn_relu(&mut layers, ch, ch / 2, 1, 1, hw);
            conv_bn_relu(&mut layers, ch / 2, ch, 3, 1, hw);
        }
    }
    // Detection head.
    conv_bn_relu(&mut layers, ch, 255, 1, 1, hw);
    Model {
        name: "yolov3",
        input_elems: 3 * 416 * 416,
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet_is_small() {
        let m = lenet5();
        assert_eq!(m.name, "lenet");
        // ~60k params, under a MFLOP forward.
        assert!(
            m.params() > 40_000 && m.params() < 120_000,
            "params = {}",
            m.params()
        );
        assert!(m.forward_flops() < 2e6, "flops = {}", m.forward_flops());
    }

    #[test]
    fn model_flops_ordering_matches_reality() {
        let lenet = lenet5().forward_flops();
        let resnet50c = resnet50_cifar().forward_flops();
        let vgg = vgg16_cifar().forward_flops();
        let dense = densenet121().forward_flops();
        let r18 = resnet18().forward_flops();
        let r50 = resnet50().forward_flops();
        let yolo = yolov3().forward_flops();
        assert!(lenet < resnet50c);
        assert!(lenet < vgg);
        // At 32x32 a full ResNet-50 out-FLOPs CIFAR-VGG-16 (stage 1 keeps
        // 256 channels at full resolution); both sit far below the
        // ImageNet-resolution DenseNet.
        assert!(resnet50c < dense);
        assert!(vgg < dense);
        assert!(r18 < r50);
        assert!(r50 < yolo);
    }

    #[test]
    fn magnitudes_are_plausible() {
        // VGG-16 CIFAR ~0.6 GFLOPs/sample (0.3 GFLOPs MACs x2).
        let vgg = vgg16_cifar().forward_flops();
        assert!(vgg > 3e8 && vgg < 2e9, "vgg16 = {vgg}");
        // ResNet-50 @224 ~8 GFLOPs (4 GMACs x2).
        let r50 = resnet50().forward_flops();
        assert!(r50 > 3e9 && r50 < 2e10, "resnet50 = {r50}");
        // YOLOv3 @416 ~ 60-130 GFLOPs.
        let yolo = yolov3().forward_flops();
        assert!(yolo > 3e10 && yolo < 3e11, "yolo = {yolo}");
    }

    #[test]
    fn training_flops_is_3x_forward() {
        let m = lenet5();
        assert_eq!(m.training_flops(), 3.0 * m.forward_flops());
        assert!(m.param_layers() >= 5);
    }

    #[test]
    fn resnet50_param_count_plausible() {
        // Real ResNet-50 has ~25.6M params (ImageNet head). Ours models the
        // conv trunk without the projection shortcuts, so accept 15–40M.
        let p = resnet50().params();
        assert!(p > 15_000_000 && p < 50_000_000, "params = {p}");
    }
}
