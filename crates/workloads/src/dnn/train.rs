//! The training loop (PyTorch-analogue driver).
//!
//! Two entry points:
//!
//! * [`train`] — the Fig. 8 / Fig. 11 measurement loop: per iteration it
//!   uploads a real-size batch, launches one forward kernel per layer,
//!   backward + SGD-update kernels per parameterized layer, and reads the
//!   loss scalar back (the per-iteration synchronization PyTorch's
//!   `loss.item()` causes). Kernel *costs* come from exact per-layer FLOP
//!   accounting; kernel *bodies* are no-ops so multi-GFLOP models stay
//!   cheap to simulate.
//! * [`train_real_mlp`] — a genuinely learning two-layer MLP (real matmul /
//!   relu / SGD kernels on device memory) whose loss provably decreases;
//!   used by tests and the quickstart example to show the stack computes.

use cronus_devices::gpu::GpuKernelDesc;
use cronus_sim::SimNs;

use crate::backend::{d2h_f32, h2d_f32, Arg, BackendError, GpuBackend};
use crate::dnn::data::Dataset;
use crate::dnn::layers::Layer;
use crate::dnn::models::Model;
use crate::kernels::{elementwise_desc, gemm_desc};

/// Kernel body selection for [`train`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrainMode {
    /// No-op kernel bodies with exact cost descriptors (default; scales to
    /// ImageNet-size models).
    CostModel,
}

/// Training configuration.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Batch size.
    pub batch: usize,
    /// Iterations to run.
    pub iterations: usize,
    /// Learning rate (cosmetic in cost-model mode).
    pub lr: f32,
    /// Kernel body mode.
    pub mode: TrainMode,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            batch: 64,
            iterations: 4,
            lr: 0.01,
            mode: TrainMode::CostModel,
        }
    }
}

/// The result of a training run.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainReport {
    /// Model name.
    pub model: &'static str,
    /// System the backend represents.
    pub system: String,
    /// Iterations run.
    pub iterations: usize,
    /// Batch size.
    pub batch: usize,
    /// Total simulated time.
    pub sim_time: SimNs,
}

impl TrainReport {
    /// Simulated time per iteration.
    pub fn time_per_iter(&self) -> SimNs {
        self.sim_time / self.iterations.max(1) as u64
    }

    /// Simulated training throughput in samples per second.
    pub fn samples_per_sec(&self) -> f64 {
        (self.iterations * self.batch) as f64 / self.sim_time.as_secs_f64().max(1e-12)
    }
}

fn layer_desc(layer: &Layer, batch: usize, backward_factor: f64) -> GpuKernelDesc {
    let flops = layer.forward_flops() * batch as f64 * backward_factor;
    let bytes = (layer.activations() as f64 * 4.0 * batch as f64 + layer.params() as f64 * 4.0)
        * backward_factor;
    GpuKernelDesc {
        flops,
        mem_bytes: bytes,
        // One SM per ~1 MFLOP of work: small models (LeNet) occupy a
        // fraction of the machine, which is what makes spatial sharing pay
        // off in Fig. 11a; ImageNet-scale layers saturate all 46 SMs.
        sm_demand: ((flops / 1.0e6) as u32).clamp(1, 46),
    }
}

/// Runs the cost-model training loop.
///
/// # Errors
///
/// Backend failures (including peer-partition failure under CRONUS).
pub fn train(
    backend: &mut dyn GpuBackend,
    model: &Model,
    dataset: &Dataset,
    cfg: TrainConfig,
) -> Result<TrainReport, BackendError> {
    let system = backend.system_name().to_string();
    let start = backend.elapsed();

    // Proxy parameter/gradient buffers (64 floats each) — the update kernels
    // run for real, the *cost* comes from the descriptors.
    let param_layers = model.param_layers();
    let mut weights = Vec::with_capacity(param_layers);
    for _ in 0..param_layers {
        let w = backend.alloc(256)?;
        let g = backend.alloc(256)?;
        h2d_f32(backend, w, &[0.01; 64])?;
        h2d_f32(backend, g, &[0.0; 64])?;
        weights.push((w, g));
    }
    let d_batch = backend.alloc(dataset.batch_bytes(cfg.batch))?;
    let d_loss = backend.alloc(4)?;

    for iter in 0..cfg.iterations {
        // Real-size batch upload.
        let (inputs, _labels) = dataset.synthetic_batch(iter as u64, cfg.batch);
        h2d_f32(backend, d_batch, &inputs)?;

        // Forward: one launch per layer.
        for layer in &model.layers {
            backend.launch(
                "noop",
                &[Arg::Ptr(d_batch)],
                layer_desc(layer, cfg.batch, 1.0),
            )?;
        }
        // Backward: two launches per parameterized layer (dW, dX), one per
        // other layer.
        let mut param_idx = 0usize;
        for layer in model.layers.iter().rev() {
            if layer.params() > 0 {
                let (_, g) = weights[param_idx % param_layers];
                backend.launch("noop", &[Arg::Ptr(g)], layer_desc(layer, cfg.batch, 1.0))?;
                backend.launch(
                    "noop",
                    &[Arg::Ptr(d_batch)],
                    layer_desc(layer, cfg.batch, 1.0),
                )?;
                param_idx += 1;
            } else {
                backend.launch(
                    "noop",
                    &[Arg::Ptr(d_batch)],
                    layer_desc(layer, cfg.batch, 1.0),
                )?;
            }
        }
        // Optimizer step per parameterized layer.
        for (w, g) in &weights {
            backend.launch(
                "sgd_update",
                &[Arg::Ptr(*w), Arg::Ptr(*g), Arg::Float(cfg.lr)],
                elementwise_desc(64),
            )?;
        }
        // loss.item(): the per-iteration synchronization point.
        let _ = backend.d2h(d_loss, 4)?;
    }
    backend.sync()?;
    let sim_time = backend.elapsed() - start;

    for (w, g) in weights {
        backend.free(w)?;
        backend.free(g)?;
    }
    backend.free(d_batch)?;
    backend.free(d_loss)?;
    backend.sync()?;

    Ok(TrainReport {
        model: model.name,
        system,
        iterations: cfg.iterations,
        batch: cfg.batch,
        sim_time,
    })
}

/// Trains a real two-layer MLP (`y = W2·relu(W1·x)`) on a synthetic
/// regression task with genuine device kernels and returns the loss after
/// each iteration. The loss must decrease — tests assert it.
///
/// # Errors
///
/// Backend failures.
pub fn train_real_mlp(
    backend: &mut dyn GpuBackend,
    iterations: usize,
) -> Result<Vec<f32>, BackendError> {
    const IN: usize = 4;
    const HIDDEN: usize = 8;
    const BATCH: usize = 16;
    let lr = 0.25f32;

    // Deterministic data: y = sum(x) (learnable by a linear net).
    let xs = crate::rodinia::det_f32s(101, BATCH * IN);
    let ys: Vec<f32> = xs.chunks(IN).map(|row| row.iter().sum()).collect();
    let w1_init = crate::rodinia::det_f32s(102, IN * HIDDEN)
        .iter()
        .map(|v| v * 0.5)
        .collect::<Vec<_>>();
    let w2_init = crate::rodinia::det_f32s(103, HIDDEN)
        .iter()
        .map(|v| v * 0.5)
        .collect::<Vec<_>>();

    let d_x = backend.alloc((BATCH * IN * 4) as u64)?;
    let d_y = backend.alloc((BATCH * 4) as u64)?;
    let d_w1 = backend.alloc((IN * HIDDEN * 4) as u64)?;
    let d_w2 = backend.alloc((HIDDEN * 4) as u64)?;
    let d_h = backend.alloc((BATCH * HIDDEN * 4) as u64)?;
    let d_pred = backend.alloc((BATCH * 4) as u64)?;
    let d_err = backend.alloc((BATCH * 4) as u64)?;
    let d_gw2 = backend.alloc((HIDDEN * 4) as u64)?;
    let d_gw1 = backend.alloc((IN * HIDDEN * 4) as u64)?;
    let d_loss = backend.alloc(4)?;
    h2d_f32(backend, d_x, &xs)?;
    h2d_f32(backend, d_y, &ys)?;
    h2d_f32(backend, d_w1, &w1_init)?;
    h2d_f32(backend, d_w2, &w2_init)?;

    // Gradient kernels specific to this MLP.
    backend.register_kernel(
        "mlp_backward",
        std::sync::Arc::new(move |mem, args| {
            use cronus_devices::gpu::{GpuError, KernelArg};
            let bufs: Vec<_> = args
                .iter()
                .map(|a| match a {
                    KernelArg::Buffer(b) => Ok(*b),
                    _ => Err(GpuError::BadArg("mlp_backward takes buffers".into())),
                })
                .collect::<Result<_, _>>()?;
            let [x, y, w2, h, pred, err, gw1, gw2] = bufs[..] else {
                return Err(GpuError::BadArg("mlp_backward arity".into()));
            };
            let xs = mem.read_f32s(x)?;
            let ys = mem.read_f32s(y)?;
            let w2v = mem.read_f32s(w2)?;
            let hv = mem.read_f32s(h)?;
            let predv = mem.read_f32s(pred)?;
            let mut errv = vec![0.0f32; BATCH];
            let mut gw1v = vec![0.0f32; IN * HIDDEN];
            let mut gw2v = vec![0.0f32; HIDDEN];
            for b in 0..BATCH {
                errv[b] = 2.0 * (predv[b] - ys[b]) / BATCH as f32;
                for j in 0..HIDDEN {
                    gw2v[j] += errv[b] * hv[b * HIDDEN + j];
                    // relu'(h) = 1 if h > 0
                    if hv[b * HIDDEN + j] > 0.0 {
                        let dh = errv[b] * w2v[j];
                        for i in 0..IN {
                            gw1v[i * HIDDEN + j] += dh * xs[b * IN + i];
                        }
                    }
                }
            }
            mem.write_f32s(err, &errv)?;
            mem.write_f32s(gw1, &gw1v)?;
            mem.write_f32s(gw2, &gw2v)
        }),
    )?;
    backend.register_kernel(
        "mse_loss",
        std::sync::Arc::new(move |mem, args| {
            use cronus_devices::gpu::{GpuError, KernelArg};
            let (pred, y, loss) = match args {
                [KernelArg::Buffer(p), KernelArg::Buffer(y), KernelArg::Buffer(l)] => (*p, *y, *l),
                _ => return Err(GpuError::BadArg("mse_loss(pred, y, loss)".into())),
            };
            let p = mem.read_f32s(pred)?;
            let yv = mem.read_f32s(y)?;
            let loss_val: f32 = p
                .iter()
                .zip(&yv)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                / BATCH as f32;
            mem.write_f32s(loss, &[loss_val])
        }),
    )?;

    let mut losses = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        // h = relu(x W1)  [BATCH x HIDDEN]
        backend.launch(
            "matmul",
            &[
                Arg::Ptr(d_x),
                Arg::Ptr(d_w1),
                Arg::Ptr(d_h),
                Arg::Int(BATCH as i64),
                Arg::Int(HIDDEN as i64),
                Arg::Int(IN as i64),
            ],
            gemm_desc(BATCH, HIDDEN, IN),
        )?;
        backend.launch("relu", &[Arg::Ptr(d_h)], elementwise_desc(BATCH * HIDDEN))?;
        // pred = h W2  [BATCH x 1]
        backend.launch(
            "matmul",
            &[
                Arg::Ptr(d_h),
                Arg::Ptr(d_w2),
                Arg::Ptr(d_pred),
                Arg::Int(BATCH as i64),
                Arg::Int(1),
                Arg::Int(HIDDEN as i64),
            ],
            gemm_desc(BATCH, 1, HIDDEN),
        )?;
        backend.launch(
            "mse_loss",
            &[Arg::Ptr(d_pred), Arg::Ptr(d_y), Arg::Ptr(d_loss)],
            elementwise_desc(BATCH),
        )?;
        backend.launch(
            "mlp_backward",
            &[
                Arg::Ptr(d_x),
                Arg::Ptr(d_y),
                Arg::Ptr(d_w2),
                Arg::Ptr(d_h),
                Arg::Ptr(d_pred),
                Arg::Ptr(d_err),
                Arg::Ptr(d_gw1),
                Arg::Ptr(d_gw2),
            ],
            gemm_desc(BATCH, HIDDEN, IN),
        )?;
        backend.launch(
            "sgd_update",
            &[Arg::Ptr(d_w1), Arg::Ptr(d_gw1), Arg::Float(lr)],
            elementwise_desc(IN * HIDDEN),
        )?;
        backend.launch(
            "sgd_update",
            &[Arg::Ptr(d_w2), Arg::Ptr(d_gw2), Arg::Float(lr)],
            elementwise_desc(HIDDEN),
        )?;
        let loss = d2h_f32(backend, d_loss, 1)?;
        losses.push(loss[0]);
    }
    for ptr in [
        d_x, d_y, d_w1, d_w2, d_h, d_pred, d_err, d_gw1, d_gw2, d_loss,
    ] {
        backend.free(ptr)?;
    }
    backend.sync()?;
    Ok(losses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnn::models;
    use crate::testutil::cronus_backend_fixture;

    #[test]
    fn lenet_training_produces_time() {
        cronus_backend_fixture(|backend| {
            let report = train(
                backend,
                &models::lenet5(),
                &Dataset::mnist(),
                TrainConfig {
                    iterations: 3,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(report.model, "lenet");
            assert_eq!(report.system, "cronus");
            assert!(report.sim_time > SimNs::ZERO);
            assert!(report.samples_per_sec() > 0.0);
        });
    }

    #[test]
    fn bigger_models_take_longer() {
        cronus_backend_fixture(|backend| {
            let cfg = TrainConfig {
                iterations: 2,
                batch: 16,
                ..Default::default()
            };
            let lenet = train(backend, &models::lenet5(), &Dataset::mnist(), cfg).unwrap();
            let vgg = train(backend, &models::vgg16_cifar(), &Dataset::cifar10(), cfg).unwrap();
            assert!(
                vgg.time_per_iter() > lenet.time_per_iter() * 10,
                "vgg {} vs lenet {}",
                vgg.time_per_iter(),
                lenet.time_per_iter()
            );
        });
    }

    #[test]
    fn real_mlp_learns() {
        cronus_backend_fixture(|backend| {
            let losses = train_real_mlp(backend, 80).unwrap();
            assert_eq!(losses.len(), 80);
            let first = losses[0];
            let last = *losses.last().unwrap();
            assert!(last < first * 0.5, "loss must halve: {first} -> {last}");
            assert!(last.is_finite());
        });
    }
}
