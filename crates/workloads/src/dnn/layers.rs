//! Layer descriptions with FLOP/parameter/activation accounting.

/// One network layer.
#[derive(Clone, Debug, PartialEq)]
pub enum Layer {
    /// 2-D convolution over `in_hw x in_hw` input.
    Conv2d {
        /// Input channels.
        in_ch: usize,
        /// Output channels.
        out_ch: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Input spatial size (square).
        in_hw: usize,
    },
    /// Fully connected layer.
    Dense {
        /// Input features.
        inputs: usize,
        /// Output features.
        outputs: usize,
    },
    /// Max/average pooling (no parameters).
    Pool {
        /// Channels.
        channels: usize,
        /// Input spatial size.
        in_hw: usize,
        /// Pooling window/stride.
        window: usize,
    },
    /// ReLU over `units` activations.
    Relu {
        /// Activation count (per sample).
        units: usize,
    },
    /// Batch normalization over `units` activations.
    BatchNorm {
        /// Activation count (per sample).
        units: usize,
    },
}

impl Layer {
    /// Layer kind name.
    pub fn kind(&self) -> &'static str {
        match self {
            Layer::Conv2d { .. } => "conv2d",
            Layer::Dense { .. } => "dense",
            Layer::Pool { .. } => "pool",
            Layer::Relu { .. } => "relu",
            Layer::BatchNorm { .. } => "batchnorm",
        }
    }

    /// Output spatial size for spatial layers.
    pub fn out_hw(&self) -> Option<usize> {
        match self {
            Layer::Conv2d {
                kernel,
                stride,
                in_hw,
                ..
            } => {
                // Same-ish padding: floor((hw - k + 2*(k/2)) / stride) + 1.
                let pad = kernel / 2;
                Some((in_hw + 2 * pad - kernel) / stride + 1)
            }
            Layer::Pool { in_hw, window, .. } => Some(in_hw / window),
            _ => None,
        }
    }

    /// Trainable parameters.
    pub fn params(&self) -> u64 {
        match self {
            Layer::Conv2d {
                in_ch,
                out_ch,
                kernel,
                ..
            } => (in_ch * out_ch * kernel * kernel + out_ch) as u64,
            Layer::Dense { inputs, outputs } => (inputs * outputs + outputs) as u64,
            Layer::BatchNorm { units } => 2 * *units as u64,
            _ => 0,
        }
    }

    /// Forward FLOPs for one sample.
    pub fn forward_flops(&self) -> f64 {
        match self {
            Layer::Conv2d {
                in_ch,
                out_ch,
                kernel,
                ..
            } => {
                let out_hw = self.out_hw().expect("conv has spatial output");
                2.0 * (*in_ch * *out_ch * kernel * kernel) as f64 * (out_hw * out_hw) as f64
            }
            Layer::Dense { inputs, outputs } => 2.0 * (*inputs * *outputs) as f64,
            Layer::Pool {
                channels, in_hw, ..
            } => (*channels * in_hw * in_hw) as f64,
            Layer::Relu { units } => *units as f64,
            Layer::BatchNorm { units } => 4.0 * *units as f64,
        }
    }

    /// Output activations per sample.
    pub fn activations(&self) -> u64 {
        match self {
            Layer::Conv2d { out_ch, .. } => {
                let out_hw = self.out_hw().expect("conv has spatial output");
                (*out_ch * out_hw * out_hw) as u64
            }
            Layer::Dense { outputs, .. } => *outputs as u64,
            Layer::Pool { channels, .. } => {
                let out_hw = self.out_hw().expect("pool has spatial output");
                (*channels * out_hw * out_hw) as u64
            }
            Layer::Relu { units } | Layer::BatchNorm { units } => *units as u64,
        }
    }

    /// The GEMM shape of the layer's forward pass (im2col view), if it has
    /// one: `(m, n, k)` with `m` = output positions, `n` = output channels,
    /// `k` = reduction size. Used by the NPU inference compiler.
    pub fn gemm_shape(&self) -> Option<(usize, usize, usize)> {
        match self {
            Layer::Conv2d {
                in_ch,
                out_ch,
                kernel,
                ..
            } => {
                let out_hw = self.out_hw().expect("conv output");
                Some((out_hw * out_hw, *out_ch, in_ch * kernel * kernel))
            }
            Layer::Dense { inputs, outputs } => Some((1, *outputs, *inputs)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_accounting() {
        // 3x3 conv, 16->32 channels, 32x32 input, stride 1, same padding.
        let conv = Layer::Conv2d {
            in_ch: 16,
            out_ch: 32,
            kernel: 3,
            stride: 1,
            in_hw: 32,
        };
        assert_eq!(conv.out_hw(), Some(32));
        assert_eq!(conv.params(), (16 * 32 * 9 + 32) as u64);
        assert_eq!(
            conv.forward_flops(),
            2.0 * (16 * 32 * 9) as f64 * (32 * 32) as f64
        );
        assert_eq!(conv.activations(), 32 * 32 * 32);
        assert_eq!(conv.gemm_shape(), Some((32 * 32, 32, 16 * 9)));
    }

    #[test]
    fn strided_conv_shrinks_output() {
        let conv = Layer::Conv2d {
            in_ch: 3,
            out_ch: 64,
            kernel: 7,
            stride: 2,
            in_hw: 224,
        };
        assert_eq!(conv.out_hw(), Some(112));
    }

    #[test]
    fn dense_accounting() {
        let fc = Layer::Dense {
            inputs: 400,
            outputs: 120,
        };
        assert_eq!(fc.params(), (400 * 120 + 120) as u64);
        assert_eq!(fc.forward_flops(), 2.0 * 400.0 * 120.0);
        assert_eq!(fc.gemm_shape(), Some((1, 120, 400)));
    }

    #[test]
    fn pool_and_relu_have_no_params() {
        let pool = Layer::Pool {
            channels: 6,
            in_hw: 28,
            window: 2,
        };
        assert_eq!(pool.out_hw(), Some(14));
        assert_eq!(pool.params(), 0);
        let relu = Layer::Relu { units: 100 };
        assert_eq!(relu.params(), 0);
        assert_eq!(relu.forward_flops(), 100.0);
        assert!(relu.gemm_shape().is_none());
    }
}
