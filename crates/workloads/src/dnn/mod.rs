//! Miniature DNN framework for the training/inference experiments.
//!
//! The paper trains LeNet, ResNet-50, VGG-16 and DenseNet with PyTorch on
//! the GPU (Fig. 8, Fig. 11) and runs TVM-compiled inference on the NPU
//! (Fig. 10b). This module provides the equivalent: layer descriptions with
//! exact FLOP accounting ([`layers`]), model constructors matching the
//! paper's networks ([`models`]), synthetic stand-ins for MNIST/CIFAR-10/
//! ImageNet ([`data`]), and a training loop ([`train()`]) that drives any
//! [`crate::backend::GpuBackend`].

pub mod data;
pub mod layers;
pub mod models;
pub mod train;

pub use data::Dataset;
pub use layers::Layer;
pub use models::Model;
pub use train::{train, TrainConfig, TrainMode, TrainReport};
