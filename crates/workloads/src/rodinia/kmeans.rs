//! Rodinia `kmeans`: iterative clustering with a device-side assignment
//! kernel and a host-side centroid update — the original round-trips the
//! membership array through the host every iteration, which is exactly the
//! memcpy-heavy pattern that punishes lock-step RPC systems.

use std::sync::Arc;

use cronus_devices::gpu::{GpuError, GpuKernelDesc, KernelArg};

use crate::backend::{h2d_f32, Arg, BackendError, GpuBackend};
use crate::rodinia::{bytes_to_u32s, det_f32s, u32s_to_bytes, RodiniaRun};

const DIMS: usize = 4;
const K: usize = 5;
const ITERS: usize = 8;

/// Deterministic point cloud.
pub fn build_points(n: usize) -> Vec<f32> {
    det_f32s(41, n * DIMS).iter().map(|v| v * 10.0).collect()
}

fn initial_centroids(points: &[f32]) -> Vec<f32> {
    points[..K * DIMS].to_vec()
}

fn assign_cpu(points: &[f32], centroids: &[f32], n: usize) -> Vec<u32> {
    (0..n)
        .map(|i| {
            let mut best = 0u32;
            let mut best_d = f32::INFINITY;
            for c in 0..K {
                let mut d = 0.0f32;
                for j in 0..DIMS {
                    let diff = points[i * DIMS + j] - centroids[c * DIMS + j];
                    d += diff * diff;
                }
                if d < best_d {
                    best_d = d;
                    best = c as u32;
                }
            }
            best
        })
        .collect()
}

fn update_centroids(points: &[f32], membership: &[u32], n: usize) -> Vec<f32> {
    let mut sums = vec![0.0f32; K * DIMS];
    let mut counts = [0u32; K];
    for i in 0..n {
        let c = membership[i] as usize;
        counts[c] += 1;
        for j in 0..DIMS {
            sums[c * DIMS + j] += points[i * DIMS + j];
        }
    }
    for c in 0..K {
        if counts[c] > 0 {
            for j in 0..DIMS {
                sums[c * DIMS + j] /= counts[c] as f32;
            }
        }
    }
    sums
}

/// CPU reference clustering.
pub fn reference_membership(n: usize, iters: usize) -> Vec<u32> {
    let points = build_points(n);
    let mut centroids = initial_centroids(&points);
    let mut membership = vec![0u32; n];
    for _ in 0..iters {
        membership = assign_cpu(&points, &centroids, n);
        centroids = update_centroids(&points, &membership, n);
    }
    membership
}

/// `kmeans_assign(points, centroids, membership, n)` device kernel.
pub fn assign_kernel() -> cronus_devices::gpu::KernelFn {
    Arc::new(|mem, args| {
        let (p_b, c_b, m_b, n) = match args {
            [KernelArg::Buffer(p), KernelArg::Buffer(c), KernelArg::Buffer(m), KernelArg::Int(n)] => {
                (*p, *c, *m, *n as usize)
            }
            _ => return Err(GpuError::BadArg("kmeans_assign(p, c, m, n)".into())),
        };
        let points = mem.read_f32s(p_b)?;
        let centroids = mem.read_f32s(c_b)?;
        let membership = assign_cpu(&points, &centroids, n);
        mem.write_bytes(m_b, 0, &u32s_to_bytes(&membership))
    })
}

/// Runs kmeans at `scale` (points = 128 * scale).
///
/// # Errors
///
/// Backend failures.
pub fn run(backend: &mut dyn GpuBackend, scale: usize) -> Result<RodiniaRun, BackendError> {
    let n = 128 * scale.max(1);
    let points = build_points(n);
    let mut centroids = initial_centroids(&points);

    backend.register_kernel("kmeans_assign", assign_kernel())?;
    let start = backend.elapsed();

    let d_p = backend.alloc((n * DIMS * 4) as u64)?;
    let d_c = backend.alloc((K * DIMS * 4) as u64)?;
    let d_m = backend.alloc((n * 4) as u64)?;
    h2d_f32(backend, d_p, &points)?;

    let mut membership = vec![0u32; n];
    for _ in 0..ITERS {
        h2d_f32(backend, d_c, &centroids)?;
        backend.launch(
            "kmeans_assign",
            &[
                Arg::Ptr(d_p),
                Arg::Ptr(d_c),
                Arg::Ptr(d_m),
                Arg::Int(n as i64),
            ],
            GpuKernelDesc {
                flops: (n * K * DIMS * 3) as f64,
                mem_bytes: (n * DIMS * 4) as f64,
                sm_demand: ((n / 256) as u32).clamp(1, 46),
            },
        )?;
        // Host-side centroid update, as in the original.
        membership = bytes_to_u32s(&backend.d2h(d_m, (n * 4) as u64)?);
        centroids = update_centroids(&points, &membership, n);
    }
    for ptr in [d_p, d_c, d_m] {
        backend.free(ptr)?;
    }
    backend.sync()?;

    let checksum = membership.iter().map(|m| *m as f64).sum();
    Ok(RodiniaRun {
        name: "kmeans",
        sim_time: backend.elapsed() - start,
        checksum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::cronus_backend_fixture;

    #[test]
    fn membership_matches_cpu_reference() {
        cronus_backend_fixture(|backend| {
            let result = run(backend, 1).unwrap();
            let reference: f64 = reference_membership(128, ITERS)
                .iter()
                .map(|m| *m as f64)
                .sum();
            assert_eq!(result.checksum, reference);
        });
    }

    #[test]
    fn clustering_uses_multiple_clusters() {
        let membership = reference_membership(128, ITERS);
        let mut used = [false; K];
        for m in membership {
            used[m as usize] = true;
        }
        assert!(used.iter().filter(|u| **u).count() >= 2);
    }
}
