//! Rodinia `hotspot`: thermal simulation via iterated 5-point stencils,
//! ping-ponging between two device grids (one kernel per timestep).

use crate::backend::{d2h_f32, h2d_f32, Arg, BackendError, GpuBackend};
use crate::kernels::stencil_desc;
use crate::rodinia::{det_f32s, RodiniaRun};

const ALPHA: f32 = 0.06;
const STEPS: usize = 20;

/// Initial temperature grid.
pub fn initial_grid(rows: usize, cols: usize) -> Vec<f32> {
    det_f32s(31, rows * cols)
        .iter()
        .map(|v| 40.0 + v * 10.0)
        .collect()
}

/// CPU reference: the same stencil iterated on the host.
pub fn reference_final(rows: usize, cols: usize, steps: usize) -> Vec<f32> {
    let mut src = initial_grid(rows, cols);
    let mut dst = vec![0.0f32; rows * cols];
    for _ in 0..steps {
        for r in 0..rows {
            for c in 0..cols {
                let idx = r * cols + c;
                let center = src[idx];
                let up = if r > 0 { src[idx - cols] } else { center };
                let down = if r + 1 < rows {
                    src[idx + cols]
                } else {
                    center
                };
                let left = if c > 0 { src[idx - 1] } else { center };
                let right = if c + 1 < cols { src[idx + 1] } else { center };
                dst[idx] = center + ALPHA * (up + down + left + right - 4.0 * center);
            }
        }
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

/// Runs hotspot at `scale` (grid = (16*scale) x (16*scale), 20 steps).
///
/// # Errors
///
/// Backend failures.
pub fn run(backend: &mut dyn GpuBackend, scale: usize) -> Result<RodiniaRun, BackendError> {
    let rows = 16 * scale.max(1);
    let cols = rows;
    let grid = initial_grid(rows, cols);

    let start = backend.elapsed();
    let d_a = backend.alloc((rows * cols * 4) as u64)?;
    let d_b = backend.alloc((rows * cols * 4) as u64)?;
    h2d_f32(backend, d_a, &grid)?;

    let (mut src, mut dst) = (d_a, d_b);
    for _ in 0..STEPS {
        backend.launch(
            "stencil5",
            &[
                Arg::Ptr(src),
                Arg::Ptr(dst),
                Arg::Int(rows as i64),
                Arg::Int(cols as i64),
                Arg::Float(ALPHA),
            ],
            stencil_desc(rows, cols),
        )?;
        std::mem::swap(&mut src, &mut dst);
    }
    backend.sync()?;
    let out = d2h_f32(backend, src, rows * cols)?;
    backend.free(d_a)?;
    backend.free(d_b)?;
    backend.sync()?;

    let checksum = out.iter().map(|v| *v as f64).sum();
    Ok(RodiniaRun {
        name: "hotspot",
        sim_time: backend.elapsed() - start,
        checksum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::cronus_backend_fixture;

    #[test]
    fn grid_matches_cpu_reference() {
        cronus_backend_fixture(|backend| {
            let result = run(backend, 1).unwrap();
            let reference: f64 = reference_final(16, 16, STEPS)
                .iter()
                .map(|v| *v as f64)
                .sum();
            assert!(
                (result.checksum - reference).abs() / reference.abs() < 1e-5,
                "{} vs {}",
                result.checksum,
                reference
            );
        });
    }

    #[test]
    fn heat_is_conserved_in_interior() {
        // With reflective borders the stencil conserves total heat closely.
        let before: f64 = initial_grid(8, 8).iter().map(|v| *v as f64).sum();
        let after: f64 = reference_final(8, 8, 50).iter().map(|v| *v as f64).sum();
        assert!((before - after).abs() / before < 0.01);
    }
}
