//! Rodinia-style GPU benchmark suite (paper Fig. 7).
//!
//! Ten workloads mirroring the Rodinia programs the paper evaluates
//! (§VI-B): backprop, bfs, gaussian, hotspot, kmeans, lud, nn, nw,
//! pathfinder and srad. Each runs a faithful (scaled-down) version of the
//! original algorithm through the [`GpuBackend`] interface — real device
//! data movement, real kernels, and a kernel-launch/memcpy pattern matching
//! the original (e.g. `nw` launches one kernel per anti-diagonal, which is
//! what makes per-call RPC overhead visible; `kmeans` round-trips centroids
//! through the host every iteration).
//!
//! Every workload returns a [`RodiniaRun`] with the simulated time and a
//! checksum validated against a CPU reference in its unit tests.

pub mod backprop;
pub mod bfs;
pub mod gaussian;
pub mod hotspot;
pub mod kmeans;
pub mod lud;
pub mod nn;
pub mod nw;
pub mod pathfinder;
pub mod srad;

use cronus_sim::SimNs;

use crate::backend::{BackendError, GpuBackend};

/// The result of one workload run.
#[derive(Clone, Debug, PartialEq)]
pub struct RodiniaRun {
    /// Workload name.
    pub name: &'static str,
    /// Simulated wall time of the run (caller clock delta).
    pub sim_time: SimNs,
    /// An output checksum for correctness comparison across systems.
    pub checksum: f64,
}

/// A workload entry point: `(backend, scale) -> run`.
pub type WorkloadFn = fn(&mut dyn GpuBackend, usize) -> Result<RodiniaRun, BackendError>;

/// The full suite in Fig. 7 order.
pub fn suite() -> Vec<(&'static str, WorkloadFn)> {
    vec![
        ("backprop", backprop::run as WorkloadFn),
        ("bfs", bfs::run as WorkloadFn),
        ("gaussian", gaussian::run as WorkloadFn),
        ("hotspot", hotspot::run as WorkloadFn),
        ("kmeans", kmeans::run as WorkloadFn),
        ("lud", lud::run as WorkloadFn),
        ("nn", nn::run as WorkloadFn),
        ("nw", nw::run as WorkloadFn),
        ("pathfinder", pathfinder::run as WorkloadFn),
        ("srad", srad::run as WorkloadFn),
    ]
}

/// Deterministic pseudo-random f32 stream used by all workloads so every
/// system computes on identical inputs.
pub(crate) fn det_f32s(seed: u64, count: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..count)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

/// Deterministic pseudo-random u32 stream.
pub(crate) fn det_u32s(seed: u64, count: usize, modulo: u32) -> Vec<u32> {
    let mut state = seed.wrapping_mul(0xD134_2543_DE82_EF95) | 1;
    (0..count)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 33) as u32 % modulo.max(1)
        })
        .collect()
}

/// Packs u32s into bytes (device buffers are untyped).
pub(crate) fn u32s_to_bytes(v: &[u32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Unpacks bytes into u32s.
pub(crate) fn bytes_to_u32s(b: &[u8]) -> Vec<u32> {
    b.chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::cronus_backend_fixture;

    #[test]
    fn deterministic_streams() {
        assert_eq!(det_f32s(1, 8), det_f32s(1, 8));
        assert_ne!(det_f32s(1, 8), det_f32s(2, 8));
        let ints = det_u32s(3, 100, 10);
        assert!(ints.iter().all(|v| *v < 10));
        assert_eq!(bytes_to_u32s(&u32s_to_bytes(&ints)), ints);
    }

    #[test]
    fn whole_suite_runs_on_cronus() {
        cronus_backend_fixture(|backend| {
            for (name, f) in suite() {
                let run = f(backend, 1).unwrap_or_else(|e| panic!("{name}: {e}"));
                assert_eq!(run.name, name);
                assert!(run.sim_time > SimNs::ZERO, "{name} consumed time");
                assert!(run.checksum.is_finite(), "{name} checksum finite");
            }
        });
    }
}
