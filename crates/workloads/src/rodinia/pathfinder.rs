//! Rodinia `pathfinder`: dynamic programming over a grid, one kernel per
//! row, finding the cheapest bottom-to-top path.

use std::sync::Arc;

use cronus_devices::gpu::{GpuError, GpuKernelDesc, KernelArg};

use crate::backend::{d2h_f32, h2d_f32, Arg, BackendError, GpuBackend};
use crate::rodinia::{det_u32s, RodiniaRun};

/// Deterministic cost grid (`rows x cols`).
pub fn build_grid(rows: usize, cols: usize) -> Vec<f32> {
    det_u32s(81, rows * cols, 10)
        .iter()
        .map(|v| *v as f32)
        .collect()
}

/// CPU reference: min-cost values after processing all rows.
pub fn reference_result(rows: usize, cols: usize) -> Vec<f32> {
    let grid = build_grid(rows, cols);
    let mut cur = grid[..cols].to_vec();
    for r in 1..rows {
        let mut next = vec![0.0f32; cols];
        for c in 0..cols {
            let mut best = cur[c];
            if c > 0 {
                best = best.min(cur[c - 1]);
            }
            if c + 1 < cols {
                best = best.min(cur[c + 1]);
            }
            next[c] = grid[r * cols + c] + best;
        }
        cur = next;
    }
    cur
}

/// `pathfinder_row(grid, cur, next, cols, row)` kernel.
pub fn row_kernel() -> cronus_devices::gpu::KernelFn {
    Arc::new(|mem, args| {
        let (g_b, cur_b, next_b, cols, row) = match args {
            [KernelArg::Buffer(g), KernelArg::Buffer(c), KernelArg::Buffer(n), KernelArg::Int(cols), KernelArg::Int(row)] => {
                (*g, *c, *n, *cols as usize, *row as usize)
            }
            _ => {
                return Err(GpuError::BadArg(
                    "pathfinder_row(g, cur, next, cols, row)".into(),
                ))
            }
        };
        let grid = mem.read_f32s(g_b)?;
        let cur = mem.read_f32s(cur_b)?;
        let mut next = vec![0.0f32; cols];
        for c in 0..cols {
            let mut best = cur[c];
            if c > 0 {
                best = best.min(cur[c - 1]);
            }
            if c + 1 < cols {
                best = best.min(cur[c + 1]);
            }
            next[c] = grid[row * cols + c] + best;
        }
        mem.write_f32s(next_b, &next)
    })
}

/// Runs pathfinder at `scale` (grid = (8*scale) rows x (64*scale) cols).
///
/// # Errors
///
/// Backend failures.
pub fn run(backend: &mut dyn GpuBackend, scale: usize) -> Result<RodiniaRun, BackendError> {
    let rows = 8 * scale.max(1);
    let cols = 64 * scale.max(1);
    let grid = build_grid(rows, cols);

    backend.register_kernel("pathfinder_row", row_kernel())?;
    let start = backend.elapsed();

    let d_g = backend.alloc((rows * cols * 4) as u64)?;
    let d_a = backend.alloc((cols * 4) as u64)?;
    let d_b = backend.alloc((cols * 4) as u64)?;
    h2d_f32(backend, d_g, &grid)?;
    h2d_f32(backend, d_a, &grid[..cols])?;

    let (mut cur, mut next) = (d_a, d_b);
    for r in 1..rows {
        backend.launch(
            "pathfinder_row",
            &[
                Arg::Ptr(d_g),
                Arg::Ptr(cur),
                Arg::Ptr(next),
                Arg::Int(cols as i64),
                Arg::Int(r as i64),
            ],
            GpuKernelDesc {
                flops: 4.0 * cols as f64,
                mem_bytes: 12.0 * cols as f64,
                sm_demand: ((cols / 128) as u32).clamp(1, 46),
            },
        )?;
        std::mem::swap(&mut cur, &mut next);
    }
    backend.sync()?;
    let result = d2h_f32(backend, cur, cols)?;
    for ptr in [d_g, d_a, d_b] {
        backend.free(ptr)?;
    }
    backend.sync()?;

    let checksum = result.iter().map(|v| *v as f64).sum();
    Ok(RodiniaRun {
        name: "pathfinder",
        sim_time: backend.elapsed() - start,
        checksum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::cronus_backend_fixture;

    #[test]
    fn costs_match_cpu_reference() {
        cronus_backend_fixture(|backend| {
            let result = run(backend, 1).unwrap();
            let reference: f64 = reference_result(8, 64).iter().map(|v| *v as f64).sum();
            assert_eq!(result.checksum, reference);
        });
    }

    #[test]
    fn path_costs_stay_in_cost_range() {
        // Cell costs are in [0, 10), so an 8-row best path is below 80.
        for v in reference_result(8, 32) {
            assert!((0.0..80.0).contains(&v), "cost {v} out of range");
        }
    }
}
