//! Rodinia `bfs`: level-synchronous breadth-first search.
//!
//! The graph lives in device memory in CSR form; each level launches one
//! frontier-expansion kernel (matching the original's one-kernel-per-level
//! structure). Node and edge arrays are u32s stored in untyped buffers; the
//! kernel decodes them with raw byte access.

use std::sync::Arc;

use cronus_devices::gpu::{GpuError, GpuKernelDesc, KernelArg};

use crate::backend::{Arg, BackendError, GpuBackend};
use crate::rodinia::{bytes_to_u32s, det_u32s, u32s_to_bytes, RodiniaRun};

const UNVISITED: u32 = u32::MAX;

/// Builds a deterministic graph with `n` nodes and ~`n * degree` edges.
pub fn build_graph(n: usize, degree: usize) -> (Vec<u32>, Vec<u32>) {
    // CSR: offsets (n + 1) and targets.
    let targets_per_node = det_u32s(77, n * degree, n as u32);
    let mut offsets = Vec::with_capacity(n + 1);
    let mut targets = Vec::with_capacity(n * degree);
    offsets.push(0u32);
    for node in 0..n {
        for d in 0..degree {
            let t = targets_per_node[node * degree + d];
            // Bias edges forward so the BFS has multiple levels.
            targets.push((node as u32 + 1 + t % 7) % n as u32);
        }
        offsets.push(targets.len() as u32);
    }
    (offsets, targets)
}

/// CPU reference BFS returning the level of each node from node 0.
pub fn reference_levels(offsets: &[u32], targets: &[u32]) -> Vec<u32> {
    let n = offsets.len() - 1;
    let mut level = vec![UNVISITED; n];
    level[0] = 0;
    let mut frontier = vec![0usize];
    let mut depth = 0u32;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            for &t in &targets[offsets[u] as usize..offsets[u + 1] as usize] {
                let v = t as usize;
                if level[v] == UNVISITED {
                    level[v] = depth + 1;
                    next.push(v);
                }
            }
        }
        frontier = next;
        depth += 1;
    }
    level
}

fn read_u32_buf(
    mem: &dyn cronus_devices::gpu::GpuMemAccess,
    buf: cronus_devices::gpu::GpuBuffer,
) -> Result<Vec<u32>, GpuError> {
    let len = mem.buffer_len(buf)? as usize;
    let mut bytes = vec![0u8; len];
    mem.read_bytes(buf, 0, &mut bytes)?;
    Ok(bytes_to_u32s(&bytes))
}

fn write_u32_buf(
    mem: &mut dyn cronus_devices::gpu::GpuMemAccess,
    buf: cronus_devices::gpu::GpuBuffer,
    data: &[u32],
) -> Result<(), GpuError> {
    mem.write_bytes(buf, 0, &u32s_to_bytes(data))
}

/// The per-level frontier expansion kernel:
/// `bfs_level(offsets, targets, levels, depth, changed_flag)`.
pub fn bfs_level_kernel() -> cronus_devices::gpu::KernelFn {
    Arc::new(|mem, args| {
        let (offsets_b, targets_b, levels_b, depth, flag_b) = match args {
            [KernelArg::Buffer(o), KernelArg::Buffer(t), KernelArg::Buffer(l), KernelArg::Int(d), KernelArg::Buffer(f)] => {
                (*o, *t, *l, *d as u32, *f)
            }
            _ => return Err(GpuError::BadArg("bfs_level(o, t, l, depth, flag)".into())),
        };
        let offsets = read_u32_buf(mem, offsets_b)?;
        let targets = read_u32_buf(mem, targets_b)?;
        let mut levels = read_u32_buf(mem, levels_b)?;
        let mut changed = 0u32;
        let n = offsets.len() - 1;
        for u in 0..n {
            if levels[u] != depth {
                continue;
            }
            for &t in &targets[offsets[u] as usize..offsets[u + 1] as usize] {
                let v = t as usize;
                if levels[v] == UNVISITED {
                    levels[v] = depth + 1;
                    changed = 1;
                }
            }
        }
        write_u32_buf(mem, levels_b, &levels)?;
        write_u32_buf(mem, flag_b, &[changed])
    })
}

/// Runs BFS at `scale` (nodes = 256 * scale).
///
/// # Errors
///
/// Backend failures.
pub fn run(backend: &mut dyn GpuBackend, scale: usize) -> Result<RodiniaRun, BackendError> {
    let n = 256 * scale.max(1);
    let degree = 4;
    let (offsets, targets) = build_graph(n, degree);

    backend.register_kernel("bfs_level", bfs_level_kernel())?;
    let start = backend.elapsed();

    let d_off = backend.alloc((offsets.len() * 4) as u64)?;
    let d_tgt = backend.alloc((targets.len() * 4) as u64)?;
    let d_lvl = backend.alloc((n * 4) as u64)?;
    let d_flag = backend.alloc(4)?;
    backend.h2d(d_off, &u32s_to_bytes(&offsets))?;
    backend.h2d(d_tgt, &u32s_to_bytes(&targets))?;
    let mut init = vec![UNVISITED; n];
    init[0] = 0;
    backend.h2d(d_lvl, &u32s_to_bytes(&init))?;

    let edge_work = targets.len();
    let mut depth: i64 = 0;
    loop {
        backend.h2d(d_flag, &[0u8; 4])?;
        backend.launch(
            "bfs_level",
            &[
                Arg::Ptr(d_off),
                Arg::Ptr(d_tgt),
                Arg::Ptr(d_lvl),
                Arg::Int(depth),
                Arg::Ptr(d_flag),
            ],
            GpuKernelDesc {
                flops: edge_work as f64,
                mem_bytes: 8.0 * edge_work as f64,
                sm_demand: ((n / 512) as u32).clamp(1, 46),
            },
        )?;
        // The original copies the "continue" flag back every level.
        let flag = bytes_to_u32s(&backend.d2h(d_flag, 4)?)[0];
        if flag == 0 {
            break;
        }
        depth += 1;
        if depth as usize > n {
            return Err(BackendError::msg("bfs failed to converge"));
        }
    }

    let levels = bytes_to_u32s(&backend.d2h(d_lvl, (n * 4) as u64)?);
    for ptr in [d_off, d_tgt, d_lvl, d_flag] {
        backend.free(ptr)?;
    }
    backend.sync()?;

    let checksum = levels
        .iter()
        .map(|l| if *l == UNVISITED { 0.0 } else { *l as f64 })
        .sum::<f64>();
    Ok(RodiniaRun {
        name: "bfs",
        sim_time: backend.elapsed() - start,
        checksum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::cronus_backend_fixture;

    #[test]
    fn levels_match_cpu_reference() {
        cronus_backend_fixture(|backend| {
            let result = run(backend, 1).unwrap();
            let (offsets, targets) = build_graph(256, 4);
            let reference: f64 = reference_levels(&offsets, &targets)
                .iter()
                .map(|l| if *l == UNVISITED { 0.0 } else { *l as f64 })
                .sum();
            assert_eq!(result.checksum, reference);
        });
    }

    #[test]
    fn reference_bfs_visits_from_source() {
        let (offsets, targets) = build_graph(64, 4);
        let levels = reference_levels(&offsets, &targets);
        assert_eq!(levels[0], 0);
        assert!(levels.iter().filter(|l| **l != UNVISITED).count() > 1);
    }
}
