//! Rodinia `srad`: speckle-reducing anisotropic diffusion. Two kernels per
//! iteration (diffusion-coefficient computation, then the update), as in
//! the original.

use std::sync::Arc;

use cronus_devices::gpu::{GpuError, KernelArg};

use crate::backend::{d2h_f32, h2d_f32, Arg, BackendError, GpuBackend};
use crate::kernels::stencil_desc;
use crate::rodinia::{det_f32s, RodiniaRun};

const LAMBDA: f32 = 0.25;
const ITERS: usize = 6;

/// Initial image (positive intensities).
pub fn initial_image(rows: usize, cols: usize) -> Vec<f32> {
    det_f32s(91, rows * cols)
        .iter()
        .map(|v| 1.0 + (v + 0.5).abs())
        .collect()
}

fn srad_step_cpu(img: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let coef = coefficients(img, rows, cols);
    update(img, &coef, rows, cols)
}

fn coefficients(img: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut coef = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            let idx = r * cols + c;
            let center = img[idx];
            let up = if r > 0 { img[idx - cols] } else { center };
            let down = if r + 1 < rows {
                img[idx + cols]
            } else {
                center
            };
            let left = if c > 0 { img[idx - 1] } else { center };
            let right = if c + 1 < cols { img[idx + 1] } else { center };
            let grad = (up - center).abs()
                + (down - center).abs()
                + (left - center).abs()
                + (right - center).abs();
            let q = grad / center.max(1e-6);
            coef[idx] = 1.0 / (1.0 + q * q);
        }
    }
    coef
}

fn update(img: &[f32], coef: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            let idx = r * cols + c;
            let center = img[idx];
            let up = if r > 0 { img[idx - cols] } else { center };
            let down = if r + 1 < rows {
                img[idx + cols]
            } else {
                center
            };
            let left = if c > 0 { img[idx - 1] } else { center };
            let right = if c + 1 < cols { img[idx + 1] } else { center };
            let div = up + down + left + right - 4.0 * center;
            out[idx] = center + LAMBDA * coef[idx] * div;
        }
    }
    out
}

/// CPU reference image after `iters` iterations.
pub fn reference_final(rows: usize, cols: usize, iters: usize) -> Vec<f32> {
    let mut img = initial_image(rows, cols);
    for _ in 0..iters {
        img = srad_step_cpu(&img, rows, cols);
    }
    img
}

/// `srad_coef(img, coef, rows, cols)` kernel.
pub fn coef_kernel() -> cronus_devices::gpu::KernelFn {
    Arc::new(|mem, args| {
        let (i_b, c_b, rows, cols) = match args {
            [KernelArg::Buffer(i), KernelArg::Buffer(c), KernelArg::Int(r), KernelArg::Int(cl)] => {
                (*i, *c, *r as usize, *cl as usize)
            }
            _ => return Err(GpuError::BadArg("srad_coef(img, coef, rows, cols)".into())),
        };
        let img = mem.read_f32s(i_b)?;
        mem.write_f32s(c_b, &coefficients(&img, rows, cols))
    })
}

/// `srad_update(img, coef, out, rows, cols)` kernel.
pub fn update_kernel() -> cronus_devices::gpu::KernelFn {
    Arc::new(|mem, args| {
        let (i_b, c_b, o_b, rows, cols) = match args {
            [KernelArg::Buffer(i), KernelArg::Buffer(c), KernelArg::Buffer(o), KernelArg::Int(r), KernelArg::Int(cl)] => {
                (*i, *c, *o, *r as usize, *cl as usize)
            }
            _ => {
                return Err(GpuError::BadArg(
                    "srad_update(img, coef, out, rows, cols)".into(),
                ))
            }
        };
        let img = mem.read_f32s(i_b)?;
        let coef = mem.read_f32s(c_b)?;
        mem.write_f32s(o_b, &update(&img, &coef, rows, cols))
    })
}

/// Runs srad at `scale` (image = (16*scale)^2, 6 iterations).
///
/// # Errors
///
/// Backend failures.
pub fn run(backend: &mut dyn GpuBackend, scale: usize) -> Result<RodiniaRun, BackendError> {
    let rows = 16 * scale.max(1);
    let cols = rows;
    let img = initial_image(rows, cols);

    backend.register_kernel("srad_coef", coef_kernel())?;
    backend.register_kernel("srad_update", update_kernel())?;
    let start = backend.elapsed();

    let d_img = backend.alloc((rows * cols * 4) as u64)?;
    let d_coef = backend.alloc((rows * cols * 4) as u64)?;
    let d_out = backend.alloc((rows * cols * 4) as u64)?;
    h2d_f32(backend, d_img, &img)?;

    let (mut cur, mut next) = (d_img, d_out);
    for _ in 0..ITERS {
        backend.launch(
            "srad_coef",
            &[
                Arg::Ptr(cur),
                Arg::Ptr(d_coef),
                Arg::Int(rows as i64),
                Arg::Int(cols as i64),
            ],
            stencil_desc(rows, cols),
        )?;
        backend.launch(
            "srad_update",
            &[
                Arg::Ptr(cur),
                Arg::Ptr(d_coef),
                Arg::Ptr(next),
                Arg::Int(rows as i64),
                Arg::Int(cols as i64),
            ],
            stencil_desc(rows, cols),
        )?;
        std::mem::swap(&mut cur, &mut next);
    }
    backend.sync()?;
    let out = d2h_f32(backend, cur, rows * cols)?;
    for ptr in [d_img, d_coef, d_out] {
        backend.free(ptr)?;
    }
    backend.sync()?;

    let checksum = out.iter().map(|v| *v as f64).sum();
    Ok(RodiniaRun {
        name: "srad",
        sim_time: backend.elapsed() - start,
        checksum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::cronus_backend_fixture;

    #[test]
    fn image_matches_cpu_reference() {
        cronus_backend_fixture(|backend| {
            let result = run(backend, 1).unwrap();
            let reference: f64 = reference_final(16, 16, ITERS)
                .iter()
                .map(|v| *v as f64)
                .sum();
            assert!(
                (result.checksum - reference).abs() / reference.abs() < 1e-5,
                "{} vs {}",
                result.checksum,
                reference
            );
        });
    }

    #[test]
    fn diffusion_smooths_the_image() {
        let rows = 12;
        let before = initial_image(rows, rows);
        let after = reference_final(rows, rows, 20);
        let var = |img: &[f32]| {
            let mean: f32 = img.iter().sum::<f32>() / img.len() as f32;
            img.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / img.len() as f32
        };
        assert!(var(&after) < var(&before), "diffusion reduces variance");
    }
}
