//! Rodinia `nn`: k-nearest-neighbors. Distances are computed on the device
//! in one kernel; the top-k selection happens on the host after a copy-back,
//! matching the original's structure.

use std::sync::Arc;

use cronus_devices::gpu::{GpuError, GpuKernelDesc, KernelArg};

use crate::backend::{d2h_f32, h2d_f32, Arg, BackendError, GpuBackend};
use crate::rodinia::{det_f32s, RodiniaRun};

const TOP_K: usize = 5;

/// Deterministic 2-D record set (lat/long pairs, like the original's
/// hurricane data).
pub fn build_records(n: usize) -> Vec<f32> {
    det_f32s(61, n * 2).iter().map(|v| v * 180.0).collect()
}

/// Query point.
pub const QUERY: (f32, f32) = (30.0, -90.0);

/// CPU reference distances.
pub fn reference_distances(records: &[f32]) -> Vec<f32> {
    records
        .chunks_exact(2)
        .map(|p| {
            let dx = p[0] - QUERY.0;
            let dy = p[1] - QUERY.1;
            (dx * dx + dy * dy).sqrt()
        })
        .collect()
}

/// Smallest `k` distances, sorted.
pub fn top_k(distances: &[f32], k: usize) -> Vec<f32> {
    let mut d = distances.to_vec();
    d.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
    d.truncate(k);
    d
}

/// `nn_distance(records, out, n, qx, qy)` device kernel.
pub fn distance_kernel() -> cronus_devices::gpu::KernelFn {
    Arc::new(|mem, args| {
        let (r_b, o_b, n, qx, qy) = match args {
            [KernelArg::Buffer(r), KernelArg::Buffer(o), KernelArg::Int(n), KernelArg::Float(qx), KernelArg::Float(qy)] => {
                (*r, *o, *n as usize, *qx, *qy)
            }
            _ => return Err(GpuError::BadArg("nn_distance(r, o, n, qx, qy)".into())),
        };
        let records = mem.read_f32s(r_b)?;
        let mut out = vec![0.0f32; n];
        for i in 0..n {
            let dx = records[i * 2] - qx;
            let dy = records[i * 2 + 1] - qy;
            out[i] = (dx * dx + dy * dy).sqrt();
        }
        mem.write_f32s(o_b, &out)
    })
}

/// Runs nn at `scale` (records = 512 * scale).
///
/// # Errors
///
/// Backend failures.
pub fn run(backend: &mut dyn GpuBackend, scale: usize) -> Result<RodiniaRun, BackendError> {
    let n = 512 * scale.max(1);
    let records = build_records(n);

    backend.register_kernel("nn_distance", distance_kernel())?;
    let start = backend.elapsed();

    let d_r = backend.alloc((n * 2 * 4) as u64)?;
    let d_o = backend.alloc((n * 4) as u64)?;
    h2d_f32(backend, d_r, &records)?;
    backend.launch(
        "nn_distance",
        &[
            Arg::Ptr(d_r),
            Arg::Ptr(d_o),
            Arg::Int(n as i64),
            Arg::Float(QUERY.0),
            Arg::Float(QUERY.1),
        ],
        GpuKernelDesc {
            flops: 6.0 * n as f64,
            mem_bytes: 12.0 * n as f64,
            sm_demand: ((n / 1024) as u32).clamp(1, 46),
        },
    )?;
    let distances = d2h_f32(backend, d_o, n)?;
    backend.free(d_r)?;
    backend.free(d_o)?;
    backend.sync()?;

    let nearest = top_k(&distances, TOP_K);
    let checksum = nearest.iter().map(|v| *v as f64).sum();
    Ok(RodiniaRun {
        name: "nn",
        sim_time: backend.elapsed() - start,
        checksum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::cronus_backend_fixture;

    #[test]
    fn nearest_neighbors_match_cpu_reference() {
        cronus_backend_fixture(|backend| {
            let result = run(backend, 1).unwrap();
            let reference: f64 = top_k(&reference_distances(&build_records(512)), TOP_K)
                .iter()
                .map(|v| *v as f64)
                .sum();
            assert!((result.checksum - reference).abs() < 1e-3);
        });
    }

    #[test]
    fn top_k_is_sorted_prefix() {
        let d = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(top_k(&d, 3), vec![1.0, 2.0, 3.0]);
    }
}
