//! Rodinia `lud`: in-place LU decomposition (Doolittle), one kernel per
//! elimination step, verified by reconstructing `L * U ≈ A`.

use std::sync::Arc;

use cronus_devices::gpu::{GpuError, GpuKernelDesc, KernelArg};

use crate::backend::{d2h_f32, h2d_f32, Arg, BackendError, GpuBackend};
use crate::rodinia::{det_f32s, RodiniaRun};

/// Builds a diagonally dominant matrix so no pivoting is needed.
pub fn build_matrix(n: usize) -> Vec<f32> {
    let mut a = det_f32s(51, n * n);
    for i in 0..n {
        a[i * n + i] += n as f32 + 1.0;
    }
    a
}

/// CPU reference decomposition (combined LU in one matrix).
pub fn reference_lu(n: usize) -> Vec<f32> {
    let mut a = build_matrix(n);
    for k in 0..n {
        for i in k + 1..n {
            a[i * n + k] /= a[k * n + k];
            for j in k + 1..n {
                a[i * n + j] -= a[i * n + k] * a[k * n + j];
            }
        }
    }
    a
}

/// Reconstructs `L * U` from a packed LU matrix.
pub fn reconstruct(lu: &[f32], n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut sum = 0.0f32;
            let kmax = i.min(j);
            for k in 0..=kmax {
                let l = if k == i {
                    1.0
                } else if k < i {
                    lu[i * n + k]
                } else {
                    0.0
                };
                let u = if k <= j { lu[k * n + j] } else { 0.0 };
                sum += l * u;
            }
            out[i * n + j] = sum;
        }
    }
    out
}

/// `lud_step(a, n, k)`: one elimination step.
pub fn lud_step_kernel() -> cronus_devices::gpu::KernelFn {
    Arc::new(|mem, args| {
        let (a_b, n, k) = match args {
            [KernelArg::Buffer(a), KernelArg::Int(n), KernelArg::Int(k)] => {
                (*a, *n as usize, *k as usize)
            }
            _ => return Err(GpuError::BadArg("lud_step(a, n, k)".into())),
        };
        let mut a = mem.read_f32s(a_b)?;
        for i in k + 1..n {
            a[i * n + k] /= a[k * n + k];
            for j in k + 1..n {
                a[i * n + j] -= a[i * n + k] * a[k * n + j];
            }
        }
        mem.write_f32s(a_b, &a)
    })
}

/// Runs LUD at `scale` (n = 16 * scale).
///
/// # Errors
///
/// Backend failures.
pub fn run(backend: &mut dyn GpuBackend, scale: usize) -> Result<RodiniaRun, BackendError> {
    let n = 16 * scale.max(1);
    let a = build_matrix(n);

    backend.register_kernel("lud_step", lud_step_kernel())?;
    let start = backend.elapsed();

    let d_a = backend.alloc((n * n * 4) as u64)?;
    h2d_f32(backend, d_a, &a)?;
    for k in 0..n {
        let rem = n - k;
        backend.launch(
            "lud_step",
            &[Arg::Ptr(d_a), Arg::Int(n as i64), Arg::Int(k as i64)],
            GpuKernelDesc {
                flops: 2.0 * (rem * rem) as f64,
                mem_bytes: 8.0 * (rem * rem) as f64,
                sm_demand: ((rem * rem / 1024) as u32).clamp(1, 46),
            },
        )?;
    }
    backend.sync()?;
    let lu = d2h_f32(backend, d_a, n * n)?;
    backend.free(d_a)?;
    backend.sync()?;

    let checksum = lu.iter().map(|v| *v as f64).sum();
    Ok(RodiniaRun {
        name: "lud",
        sim_time: backend.elapsed() - start,
        checksum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::cronus_backend_fixture;

    #[test]
    fn decomposition_matches_cpu_reference() {
        cronus_backend_fixture(|backend| {
            let result = run(backend, 1).unwrap();
            let reference: f64 = reference_lu(16).iter().map(|v| *v as f64).sum();
            assert!(
                (result.checksum - reference).abs() < 1e-2,
                "{} vs {}",
                result.checksum,
                reference
            );
        });
    }

    #[test]
    fn lu_reconstructs_original() {
        let n = 8;
        let a = build_matrix(n);
        let lu = reference_lu(n);
        let back = reconstruct(&lu, n);
        for i in 0..n * n {
            assert!(
                (a[i] - back[i]).abs() < 1e-3,
                "element {i}: {} vs {}",
                a[i],
                back[i]
            );
        }
    }
}
