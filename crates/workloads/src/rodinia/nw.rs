//! Rodinia `nw`: Needleman–Wunsch sequence alignment.
//!
//! The DP matrix fills along anti-diagonals, one kernel launch per wave —
//! the most launch-intensive workload in the suite (2n-1 launches for an
//! n x n matrix), which is why lock-step RPC systems suffer on it (Fig. 7).

use std::sync::Arc;

use cronus_devices::gpu::{GpuError, GpuKernelDesc, KernelArg};

use crate::backend::{h2d_f32, Arg, BackendError, GpuBackend};
use crate::rodinia::{det_u32s, RodiniaRun};

const GAP: f32 = -1.0;

/// Deterministic sequences over a 4-letter alphabet.
pub fn build_sequences(n: usize) -> (Vec<u32>, Vec<u32>) {
    (det_u32s(71, n, 4), det_u32s(72, n, 4))
}

fn score(a: u32, b: u32) -> f32 {
    if a == b {
        1.0
    } else {
        -1.0
    }
}

/// CPU reference alignment score (bottom-right DP cell).
pub fn reference_score(n: usize) -> f32 {
    let (s1, s2) = build_sequences(n);
    let w = n + 1;
    let mut dp = vec![0.0f32; w * w];
    for i in 0..w {
        dp[i * w] = i as f32 * GAP;
        dp[i] = i as f32 * GAP;
    }
    for i in 1..w {
        for j in 1..w {
            let diag = dp[(i - 1) * w + (j - 1)] + score(s1[i - 1], s2[j - 1]);
            let up = dp[(i - 1) * w + j] + GAP;
            let left = dp[i * w + (j - 1)] + GAP;
            dp[i * w + j] = diag.max(up).max(left);
        }
    }
    dp[w * w - 1]
}

/// `nw_wave(dp, s1, s2, n, wave)`: fills anti-diagonal `wave`.
pub fn wave_kernel() -> cronus_devices::gpu::KernelFn {
    Arc::new(|mem, args| {
        let (dp_b, s1_b, s2_b, n, wave) = match args {
            [KernelArg::Buffer(dp), KernelArg::Buffer(s1), KernelArg::Buffer(s2), KernelArg::Int(n), KernelArg::Int(w)] => {
                (*dp, *s1, *s2, *n as usize, *w as usize)
            }
            _ => return Err(GpuError::BadArg("nw_wave(dp, s1, s2, n, wave)".into())),
        };
        let w = n + 1;
        let mut dp = mem.read_f32s(dp_b)?;
        // Sequences are u32s packed in f32 buffers' bytes.
        let mut s1_bytes = vec![0u8; n * 4];
        mem.read_bytes(s1_b, 0, &mut s1_bytes)?;
        let mut s2_bytes = vec![0u8; n * 4];
        mem.read_bytes(s2_b, 0, &mut s2_bytes)?;
        let s1: Vec<u32> = s1_bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        let s2: Vec<u32> = s2_bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        // Cells (i, j) with i + j == wave + 1, 1 <= i, j <= n.
        for i in 1..=n {
            let j = (wave + 2).checked_sub(i);
            let Some(j) = j else { continue };
            if j < 1 || j > n {
                continue;
            }
            let diag = dp[(i - 1) * w + (j - 1)] + score(s1[i - 1], s2[j - 1]);
            let up = dp[(i - 1) * w + j] + GAP;
            let left = dp[i * w + (j - 1)] + GAP;
            dp[i * w + j] = diag.max(up).max(left);
        }
        mem.write_f32s(dp_b, &dp)
    })
}

/// Runs nw at `scale` (sequence length = 32 * scale).
///
/// # Errors
///
/// Backend failures.
pub fn run(backend: &mut dyn GpuBackend, scale: usize) -> Result<RodiniaRun, BackendError> {
    let n = 32 * scale.max(1);
    let (s1, s2) = build_sequences(n);
    let w = n + 1;

    backend.register_kernel("nw_wave", wave_kernel())?;
    let start = backend.elapsed();

    let d_dp = backend.alloc((w * w * 4) as u64)?;
    let d_s1 = backend.alloc((n * 4) as u64)?;
    let d_s2 = backend.alloc((n * 4) as u64)?;
    let mut dp0 = vec![0.0f32; w * w];
    for i in 0..w {
        dp0[i * w] = i as f32 * GAP;
        dp0[i] = i as f32 * GAP;
    }
    h2d_f32(backend, d_dp, &dp0)?;
    backend.h2d(d_s1, &crate::rodinia::u32s_to_bytes(&s1))?;
    backend.h2d(d_s2, &crate::rodinia::u32s_to_bytes(&s2))?;

    // One launch per anti-diagonal: 2n - 1 launches.
    for wave in 0..(2 * n - 1) {
        let cells = (wave + 1).min(n).min(2 * n - 1 - wave);
        backend.launch(
            "nw_wave",
            &[
                Arg::Ptr(d_dp),
                Arg::Ptr(d_s1),
                Arg::Ptr(d_s2),
                Arg::Int(n as i64),
                Arg::Int(wave as i64),
            ],
            GpuKernelDesc {
                flops: 10.0 * cells as f64,
                mem_bytes: 24.0 * cells as f64,
                sm_demand: ((cells / 64) as u32).clamp(1, 46),
            },
        )?;
    }
    backend.sync()?;
    let dp = crate::backend::d2h_f32(backend, d_dp, w * w)?;
    for ptr in [d_dp, d_s1, d_s2] {
        backend.free(ptr)?;
    }
    backend.sync()?;

    Ok(RodiniaRun {
        name: "nw",
        sim_time: backend.elapsed() - start,
        checksum: dp[w * w - 1] as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::cronus_backend_fixture;

    #[test]
    fn alignment_matches_cpu_reference() {
        cronus_backend_fixture(|backend| {
            let result = run(backend, 1).unwrap();
            assert_eq!(result.checksum, reference_score(32) as f64);
        });
    }

    #[test]
    fn identical_sequences_align_perfectly() {
        // A sanity check of the scoring scheme itself.
        let n = 8;
        let w = n + 1;
        let s: Vec<u32> = (0..n as u32).map(|i| i % 4).collect();
        let mut dp = vec![0.0f32; w * w];
        for i in 0..w {
            dp[i * w] = i as f32 * GAP;
            dp[i] = i as f32 * GAP;
        }
        for i in 1..=n {
            for j in 1..=n {
                let diag = dp[(i - 1) * w + (j - 1)] + score(s[i - 1], s[j - 1]);
                let up = dp[(i - 1) * w + j] + GAP;
                let left = dp[i * w + (j - 1)] + GAP;
                dp[i * w + j] = diag.max(up).max(left);
            }
        }
        assert_eq!(dp[w * w - 1], n as f32);
    }
}
