//! Rodinia `gaussian`: Gaussian elimination.
//!
//! The original launches two kernels per column (`Fan1` computes the
//! multiplier column, `Fan2` updates the trailing submatrix); we preserve
//! that two-launches-per-step pattern, then back-substitute on the host.

use std::sync::Arc;

use cronus_devices::gpu::{GpuError, GpuKernelDesc, KernelArg};

use crate::backend::{d2h_f32, h2d_f32, Arg, BackendError, GpuBackend};
use crate::rodinia::{det_f32s, RodiniaRun};

/// Builds a well-conditioned `n x n` system `(A, b)`.
pub fn build_system(n: usize) -> (Vec<f32>, Vec<f32>) {
    let mut a = det_f32s(21, n * n);
    // Diagonal dominance for numeric stability.
    for i in 0..n {
        a[i * n + i] += n as f32;
    }
    let b = det_f32s(22, n);
    (a, b)
}

/// CPU reference solution via the same elimination.
pub fn reference_solve(n: usize) -> Vec<f32> {
    let (mut a, mut b) = build_system(n);
    for k in 0..n - 1 {
        for i in k + 1..n {
            let m = a[i * n + k] / a[k * n + k];
            for j in k..n {
                a[i * n + j] -= m * a[k * n + j];
            }
            b[i] -= m * b[k];
        }
    }
    back_substitute(&a, &b, n)
}

fn back_substitute(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    let mut x = vec![0.0f32; n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for j in i + 1..n {
            sum -= a[i * n + j] * x[j];
        }
        x[i] = sum / a[i * n + i];
    }
    x
}

/// `fan1(a, m, n, k)`: multipliers `m[i] = a[i][k] / a[k][k]` for `i > k`.
pub fn fan1_kernel() -> cronus_devices::gpu::KernelFn {
    Arc::new(|mem, args| {
        let (a_b, m_b, n, k) = match args {
            [KernelArg::Buffer(a), KernelArg::Buffer(m), KernelArg::Int(n), KernelArg::Int(k)] => {
                (*a, *m, *n as usize, *k as usize)
            }
            _ => return Err(GpuError::BadArg("fan1(a, m, n, k)".into())),
        };
        let a = mem.read_f32s(a_b)?;
        let mut mul = mem.read_f32s(m_b)?;
        for i in k + 1..n {
            mul[i] = a[i * n + k] / a[k * n + k];
        }
        mem.write_f32s(m_b, &mul)
    })
}

/// `fan2(a, b, m, n, k)`: trailing update of `A` and `b`.
pub fn fan2_kernel() -> cronus_devices::gpu::KernelFn {
    Arc::new(|mem, args| {
        let (a_b, b_b, m_b, n, k) = match args {
            [KernelArg::Buffer(a), KernelArg::Buffer(b), KernelArg::Buffer(m), KernelArg::Int(n), KernelArg::Int(k)] => {
                (*a, *b, *m, *n as usize, *k as usize)
            }
            _ => return Err(GpuError::BadArg("fan2(a, b, m, n, k)".into())),
        };
        let mut a = mem.read_f32s(a_b)?;
        let mut b = mem.read_f32s(b_b)?;
        let mul = mem.read_f32s(m_b)?;
        for i in k + 1..n {
            for j in k..n {
                a[i * n + j] -= mul[i] * a[k * n + j];
            }
            b[i] -= mul[i] * b[k];
        }
        mem.write_f32s(a_b, &a)?;
        mem.write_f32s(b_b, &b)
    })
}

/// Runs elimination at `scale` (n = 16 * scale).
///
/// # Errors
///
/// Backend failures.
pub fn run(backend: &mut dyn GpuBackend, scale: usize) -> Result<RodiniaRun, BackendError> {
    let n = 16 * scale.max(1);
    let (a, b) = build_system(n);

    backend.register_kernel("fan1", fan1_kernel())?;
    backend.register_kernel("fan2", fan2_kernel())?;
    let start = backend.elapsed();

    let d_a = backend.alloc((n * n * 4) as u64)?;
    let d_b = backend.alloc((n * 4) as u64)?;
    let d_m = backend.alloc((n * 4) as u64)?;
    h2d_f32(backend, d_a, &a)?;
    h2d_f32(backend, d_b, &b)?;
    h2d_f32(backend, d_m, &vec![0.0; n])?;

    for k in 0..n - 1 {
        let remaining = n - k;
        backend.launch(
            "fan1",
            &[
                Arg::Ptr(d_a),
                Arg::Ptr(d_m),
                Arg::Int(n as i64),
                Arg::Int(k as i64),
            ],
            GpuKernelDesc {
                flops: remaining as f64,
                mem_bytes: 8.0 * remaining as f64,
                sm_demand: 1,
            },
        )?;
        backend.launch(
            "fan2",
            &[
                Arg::Ptr(d_a),
                Arg::Ptr(d_b),
                Arg::Ptr(d_m),
                Arg::Int(n as i64),
                Arg::Int(k as i64),
            ],
            GpuKernelDesc {
                flops: 2.0 * (remaining * remaining) as f64,
                mem_bytes: 12.0 * (remaining * remaining) as f64,
                sm_demand: ((remaining * remaining / 1024) as u32).clamp(1, 46),
            },
        )?;
    }
    backend.sync()?;

    let a_out = d2h_f32(backend, d_a, n * n)?;
    let b_out = d2h_f32(backend, d_b, n)?;
    for ptr in [d_a, d_b, d_m] {
        backend.free(ptr)?;
    }
    backend.sync()?;

    let x = back_substitute(&a_out, &b_out, n);
    let checksum = x.iter().map(|v| *v as f64).sum();
    Ok(RodiniaRun {
        name: "gaussian",
        sim_time: backend.elapsed() - start,
        checksum,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::cronus_backend_fixture;

    #[test]
    fn solution_matches_cpu_reference() {
        cronus_backend_fixture(|backend| {
            let result = run(backend, 1).unwrap();
            let reference: f64 = reference_solve(16).iter().map(|v| *v as f64).sum();
            assert!(
                (result.checksum - reference).abs() < 1e-3,
                "{} vs {}",
                result.checksum,
                reference
            );
        });
    }

    #[test]
    fn reference_solution_satisfies_system() {
        let n = 8;
        let (a, b) = build_system(n);
        let x = reference_solve(n);
        for i in 0..n {
            let mut lhs = 0.0f32;
            for j in 0..n {
                lhs += a[i * n + j] * x[j];
            }
            assert!((lhs - b[i]).abs() < 1e-3, "row {i}: {lhs} vs {}", b[i]);
        }
    }
}
