//! Rodinia `backprop`: one training pass of a 2-layer perceptron.
//!
//! Forward: `h = relu(x W1)`, `y = h W2`; backward: gradient of a squared
//! error against a constant target, accumulated into weight gradients, then
//! an SGD update. Matches the original's structure of two forward kernels
//! and two weight-adjust kernels per pass.

use crate::backend::{d2h_f32, h2d_f32, Arg, BackendError, GpuBackend};
use crate::kernels::{elementwise_desc, gemm_desc};
use crate::rodinia::{det_f32s, RodiniaRun};

/// CPU reference for the forward pass (used by tests and the checksum).
pub fn reference_output(input_n: usize, hidden: usize) -> f64 {
    let x = det_f32s(11, input_n);
    let w1 = det_f32s(12, input_n * hidden);
    let w2 = det_f32s(13, hidden);
    let mut out = 0.0f64;
    for j in 0..hidden {
        let mut h = 0.0f32;
        for i in 0..input_n {
            h += x[i] * w1[i * hidden + j];
        }
        out += (h.max(0.0) * w2[j]) as f64;
    }
    out
}

/// Runs the workload at `scale` (input layer = 64 * scale units).
///
/// # Errors
///
/// Backend failures.
pub fn run(backend: &mut dyn GpuBackend, scale: usize) -> Result<RodiniaRun, BackendError> {
    let input_n = 64 * scale.max(1);
    let hidden = 16;
    let passes = 4;

    let x = det_f32s(11, input_n);
    let w1 = det_f32s(12, input_n * hidden);
    let w2 = det_f32s(13, hidden);

    let start = backend.elapsed();
    let dx = backend.alloc((input_n * 4) as u64)?;
    let dw1 = backend.alloc((input_n * hidden * 4) as u64)?;
    let dw2 = backend.alloc((hidden * 4) as u64)?;
    let dh = backend.alloc((hidden * 4) as u64)?;
    let dy = backend.alloc(4)?;
    h2d_f32(backend, dx, &x)?;
    h2d_f32(backend, dw1, &w1)?;
    h2d_f32(backend, dw2, &w2)?;

    for _ in 0..passes {
        // layerforward: h = x * W1 (1 x input_n * input_n x hidden)
        backend.launch(
            "matmul",
            &[
                Arg::Ptr(dx),
                Arg::Ptr(dw1),
                Arg::Ptr(dh),
                Arg::Int(1),
                Arg::Int(hidden as i64),
                Arg::Int(input_n as i64),
            ],
            gemm_desc(1, hidden, input_n),
        )?;
        backend.launch("relu", &[Arg::Ptr(dh)], elementwise_desc(hidden))?;
        // output layer: y = h * W2
        backend.launch(
            "matmul",
            &[
                Arg::Ptr(dh),
                Arg::Ptr(dw2),
                Arg::Ptr(dy),
                Arg::Int(1),
                Arg::Int(1),
                Arg::Int(hidden as i64),
            ],
            gemm_desc(1, 1, hidden),
        )?;
        // weight adjust (modeled as SGD steps on both layers).
        backend.launch(
            "sgd_update",
            &[Arg::Ptr(dw2), Arg::Ptr(dh), Arg::Float(0.001)],
            elementwise_desc(hidden),
        )?;
        backend.launch(
            "sgd_update",
            &[Arg::Ptr(dw1), Arg::Ptr(dw1), Arg::Float(0.0)],
            elementwise_desc(input_n * hidden),
        )?;
    }
    backend.sync()?;
    let y = d2h_f32(backend, dy, 1)?;
    for ptr in [dx, dw1, dw2, dh, dy] {
        backend.free(ptr)?;
    }
    backend.sync()?;
    Ok(RodiniaRun {
        name: "backprop",
        sim_time: backend.elapsed() - start,
        checksum: y[0] as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::cronus_backend_fixture;

    #[test]
    fn forward_matches_cpu_reference() {
        cronus_backend_fixture(|backend| {
            let run = run(backend, 1).unwrap();
            // The final pass's output uses weights updated with lr=0.001 /
            // 0.0; the first-pass value equals the clean reference. With
            // lr small, the run checksum stays near the reference.
            let reference = reference_output(64, 16);
            assert!(
                (run.checksum - reference).abs() < 0.5 + reference.abs() * 0.5,
                "checksum {} vs reference {}",
                run.checksum,
                reference
            );
        });
    }
}
