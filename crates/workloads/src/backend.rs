//! Backend abstraction: one GPU compute interface, many systems.
//!
//! The paper evaluates identical workloads on native Linux, monolithic
//! TrustZone, HIX-TrustZone and CRONUS. [`GpuBackend`] is the seam that
//! makes that possible here: the Rodinia suite and the DNN trainer issue
//! allocs/copies/launches/syncs against this trait, and each system supplies
//! an implementation with its own protection costs. [`CronusGpuBackend`]
//! is the CRONUS implementation over [`cronus_runtime::CudaContext`];
//! the baselines live in `cronus-baselines`.

use std::fmt;

use cronus_core::CronusSystem;
use cronus_devices::gpu::{GpuKernelDesc, KernelFn};
use cronus_runtime::{CudaContext, CudaError, DevPtr, LaunchArg};
use cronus_sim::SimNs;

/// A kernel launch argument, backend-neutral.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Arg {
    /// Device pointer (backend-scoped handle).
    Ptr(u64),
    /// Integer scalar.
    Int(i64),
    /// Float scalar.
    Float(f32),
}

/// Backend error: a message plus a fatal flag for peer failures.
#[derive(Clone, Debug, PartialEq)]
pub struct BackendError {
    /// Human-readable description.
    pub message: String,
    /// True when the device's partition failed (CRONUS failover signal).
    pub peer_failed: bool,
}

impl BackendError {
    /// Creates a non-fatal error.
    pub fn msg(message: impl Into<String>) -> Self {
        BackendError {
            message: message.into(),
            peer_failed: false,
        }
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for BackendError {}

impl From<CudaError> for BackendError {
    fn from(e: CudaError) -> Self {
        let peer_failed = matches!(
            &e,
            CudaError::Srpc(cronus_core::SrpcError::PeerFailed { .. })
        );
        BackendError {
            message: e.to_string(),
            peer_failed,
        }
    }
}

/// The system-neutral GPU compute interface.
pub trait GpuBackend {
    /// System name (for report rows).
    fn system_name(&self) -> &str;

    /// Installs a kernel implementation.
    ///
    /// # Errors
    ///
    /// Backend-specific failures.
    fn register_kernel(&mut self, name: &str, f: KernelFn) -> Result<(), BackendError>;

    /// Allocates device memory, returning an opaque handle.
    ///
    /// # Errors
    ///
    /// Out-of-memory and transport failures.
    fn alloc(&mut self, len: u64) -> Result<u64, BackendError>;

    /// Frees device memory.
    ///
    /// # Errors
    ///
    /// Unknown-handle and transport failures.
    fn free(&mut self, ptr: u64) -> Result<(), BackendError>;

    /// Copies host bytes to the device.
    ///
    /// # Errors
    ///
    /// Transport failures.
    fn h2d(&mut self, dst: u64, data: &[u8]) -> Result<(), BackendError>;

    /// Copies device bytes back to the host.
    ///
    /// # Errors
    ///
    /// Transport failures.
    fn d2h(&mut self, src: u64, len: u64) -> Result<Vec<u8>, BackendError>;

    /// Launches a kernel asynchronously.
    ///
    /// # Errors
    ///
    /// Transport failures; execution errors surface at the next sync.
    fn launch(
        &mut self,
        kernel: &str,
        args: &[Arg],
        desc: GpuKernelDesc,
    ) -> Result<(), BackendError>;

    /// Waits until all launched work completes.
    ///
    /// # Errors
    ///
    /// Transport failures.
    fn sync(&mut self) -> Result<(), BackendError>;

    /// The driving (CPU-side) virtual clock.
    fn elapsed(&self) -> SimNs;
}

/// Helper: upload a slice of `f32`s.
///
/// # Errors
///
/// Propagates backend errors.
pub fn h2d_f32(backend: &mut dyn GpuBackend, dst: u64, data: &[f32]) -> Result<(), BackendError> {
    let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
    backend.h2d(dst, &bytes)
}

/// Helper: download a slice of `f32`s.
///
/// # Errors
///
/// Propagates backend errors.
pub fn d2h_f32(
    backend: &mut dyn GpuBackend,
    src: u64,
    count: usize,
) -> Result<Vec<f32>, BackendError> {
    let bytes = backend.d2h(src, (count * 4) as u64)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect())
}

/// The CRONUS backend: a CPU mEnclave driving a CUDA mEnclave over sRPC.
pub struct CronusGpuBackend<'a> {
    sys: &'a mut CronusSystem,
    cuda: CudaContext,
}

impl fmt::Debug for CronusGpuBackend<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CronusGpuBackend").finish_non_exhaustive()
    }
}

impl<'a> CronusGpuBackend<'a> {
    /// Wraps an already-created CUDA context.
    pub fn new(sys: &'a mut CronusSystem, cuda: CudaContext) -> Self {
        CronusGpuBackend { sys, cuda }
    }

    /// The underlying CUDA context (e.g. for failure injection by tests).
    pub fn cuda(&self) -> &CudaContext {
        &self.cuda
    }

    /// The underlying system.
    pub fn system_mut(&mut self) -> &mut CronusSystem {
        self.sys
    }
}

impl GpuBackend for CronusGpuBackend<'_> {
    fn system_name(&self) -> &str {
        "cronus"
    }

    fn register_kernel(&mut self, name: &str, f: KernelFn) -> Result<(), BackendError> {
        self.cuda.load_kernel(self.sys, name, f)?;
        Ok(())
    }

    fn alloc(&mut self, len: u64) -> Result<u64, BackendError> {
        Ok(self.cuda.malloc(self.sys, len)?.0)
    }

    fn free(&mut self, ptr: u64) -> Result<(), BackendError> {
        self.cuda.free(self.sys, DevPtr(ptr))?;
        Ok(())
    }

    fn h2d(&mut self, dst: u64, data: &[u8]) -> Result<(), BackendError> {
        self.cuda.memcpy_h2d(self.sys, DevPtr(dst), data)?;
        Ok(())
    }

    fn d2h(&mut self, src: u64, len: u64) -> Result<Vec<u8>, BackendError> {
        Ok(self.cuda.memcpy_d2h(self.sys, DevPtr(src), len)?)
    }

    fn launch(
        &mut self,
        kernel: &str,
        args: &[Arg],
        desc: GpuKernelDesc,
    ) -> Result<(), BackendError> {
        let args: Vec<LaunchArg> = args
            .iter()
            .map(|a| match a {
                Arg::Ptr(p) => LaunchArg::Ptr(DevPtr(*p)),
                Arg::Int(v) => LaunchArg::Int(*v),
                Arg::Float(v) => LaunchArg::Float(*v),
            })
            .collect();
        self.cuda.launch(self.sys, kernel, &args, desc)?;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), BackendError> {
        self.cuda.synchronize(self.sys)?;
        Ok(())
    }

    fn elapsed(&self) -> SimNs {
        self.sys.enclave_time(self.cuda.cpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::cronus_gpu_system;

    #[test]
    fn cronus_backend_round_trip() {
        let (mut sys, cpu) = cronus_gpu_system();
        let cuda = CudaContext::new(&mut sys, cpu, Default::default()).unwrap();
        let mut backend = CronusGpuBackend::new(&mut sys, cuda);
        assert_eq!(backend.system_name(), "cronus");

        let buf = backend.alloc(16).unwrap();
        h2d_f32(&mut backend, buf, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = d2h_f32(&mut backend, buf, 4).unwrap();
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0]);
        backend.free(buf).unwrap();
        backend.sync().unwrap();
        assert!(backend.elapsed() > SimNs::ZERO);
    }
}
