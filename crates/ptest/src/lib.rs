//! A small, dependency-free property-testing harness exposing the subset of
//! the `proptest` API this workspace uses, so property suites compile and run
//! without touching crates.io. Crates import it under the name `proptest`
//! (`proptest = { path = "../ptest", package = "cronus-ptest" }`), so existing
//! `use proptest::prelude::*;` test files work unchanged.
//!
//! Differences from real proptest, by design:
//! - no shrinking: a failing case reports the raw generated inputs;
//! - generation is a fixed deterministic stream per test name (override the
//!   mixing seed with `CRONUS_PTEST_SEED`);
//! - only the strategies used in this repo are provided: integer ranges,
//!   `any::<T>()`, tuples, `Just`, `prop_oneof!`, `prop_map`,
//!   `collection::{vec, btree_set}`, and character-class string patterns like
//!   `"[a-z0-9]{1,16}"`.

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Deterministic generator
// ---------------------------------------------------------------------------

/// xorshift64* generator; deterministic per seed, good enough for test-input
/// generation (not cryptographic).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        // Avoid the all-zero fixed point and decorrelate nearby seeds.
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        if state == 0 {
            state = 0x0DDB_1A5E_5BAD_5EED;
        }
        TestRng { state }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform usize in `[lo, hi)`; `lo < hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below((hi - lo) as u64) as usize
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn seed_for(name: &str) -> u64 {
    let base = fnv1a(name.as_bytes());
    match std::env::var("CRONUS_PTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        Some(extra) => base ^ extra.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        None => base,
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of the wrapped value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.range_usize(0, self.options.len());
        self.options[idx].sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Integer / float ranges and `any`
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a full-domain generator, used by `any::<T>()`.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Arbitrary bit patterns: includes NaNs and infinities, like proptest.
impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u32())
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (0x20u8 + rng.below(0x5F) as u8) as char
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

// ---------------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
    (A, B, C, D, E, F, G, H, I);
    (A, B, C, D, E, F, G, H, I, J);
}

// ---------------------------------------------------------------------------
// String patterns
// ---------------------------------------------------------------------------

/// One `[class]{m,n}` (or literal-char) atom of a string pattern.
struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars = if c == '[' {
            let mut class = Vec::new();
            let mut prev: Option<char> = None;
            loop {
                let c = it
                    .next()
                    .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                match c {
                    ']' => break,
                    '-' if prev.is_some() && it.peek().is_some_and(|&n| n != ']') => {
                        let lo = prev.take().expect("range start");
                        let hi = it.next().expect("range end");
                        for ch in lo..=hi {
                            class.push(ch);
                        }
                    }
                    _ => {
                        if let Some(p) = prev.replace(c) {
                            class.push(p);
                        }
                    }
                }
            }
            if let Some(p) = prev {
                class.push(p);
            }
            assert!(!class.is_empty(), "empty character class in {pattern:?}");
            class
        } else {
            vec![c]
        };
        let (min, max) = if it.peek() == Some(&'{') {
            it.next();
            let mut spec = String::new();
            for c in it.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repeat lower bound"),
                    hi.trim().parse().expect("repeat upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(PatternAtom { chars, min, max });
    }
    atoms
}

/// `&'static str` patterns like `"[a-z0-9]{1,16}"` act as string strategies.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(atom.chars[rng.range_usize(0, atom.chars.len())]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Size specification for collection strategies: a fixed `usize` or a range.
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.range_usize(self.min, self.max_exclusive)
    }
}

pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}

pub struct BTreeSetStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let n = self.size.pick(rng);
        let mut out = BTreeSet::new();
        // Duplicates shrink the set; retry a bounded number of times to hit
        // the requested size.
        let mut attempts = 0usize;
        while out.len() < n && attempts < n * 20 + 20 {
            out.insert(self.elem.sample(rng));
            attempts += 1;
        }
        out
    }
}

pub mod collection {
    use super::{BTreeSetStrategy, SizeRange, Strategy, VecStrategy};

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Give up after this many `prop_assume!` rejections per accepted case.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

#[derive(Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Drives one property: samples `config.cases` accepted inputs from
/// `strategy` and applies `case` to each. Not usually called directly — the
/// `proptest!` macro generates calls to it.
pub fn run_cases<S>(
    config: &ProptestConfig,
    name: &str,
    strategy: &S,
    mut case: impl FnMut(S::Value) -> Result<(), TestCaseError>,
) where
    S: Strategy,
    S::Value: Clone + Debug,
{
    let mut rng = TestRng::from_seed(seed_for(name));
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < config.cases {
        let value = strategy.sample(&mut rng);
        match case(value.clone()) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "property '{name}': too many prop_assume! rejections \
                         ({rejected}) after {accepted} accepted cases"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property '{name}' failed: {msg}\ninput: {value:#?}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategy = ( $($strat,)+ );
            $crate::run_cases(&__config, stringify!($name), &__strategy, |__value| {
                #[allow(unused_mut, unused_parens)]
                let ($($arg,)+) = __value;
                $body
                Ok(())
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return Err($crate::TestCaseError::reject());
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{parse_pattern, TestRng};

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = TestRng::from_seed(7);
        let mut b = TestRng::from_seed(7);
        let mut c = TestRng::from_seed(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let s = Strategy::sample(&(-4i8..=4), &mut rng);
            assert!((-4..=4).contains(&s));
        }
    }

    #[test]
    fn string_pattern_class_and_repeat() {
        let atoms = parse_pattern("[a-z0-9]{1,16}");
        assert_eq!(atoms.len(), 1);
        assert_eq!(atoms[0].chars.len(), 36);
        assert_eq!((atoms[0].min, atoms[0].max), (1, 16));

        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let s = Strategy::sample(&"[ -~]{0,64}", &mut rng);
            assert!(s.len() <= 64);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let v = Strategy::sample(&crate::collection::vec(any::<u8>(), 1..9), &mut rng);
            assert!((1..9).contains(&v.len()));
            let s = Strategy::sample(&crate::collection::btree_set(0u64..4096, 1..8), &mut rng);
            assert!((1..8).contains(&s.len()));
            let exact = Strategy::sample(&crate::collection::vec(-4i8..=4, 64), &mut rng);
            assert_eq!(exact.len(), 64);
        }
    }

    #[test]
    fn oneof_map_and_just_compose() {
        let strat = prop_oneof![
            Just(0u32),
            (1u32..10).prop_map(|v| v * 100),
            any::<bool>().prop_map(|b| if b { 1 } else { 2 }),
        ];
        let mut rng = TestRng::from_seed(4);
        let mut seen_zero = false;
        let mut seen_big = false;
        for _ in 0..300 {
            match Strategy::sample(&strat, &mut rng) {
                0 => seen_zero = true,
                v if v >= 100 => {
                    assert_eq!(v % 100, 0);
                    seen_big = true;
                }
                1 | 2 => {}
                other => panic!("unexpected {other}"),
            }
        }
        assert!(seen_zero && seen_big, "all prop_oneof! arms reachable");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro front-end itself: multiple bindings, assume, asserts.
        #[test]
        fn macro_front_end(a in 0u64..1000, b in 1u64..1000, v in crate::collection::vec(any::<u8>(), 0..16)) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
            prop_assert!(v.len() < 16);
            prop_assert_eq!(a + b, b + a);
        }
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failing_property_panics_with_input() {
        crate::run_cases(
            &ProptestConfig::with_cases(4),
            "always_fails",
            &(0u64..10,),
            |(_v,)| Err(TestCaseError::fail("forced")),
        );
    }
}
