//! Determinism suite: a campaign is a pure function of `(seed, plan)`.
//!
//! The virtual clock, the seeded RNG and the absence of any wall-clock or
//! OS entropy in the pipeline mean two runs of the same plan must produce
//! *byte-identical* rendered reports — including every recovery-time
//! figure, error message and detection label.

use cronus_chaos::{run_campaign, run_scenario, InjectionPlan};

#[test]
fn same_seed_same_plan_renders_byte_identical_reports() {
    let a = run_campaign(&InjectionPlan::smoke(42));
    let b = run_campaign(&InjectionPlan::smoke(42));
    assert_eq!(a.render(), b.render());
    assert_eq!(a, b);
}

#[test]
fn recovery_figures_are_reproducible_scenario_by_scenario() {
    let plan = InjectionPlan::smoke(7);
    for scn in &plan.scenarios {
        let a = run_scenario(scn, plan.seed);
        let b = run_scenario(scn, plan.seed);
        assert_eq!(a, b, "scenario #{} diverged across runs", scn.id);
        assert_eq!(a.recovery_ns, b.recovery_ns);
    }
}

#[test]
fn smoke_campaign_upholds_all_invariants() {
    let report = run_campaign(&InjectionPlan::smoke(1));
    assert_eq!(report.violations(), 0, "{}", report.render());
    // Every armed fault must actually fire — a campaign that arms faults
    // nothing ever reaches would be vacuous.
    assert_eq!(report.faults_fired(), report.scenarios.len());
}

#[test]
fn full_campaign_upholds_all_invariants_across_seeds() {
    for seed in [0, 1, 0xC401] {
        let plan = InjectionPlan::full(seed);
        // The acceptance floor: ≥6 injection points × ≥3 workloads.
        assert!(plan.len() >= 18);
        let report = run_campaign(&plan);
        assert_eq!(report.violations(), 0, "seed {seed}:\n{}", report.render());
        assert_eq!(report.faults_fired(), report.scenarios.len());
    }
}

#[test]
fn full_campaign_exercises_the_advertised_detection_channels() {
    let report = run_campaign(&InjectionPlan::full(3));
    for channel in ["proceed-trap", "stream-check", "codec", "handler-remote"] {
        assert!(
            report.scenarios.iter().any(|s| s.detection == channel),
            "no scenario was detected via {channel}:\n{}",
            report.render()
        );
    }
    // Deadline enforcement fires somewhere (the delay-completion scenarios
    // time out once before the retry absorbs the stall).
    assert!(report.scenarios.iter().any(|s| s.timeouts > 0));
    // And the proceed-trap scenarios actually recover partitions.
    assert!(report.scenarios.iter().any(|s| s.recovered > 0));
}
