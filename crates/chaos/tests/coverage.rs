//! Fault-coverage regression: every `cronus_sim::Fault` variant is
//! reachable by at least one concrete injection.
//!
//! The `variant_name` match below is deliberately exhaustive *without* a
//! wildcard arm: adding a variant to `crates/sim/src/fault.rs` breaks this
//! test's compilation until an injection raising the new variant is added
//! here, keeping the campaign's reach in lock-step with the fault model.

use std::collections::BTreeSet;

use cronus_chaos::workload::{self, WorkloadKind};
use cronus_chaos::{run_scenario, InjectionPlan};
use cronus_core::SrpcError;
use cronus_sim::machine::AsId;
use cronus_sim::pagetable::Access;
use cronus_sim::{
    Fault, Machine, MachineConfig, PagePerms, PageTable, PhysAddr, SimNs, VirtAddr, World,
};
use cronus_spm::spm::asid_of;

fn variant_name(f: &Fault) -> &'static str {
    match f {
        Fault::Stage1Unmapped { .. } => "stage1-unmapped",
        Fault::Stage1Permission { .. } => "stage1-permission",
        Fault::Stage2Unmapped { .. } => "stage2-unmapped",
        Fault::Stage2Permission { .. } => "stage2-permission",
        Fault::TzascDenied { .. } => "tzasc-denied",
        Fault::SmmuDenied { .. } => "smmu-denied",
        Fault::TzpcDenied { .. } => "tzpc-denied",
        Fault::BusAbort { .. } => "bus-abort",
        Fault::PartitionFailed { .. } => "partition-failed",
    }
}

const ALL_VARIANTS: usize = 9;

#[test]
fn every_fault_variant_is_reachable_by_an_injection() {
    let mut seen: BTreeSet<&'static str> = BTreeSet::new();
    let mut hit = |f: Fault| {
        seen.insert(variant_name(&f));
    };

    // --- stage-1: unmapped VA, then a write through a read-only PTE -------
    let mut pt = PageTable::new();
    let asid = AsId::new(7);
    hit(pt
        .translate(asid, VirtAddr::new(0x4000), Access::Read)
        .unwrap_err());
    pt.map(4, 44, PagePerms::RO);
    hit(pt
        .translate(asid, VirtAddr::new(0x4000), Access::Write)
        .unwrap_err());

    // --- machine-level injections on secure frames ------------------------
    let mut m = Machine::new(MachineConfig::default());
    m.register_partition(asid);
    let frame = m.alloc_frame(World::Secure).expect("frame");
    let (ppn, pa) = (frame.page(), frame.base());
    let mut buf = [0u8; 4];

    // Stage-2: invalidated entry, then a write through a read-only one.
    m.stage2_grant(asid, ppn, PagePerms::RW).expect("grant");
    m.mem_read(asid, World::Secure, pa, &mut buf).expect("read");
    m.stage2_invalidate(asid, ppn);
    hit(m.mem_read(asid, World::Secure, pa, &mut buf).unwrap_err());
    m.stage2_grant(asid, ppn, PagePerms::RO).expect("re-grant");
    hit(m.mem_write(asid, World::Secure, pa, &[1]).unwrap_err());

    // TZASC: the normal world reaches for a secure frame.
    hit(m.phys_read_vec(World::Normal, pa, 4).unwrap_err());

    // Bus abort: an address far beyond modeled DRAM.
    hit(m
        .phys_read_vec(World::Secure, PhysAddr::from_page_number(1 << 40), 4)
        .unwrap_err());

    // Partition failure: any access from a failed partition traps.
    m.mark_failed(asid);
    hit(m.mem_read(asid, World::Secure, pa, &mut buf).unwrap_err());

    // --- platform-level injections (SMMU, TZPC) ---------------------------
    let mut sys = workload::boot();
    let gpu_asid = asid_of(cronus_mos::manifest::MosId(2));
    let (dma_stream, device) = {
        let mos = sys.spm().mos(gpu_asid).expect("gpu mos");
        (mos.hal().dma_stream(), mos.hal().device_id())
    };
    let machine = sys.spm_mut().machine_mut();
    let staging = machine.alloc_frame(World::Secure).expect("staging");
    // DMA without a grant: the SMMU denies it.
    hit(machine
        .dma_read(dma_stream, World::Secure, staging.base(), &mut buf)
        .unwrap_err());
    // The normal world pokes a secure-assigned device: the TZPC denies it.
    hit(machine.tzpc().check(World::Normal, device).unwrap_err());

    assert_eq!(seen.len(), ALL_VARIANTS, "fault variants reached: {seen:?}");
}

/// The pipeline-level campaign reaches architectural faults through the
/// *normal* sRPC path too: a revoked SMMU mapping surfaces as a remote
/// arch-fault from the handler, and a revoked stage-2 mapping surfaces as
/// a typed mOS fault — no inspection backdoors involved.
#[test]
fn pipeline_injections_reach_smmu_and_stage2_faults() {
    let plan = InjectionPlan::full(5);
    let smmu = plan
        .scenarios
        .iter()
        .find(|s| {
            s.workload == WorkloadKind::GpuSaxpy && s.action == cronus_core::FaultAction::RevokeSmmu
        })
        .expect("revoke-smmu scenario");
    let rep = run_scenario(smmu, plan.seed);
    assert_eq!(rep.detection, "handler-remote", "{}", rep.line());
    assert!(rep.error.contains("smmu"), "{}", rep.line());

    let stage2 = plan
        .scenarios
        .iter()
        .find(|s| {
            s.workload == WorkloadKind::GpuSaxpy
                && s.action == cronus_core::FaultAction::RevokeStage2
        })
        .expect("revoke-stage2 scenario");
    let rep = run_scenario(stage2, plan.seed);
    assert!(rep.error.contains("stage-2"), "{}", rep.line());
    assert!(rep.verdicts.all_hold(), "{}", rep.line());
}

/// Killing a partition mid-kernel must surface as the proceed-trap failure
/// signal (§IV-D), not as a generic mOS error — the regression the typed
/// conversion in `stream_fault` exists to prevent.
#[test]
fn injected_kill_surfaces_as_peer_failed_with_recovery_under_bound() {
    let mut sys = workload::boot();
    let h = workload::build(&mut sys, WorkloadKind::Echo);
    sys.arm_fault(cronus_core::ArmedFault {
        phase: cronus_core::SrpcPhase::Kernel,
        action: cronus_core::FaultAction::KillCallee,
        stream: Some(h.stream),
    });
    let err = sys
        .call(h.stream, "echo")
        .payload(b"CHAOS-SECRET-KEY....................")
        .sync()
        .unwrap_err();
    assert!(
        matches!(err, SrpcError::PeerFailed { .. }),
        "expected PeerFailed, got {err:?}"
    );
    let stats = sys.recover_partition(h.callee.asid).expect("recover");
    let bound = cronus_chaos::recovery_bound(sys.spm().machine().cost());
    assert!(stats.total() <= bound);
    assert!(stats.total() > SimNs::from_nanos(0));
}
