//! The five campaign invariants, checked after every scenario.
//!
//! * **A1 — no leak**: after a partition failure and recovery, none of the
//!   dead stream's share pages still hold a secret byte (failover poisons
//!   them and recovery scrubs them), and the normal world can never read
//!   them (the TZASC filters the access) — failure or not.
//! * **A2 — no stuck caller**: every call returns (a result or a typed
//!   error), the virtual-clock stall watchdog reports nothing, and calls
//!   issued after recovery succeed with correct results.
//! * **A3 — bounded recovery**: the modeled recovery time stays under the
//!   [`recovery_bound`] derived from the machine's cost model.
//! * **A4 — isolation audit**: the full static mapping-state audit
//!   ([`cronus_audit::audit_system`], invariants I1–I5 of `AUDIT.md`)
//!   reports zero violations once service is re-established.
//! * **A5 — verifiable ledger**: the security-event ledger exported at
//!   scenario end passes the full forensics verification —
//!   [`cronus_forensics::verify_export`] (hash chains, MACs, causal
//!   pairing) and [`cronus_forensics::verify_completeness`] against the
//!   flight recorder's counters. Whatever the fault did, the evidence
//!   trail it left behind must still be tamper-evident and complete.

use cronus_sim::{CostModel, Machine, PhysAddr, SimNs, World, PAGE_SIZE};

use crate::workload::SECRET;

/// Per-scenario invariant verdicts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Verdicts {
    /// A1: no secret byte readable from the failed stream's pages, and the
    /// normal world locked out of them.
    pub no_leak: bool,
    /// A2: every call returned, no stalls, post-recovery calls verified,
    /// and every sRPC ring (including a quarantined stream's) drained back
    /// to depth 0.
    pub no_stuck: bool,
    /// A3: recovery completed within the modeled bound.
    pub bounded_recovery: bool,
    /// A4: the static isolation audit (I1–I5) found no violation.
    pub audit: bool,
    /// A5: the security-event ledger verifies (chains, MACs, causal
    /// pairing, completeness against the flight recorder).
    pub ledger: bool,
}

impl Verdicts {
    /// True when all five invariants hold.
    pub fn all_hold(&self) -> bool {
        self.no_leak && self.no_stuck && self.bounded_recovery && self.audit && self.ledger
    }
}

/// The modeled recovery-time budget per scenario: a campaign kills at most
/// one partition, but the bound allows two full clear+restart cycles of
/// slack so legitimate cost-model growth does not flake the campaign.
pub fn recovery_bound(cost: &CostModel) -> SimNs {
    SimNs::from_nanos((cost.partition_clear.as_nanos() + cost.mos_restart.as_nanos()) * 2)
}

/// Scans `pages` through the secure monitor's view for the [`SECRET`]
/// bytes. Returns true if any page still holds them.
pub fn secret_visible(machine: &mut Machine, pages: &[u64]) -> bool {
    pages.iter().any(|ppn| {
        let pa = PhysAddr::from_page_number(*ppn);
        machine
            .phys_read_vec(World::Secure, pa, PAGE_SIZE as usize)
            .map(|bytes| bytes.windows(SECRET.len()).any(|w| w == SECRET))
            .unwrap_or(false)
    })
}

/// Checks that the normal world cannot read any of `pages` (the TZASC
/// must deny every access). Returns true when all accesses are denied.
pub fn normal_world_blocked(machine: &mut Machine, pages: &[u64]) -> bool {
    pages.iter().all(|ppn| {
        let pa = PhysAddr::from_page_number(*ppn);
        machine.phys_read_vec(World::Normal, pa, 16).is_err()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cronus_sim::MachineConfig;

    #[test]
    fn bound_tracks_the_cost_model() {
        let cost = CostModel::default();
        let bound = recovery_bound(&cost);
        assert!(bound >= cost.partition_clear + cost.mos_restart);
    }

    #[test]
    fn secret_scan_finds_planted_bytes_and_clears_after_zeroing() {
        let mut machine = Machine::new(MachineConfig::default());
        let frame = machine.alloc_frame(World::Secure).expect("frame");
        let ppn = frame.page();
        machine
            .phys_write(World::Secure, PhysAddr::from_page_number(ppn), SECRET)
            .expect("write");
        assert!(secret_visible(&mut machine, &[ppn]));
        machine.zero_page(ppn);
        assert!(!secret_visible(&mut machine, &[ppn]));
    }

    #[test]
    fn normal_world_is_blocked_from_secure_pages() {
        let mut machine = Machine::new(MachineConfig::default());
        let frame = machine.alloc_frame(World::Secure).expect("frame");
        assert!(normal_world_blocked(&mut machine, &[frame.page()]));
    }
}
