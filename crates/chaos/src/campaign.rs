//! The campaign runner: one fresh simulated machine per scenario.
//!
//! Each scenario boots the platform, builds its workload, arms exactly one
//! fault, then drives a short burst of synchronous calls under a stream
//! deadline and a bounded retry policy. Whatever the fault does — kill a
//! partition, scribble a slot, revoke a mapping, stall the executor — the
//! *normal* pipeline must surface it as a typed error on a named detection
//! channel (or absorb it via retry), after which the runner recovers any
//! failed partition, re-establishes the stream, and verifies that service
//! is fully restored. [`crate::invariants`] then passes judgement.
//!
//! Everything is driven by the virtual clock and seeded RNG, so
//! [`CampaignReport::render`] is byte-identical across runs of the same
//! `(seed, plan)`.

use cronus_core::reliability::detection_channel;
use cronus_core::{ArmedFault, RetryPolicy, SrpcError};
use cronus_sim::{PagePerms, SimNs, SimRng};

use crate::invariants::{self, Verdicts};
use crate::plan::{InjectionPlan, Scenario};
use crate::workload;

/// Calls driven at the armed fault per scenario.
pub const CALLS_PER_SCENARIO: u32 = 4;

/// Post-recovery calls that must succeed with correct results.
pub const VERIFY_CALLS: u32 = 2;

/// The per-stream deadline: far above healthy call latency (tens of µs),
/// far below the injected 50ms executor stall.
fn call_deadline() -> SimNs {
    SimNs::from_millis(5)
}

/// Executor lag beyond which the stall watchdog flags a stream.
fn stall_bound() -> SimNs {
    SimNs::from_millis(20)
}

/// What one scenario did and how it was judged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioReport {
    /// Scenario position in the plan.
    pub id: u32,
    /// Workload name.
    pub workload: &'static str,
    /// Injection phase name.
    pub phase: &'static str,
    /// Fault action name.
    pub action: &'static str,
    /// Whether the armed fault actually fired.
    pub fired: bool,
    /// Calls attempted at the fault (≤ [`CALLS_PER_SCENARIO`]).
    pub calls_attempted: u32,
    /// Calls that returned a verified-correct result.
    pub calls_ok: u32,
    /// The detection channel that caught the fault (`"none"` if nothing
    /// surfaced, `"absorbed-by-retry"` if a retry hid a transient error).
    pub detection: &'static str,
    /// Rendered first error, `"-"` when none surfaced.
    pub error: String,
    /// `srpc.timeouts` counter at scenario end.
    pub timeouts: u64,
    /// `srpc.retries` counter at scenario end.
    pub retries: u64,
    /// Partitions recovered.
    pub recovered: u32,
    /// Total modeled recovery time (ns) across recovered partitions.
    pub recovery_ns: u64,
    /// Whether post-recovery calls returned correct results.
    pub verified_after: bool,
    /// Stall-watchdog findings at scenario end.
    pub stalls: usize,
    /// High-water sRPC-ring depth across the inject→recover window
    /// (saturation telemetry from the queue observatory).
    pub max_queue_depth: u64,
    /// Whether every sRPC-ring queue (including the quarantined stream's)
    /// drained to depth 0 by scenario end — folded into A2.
    pub queues_drained: bool,
    /// The five invariant verdicts.
    pub verdicts: Verdicts,
}

impl ScenarioReport {
    /// One stable report line.
    pub fn line(&self) -> String {
        let ok = |b: bool| if b { "ok" } else { "VIOLATED" };
        format!(
            "#{:03} wl={} phase={} action={} fired={} calls={}/{} detect={} err={} \
             timeouts={} retries={} recovered={} recovery_ns={} verified={} stalls={} \
             maxq={} drained={} A1={} A2={} A3={} A4={} A5={}",
            self.id,
            self.workload,
            self.phase,
            self.action,
            if self.fired { "yes" } else { "no" },
            self.calls_ok,
            self.calls_attempted,
            self.detection,
            self.error,
            self.timeouts,
            self.retries,
            self.recovered,
            self.recovery_ns,
            if self.verified_after { "yes" } else { "no" },
            self.stalls,
            self.max_queue_depth,
            if self.queues_drained { "yes" } else { "no" },
            ok(self.verdicts.no_leak),
            ok(self.verdicts.no_stuck),
            ok(self.verdicts.bounded_recovery),
            ok(self.verdicts.audit),
            ok(self.verdicts.ledger),
        )
    }
}

/// A full campaign run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignReport {
    /// The plan seed.
    pub seed: u64,
    /// Per-scenario reports, in plan order.
    pub scenarios: Vec<ScenarioReport>,
}

impl CampaignReport {
    /// Scenarios where at least one invariant was violated.
    pub fn violations(&self) -> usize {
        self.scenarios
            .iter()
            .filter(|s| !s.verdicts.all_hold())
            .count()
    }

    /// Scenarios whose armed fault fired.
    pub fn faults_fired(&self) -> usize {
        self.scenarios.iter().filter(|s| s.fired).count()
    }

    /// The worst modeled recovery time across the campaign (ns).
    pub fn max_recovery_ns(&self) -> u64 {
        self.scenarios
            .iter()
            .map(|s| s.recovery_ns)
            .max()
            .unwrap_or(0)
    }

    /// The deepest sRPC-ring backlog any scenario reached.
    pub fn max_queue_depth(&self) -> u64 {
        self.scenarios
            .iter()
            .map(|s| s.max_queue_depth)
            .max()
            .unwrap_or(0)
    }

    /// Scenarios that left an undrained sRPC ring behind.
    pub fn undrained(&self) -> usize {
        self.scenarios.iter().filter(|s| !s.queues_drained).count()
    }

    /// Renders the whole campaign as stable text; byte-identical across
    /// runs of the same `(seed, plan)`.
    pub fn render(&self) -> String {
        let mut out = format!(
            "chaos campaign seed={} scenarios={}\n",
            self.seed,
            self.scenarios.len()
        );
        for s in &self.scenarios {
            out.push_str(&s.line());
            out.push('\n');
        }
        out.push_str(&format!(
            "summary: faults_fired={} violations={} max_recovery_ns={} \
             max_queue_depth={} undrained={}\n",
            self.faults_fired(),
            self.violations(),
            self.max_recovery_ns(),
            self.max_queue_depth(),
            self.undrained()
        ));
        out
    }
}

/// Runs every scenario in the plan.
pub fn run_campaign(plan: &InjectionPlan) -> CampaignReport {
    CampaignReport {
        seed: plan.seed,
        scenarios: plan
            .scenarios
            .iter()
            .map(|s| run_scenario(s, plan.seed))
            .collect(),
    }
}

/// Runs one scenario on a freshly booted machine.
pub fn run_scenario(scn: &Scenario, seed: u64) -> ScenarioReport {
    let mut rng = SimRng::new(seed).fork(scn.id as u64);
    let mut sys = workload::boot();
    let mut h = workload::build(&mut sys, scn.workload);
    sys.set_stream_deadline(h.stream, Some(call_deadline()))
        .expect("deadline");
    let pages_at_arm = sys.stream_share_pages(h.stream).expect("share pages");
    sys.arm_fault(ArmedFault {
        phase: scn.phase,
        action: scn.action,
        stream: Some(h.stream),
    });

    // ---- drive calls into the armed fault --------------------------------
    let mecall = scn.workload.mecall();
    let mut calls_attempted = 0;
    let mut calls_ok = 0;
    let mut first_err: Option<SrpcError> = None;
    for _ in 0..CALLS_PER_SCENARIO {
        let payload = workload::request(scn.workload, &mut rng);
        calls_attempted += 1;
        match sys
            .call(h.stream, mecall)
            .payload(&payload)
            .retry(RetryPolicy::attempts(2))
            .sync()
        {
            Ok(out) => {
                if out == workload::expected(scn.workload, &payload) {
                    calls_ok += 1;
                }
                // Hit an explicit synchronization point so the streamCheck
                // runs before the next enqueue can rewrite the header words
                // (it would otherwise mask a corrupt-ring-header injection).
                if let Err(e) = sys.sync(h.stream) {
                    first_err = Some(e);
                    break;
                }
            }
            Err(e) => {
                first_err = Some(e);
                break;
            }
        }
    }

    // ---- recover failed partitions ---------------------------------------
    let caller_died = sys.spm().machine().is_failed(h.caller.asid);
    let callee_died = sys.spm().machine().is_failed(h.callee.asid);
    let mut recovered = 0;
    let mut recovery_ns = 0u64;
    for asid in [h.caller.asid, h.callee.asid] {
        if sys.spm().machine().is_failed(asid) {
            let stats = sys.recover_partition(asid).expect("recovery");
            recovery_ns += stats.total().as_nanos();
            recovered += 1;
        }
    }

    // ---- invariant A1 scan: post-recovery, before any page reuse ---------
    let machine = sys.spm_mut().machine_mut();
    let leak = (caller_died || callee_died) && invariants::secret_visible(machine, &pages_at_arm);
    let tzasc_holds = invariants::normal_world_blocked(machine, &pages_at_arm);

    // ---- re-establish service --------------------------------------------
    if let Some(d) = h.dma {
        // Re-grant the staging page: RevokeSmmu invalidated it, and a
        // partition clear may have torn it down. Granting is idempotent.
        sys.spm_mut()
            .machine_mut()
            .smmu_mut()
            .grant(d.stream, d.ppn, PagePerms::RW);
    }
    if caller_died {
        // The survivor was the device side; the application itself must
        // rebuild from scratch against the recovered partition.
        h = workload::build(&mut sys, scn.workload);
        sys.set_stream_deadline(h.stream, Some(call_deadline()))
            .expect("deadline");
    } else if first_err.is_some() {
        // The caller survived: spawn a fresh callee if its partition died
        // (the old enclave went down with it), then re-open the stream.
        if callee_died {
            h.callee = workload::spawn_callee(&mut sys, scn.workload, h.caller, h.dma);
        }
        h.stream = sys
            .stream(h.caller, h.callee)
            .reopen(h.stream)
            .expect("reopen");
    }

    // ---- verify restored service -----------------------------------------
    let mut verified_after = true;
    for _ in 0..VERIFY_CALLS {
        let payload = workload::request(scn.workload, &mut rng);
        match sys.call(h.stream, mecall).payload(&payload).sync() {
            Ok(out) => verified_after &= out == workload::expected(scn.workload, &payload),
            Err(_) => verified_after = false,
        }
    }
    let stalls = sys.check_stalls(stall_bound()).len();

    // ---- verdicts ---------------------------------------------------------
    let rec = sys.recorder();
    // Saturation telemetry: how deep the rings backed up across the
    // inject→recover window, and whether recovery (flush-on-quarantine plus
    // the verification syncs) drained every ring back to depth 0. An
    // undrained ring after a "successful" recovery is exactly the stuck-
    // stream shape A2 exists to catch.
    let max_queue_depth = rec.queue_high_water_depth("srpc.ring");
    let queues_drained = rec.queue_current_depth("srpc.ring") == 0;
    let (timeouts, retries) = rec.with(|r| {
        (
            r.metrics.counter_total("srpc.timeouts"),
            r.metrics.counter_total("srpc.retries"),
        )
    });
    let detection = match &first_err {
        Some(e) => detection_channel(e),
        None if retries > 0 => "absorbed-by-retry",
        None => "none",
    };
    let bound = invariants::recovery_bound(sys.spm().machine().cost());
    // A4: the full static mapping-state audit, post-re-establishment.
    let audit = cronus_audit::audit_system(&sys);
    // A5: the security-event ledger the scenario left behind must verify —
    // intact hash chains and MACs, causally paired grants/opens, and record
    // counts agreeing with the flight recorder.
    let export = sys.spm().ledger().export();
    let ledger = cronus_forensics::verify_export(&export).is_ok()
        && cronus_forensics::verify_completeness(&export, |name| rec.counter_total(name)).is_ok();
    let verdicts = Verdicts {
        no_leak: !leak && tzasc_holds,
        no_stuck: verified_after && stalls == 0 && queues_drained,
        bounded_recovery: recovered == 0 || SimNs::from_nanos(recovery_ns) <= bound,
        audit: audit.passed(),
        ledger,
    };

    ScenarioReport {
        id: scn.id,
        workload: scn.workload.name(),
        phase: scn.phase.name(),
        action: scn.action.name(),
        fired: !sys.fired_faults().is_empty(),
        calls_attempted,
        calls_ok,
        detection,
        error: first_err.map_or_else(|| "-".to_string(), |e| e.to_string()),
        timeouts,
        retries,
        recovered,
        recovery_ns,
        verified_after,
        stalls,
        max_queue_depth,
        queues_drained,
        verdicts,
    }
}
