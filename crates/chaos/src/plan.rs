//! Campaign plans: the enumerable cross product of injection points,
//! fault actions and workloads.
//!
//! A plan is constructed from a seed alone, so two plans built from the
//! same seed are identical — including the noise seeds embedded in the
//! corruption actions, which are drawn from a [`SimRng`] in construction
//! order.

use cronus_core::{FaultAction, SrpcPhase};
use cronus_sim::{SimNs, SimRng};

use crate::workload::WorkloadKind;

/// One campaign scenario: a single armed fault against a single workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Position in the plan (stable across runs of the same plan).
    pub id: u32,
    /// The workload under attack.
    pub workload: WorkloadKind,
    /// The pipeline phase the fault strikes at.
    pub phase: SrpcPhase,
    /// What the fault does to the machine.
    pub action: FaultAction,
}

/// A deterministic, enumerable set of scenarios.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InjectionPlan {
    /// The seed the plan (and every run of it) derives from.
    pub seed: u64,
    /// The scenarios, in execution order.
    pub scenarios: Vec<Scenario>,
}

/// The fault actions exercised at each phase. The set is chosen so every
/// detection channel fires somewhere in the full sweep: proceed-traps
/// (kills), streamCheck (header corruption), codec checks (slot
/// corruption), stage-2 and SMMU revocation, and deadline enforcement
/// (delay).
fn actions_for(phase: SrpcPhase, rng: &mut SimRng) -> Vec<FaultAction> {
    match phase {
        SrpcPhase::Enqueue => vec![
            FaultAction::KillCallee,
            FaultAction::CorruptRingHeader {
                seed: rng.next_u64(),
            },
        ],
        SrpcPhase::Dispatch => vec![
            FaultAction::KillCaller,
            FaultAction::CorruptRequestSlot {
                seed: rng.next_u64(),
            },
            FaultAction::ZeroRequestSlot,
        ],
        SrpcPhase::DmaIn => vec![FaultAction::RevokeSmmu, FaultAction::RevokeStage2],
        SrpcPhase::Kernel => vec![
            FaultAction::KillCallee,
            FaultAction::DelayCompletion(SimNs::from_millis(50)),
        ],
        SrpcPhase::ResultWrite => vec![
            FaultAction::CorruptResultSlot {
                seed: rng.next_u64(),
            },
            FaultAction::ZeroResultSlot,
        ],
        SrpcPhase::SyncWakeup => vec![
            FaultAction::CorruptRingHeader {
                seed: rng.next_u64(),
            },
            FaultAction::KillCallee,
        ],
    }
}

impl InjectionPlan {
    /// The full sweep: every workload × every phase × every action for
    /// that phase.
    pub fn full(seed: u64) -> InjectionPlan {
        let mut rng = SimRng::new(seed);
        let mut scenarios = Vec::new();
        for workload in WorkloadKind::ALL {
            for phase in SrpcPhase::ALL {
                for action in actions_for(phase, &mut rng) {
                    scenarios.push(Scenario {
                        id: scenarios.len() as u32,
                        workload,
                        phase,
                        action,
                    });
                }
            }
        }
        InjectionPlan { seed, scenarios }
    }

    /// The CI smoke subset: one canonical injection per phase, against the
    /// GPU saxpy workload (the one with device DMA, so the `DmaIn` phase
    /// is exercised for real).
    pub fn smoke(seed: u64) -> InjectionPlan {
        let mut rng = SimRng::new(seed);
        let scenarios = SrpcPhase::ALL
            .into_iter()
            .enumerate()
            .map(|(i, phase)| Scenario {
                id: i as u32,
                workload: WorkloadKind::GpuSaxpy,
                phase,
                action: actions_for(phase, &mut rng)[0],
            })
            .collect();
        InjectionPlan { seed, scenarios }
    }

    /// Number of scenarios in the plan.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        assert_eq!(InjectionPlan::full(7), InjectionPlan::full(7));
        assert_eq!(InjectionPlan::smoke(7), InjectionPlan::smoke(7));
    }

    #[test]
    fn full_plan_covers_every_phase_for_every_workload() {
        let plan = InjectionPlan::full(1);
        for workload in WorkloadKind::ALL {
            for phase in SrpcPhase::ALL {
                assert!(
                    plan.scenarios
                        .iter()
                        .any(|s| s.workload == workload && s.phase == phase),
                    "missing {workload:?} × {phase:?}"
                );
            }
        }
        // The acceptance floor: at least 6 injection points × 3 workloads.
        assert!(plan.len() >= 6 * 3);
    }

    #[test]
    fn smoke_plan_is_one_injection_per_phase() {
        let plan = InjectionPlan::smoke(1);
        assert_eq!(plan.len(), SrpcPhase::ALL.len());
        for phase in SrpcPhase::ALL {
            assert_eq!(
                plan.scenarios.iter().filter(|s| s.phase == phase).count(),
                1
            );
        }
    }

    #[test]
    fn scenario_ids_are_positional() {
        let plan = InjectionPlan::full(3);
        for (i, s) in plan.scenarios.iter().enumerate() {
            assert_eq!(s.id as usize, i);
        }
    }
}
