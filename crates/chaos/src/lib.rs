//! # cronus-chaos — deterministic fault-injection campaigns
//!
//! The paper's reliability claims (§IV-D) are universally quantified: *no
//! matter where* a partition fails during an sRPC call, the survivor takes a
//! proceed-trap, no secret leaks, and service is re-established within a
//! bounded recovery time. A handful of hand-written failover tests cannot
//! discharge a claim like that; this crate does it by *enumeration*.
//!
//! A campaign is a pure function of `(seed, plan)`:
//!
//! * [`plan::InjectionPlan`] enumerates scenarios — the cross product of
//!   {sRPC pipeline phase} × {fault action} × {workload} — with all
//!   randomness (corruption bytes, payloads) drawn from a seeded
//!   [`cronus_sim::SimRng`];
//! * [`workload::WorkloadKind`] supplies three representative mECall
//!   workloads (CPU echo, GPU saxpy with device DMA, NPU gemm with device
//!   DMA) built directly on the core API;
//! * [`campaign`] boots a fresh simulated machine per scenario, arms the
//!   fault via [`cronus_core::CronusSystem::arm_fault`], drives calls with
//!   deadlines and retry policies, recovers failed partitions, and
//!   re-establishes streams;
//! * [`invariants`] checks five properties after every scenario:
//!   * **A1 (no leak):** no secret byte is readable from the dead stream's
//!     share pages after recovery, and the normal world can never read them
//!     at all;
//!   * **A2 (no stuck caller):** every call returns (a value or a typed
//!     error), the stall watchdog is clean, and post-recovery calls succeed;
//!   * **A3 (bounded recovery):** modeled recovery time stays under the
//!     cost-model bound;
//!   * **A4 (isolation audit):** the `cronus-audit` static mapping-state
//!     audit (invariants I1–I5 of `AUDIT.md`) is clean after service is
//!     re-established;
//!   * **A5 (verifiable ledger):** the `cronus-forensics` security-event
//!     ledger exported at scenario end passes chain/MAC/causal verification
//!     and its record counts agree with the flight recorder (`FORENSICS.md`).
//!
//! Because the machine is simulated and time is virtual, two runs with the
//! same seed produce *byte-identical* reports — `tests/determinism.rs`
//! enforces this, and `tests/coverage.rs` pins every [`cronus_sim::Fault`]
//! variant to a concrete injection that raises it.
//!
//! Run the sweep with `cargo run --bin chaos` (add `--smoke` for the
//! one-injection-per-phase CI subset). See `FAULTS.md` at the repo root for
//! the taxonomy and how to read reports.

pub mod campaign;
pub mod invariants;
pub mod plan;
pub mod workload;

pub use campaign::{run_campaign, run_scenario, CampaignReport, ScenarioReport};
pub use invariants::{recovery_bound, Verdicts};
pub use plan::{InjectionPlan, Scenario};
pub use workload::{WorkloadKind, SECRET};
