//! The workloads a campaign drives calls through.
//!
//! Three mECall services built directly on the core API, each carrying a
//! known secret in its request payload so the no-leak invariant has
//! something concrete to scan for:
//!
//! * **Echo** — a trivial CPU-side round trip through the GPU partition's
//!   ring (no device DMA);
//! * **GpuSaxpy** — a byte-wise saxpy on the GPU partition whose handler
//!   pulls its scale operands from a staging page over the SMMU, so
//!   `RevokeSmmu` injections bite;
//! * **NpuGemm** — a 4×4 byte matrix multiply on the NPU partition, also
//!   with an SMMU-mapped staging page.
//!
//! All three mECalls are declared idempotent in their manifests, which is
//! what legitimizes the campaign's retry policies.

use std::collections::BTreeMap;

use cronus_core::{Actor, AppId, CronusError, CronusSystem, EnclaveRef, StreamId};
use cronus_devices::DeviceKind;
use cronus_mos::manifest::{Manifest, McallDecl, MosId};
use cronus_sim::{PagePerms, PhysAddr, SimNs, SimRng, World};
use cronus_spm::spm::{asid_of, BootConfig, DeviceSpec, PartitionSpec};

/// The secret every request payload carries; invariant A1 scans share
/// pages for these bytes after a failure.
pub const SECRET: &[u8; 16] = b"CHAOS-SECRET-KEY";

/// SMMU stream ids live in `cronus_sim`; alias to avoid colliding with the
/// sRPC [`StreamId`].
pub type DmaStreamId = cronus_sim::StreamId;

/// The workload a scenario drives calls through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Round trip through the GPU partition, no device DMA.
    Echo,
    /// Byte-wise saxpy on the GPU partition with SMMU staging DMA.
    GpuSaxpy,
    /// 4×4 byte matmul on the NPU partition with SMMU staging DMA.
    NpuGemm,
}

impl WorkloadKind {
    /// All workloads, in sweep order.
    pub const ALL: [WorkloadKind; 3] = [
        WorkloadKind::Echo,
        WorkloadKind::GpuSaxpy,
        WorkloadKind::NpuGemm,
    ];

    /// Short stable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Echo => "echo",
            WorkloadKind::GpuSaxpy => "gpu-saxpy",
            WorkloadKind::NpuGemm => "npu-gemm",
        }
    }

    /// The mECall the workload invokes.
    pub fn mecall(self) -> &'static str {
        match self {
            WorkloadKind::Echo => "echo",
            WorkloadKind::GpuSaxpy => "saxpy",
            WorkloadKind::NpuGemm => "gemm",
        }
    }

    /// The device kind (and thus partition) hosting the callee.
    fn device(self) -> DeviceKind {
        match self {
            WorkloadKind::Echo | WorkloadKind::GpuSaxpy => DeviceKind::Gpu,
            WorkloadKind::NpuGemm => DeviceKind::Npu,
        }
    }

    /// The callee partition's mOS id under [`boot`]'s layout.
    fn mos_id(self) -> MosId {
        match self.device() {
            DeviceKind::Gpu => MosId(2),
            DeviceKind::Npu => MosId(3),
            DeviceKind::Cpu => MosId(1),
        }
    }

    /// Request data length (excluding the leading [`SECRET`]).
    fn data_len(self) -> usize {
        match self {
            WorkloadKind::Echo | WorkloadKind::GpuSaxpy => 48,
            // Two 4×4 byte matrices.
            WorkloadKind::NpuGemm => 32,
        }
    }

    /// Modeled kernel cost per call.
    fn cost(self) -> SimNs {
        match self {
            WorkloadKind::Echo => SimNs::from_micros(5),
            WorkloadKind::GpuSaxpy => SimNs::from_micros(20),
            WorkloadKind::NpuGemm => SimNs::from_micros(40),
        }
    }
}

/// The deterministic contents of the workload's staging page (the operands
/// the device DMAs in). Empty for workloads without device DMA.
pub fn staging_pattern(kind: WorkloadKind) -> Vec<u8> {
    match kind {
        WorkloadKind::Echo => Vec::new(),
        WorkloadKind::GpuSaxpy => (0..64u64).map(|i| (i * 7 + 13) as u8).collect(),
        WorkloadKind::NpuGemm => (0..16u64).map(|i| (i * 5 + 3) as u8).collect(),
    }
}

/// The workload's pure function of (request data, staging operands); the
/// handler computes this on-device and the campaign recomputes it to
/// verify results.
fn transform_with(kind: WorkloadKind, data: &[u8], staging: &[u8]) -> Vec<u8> {
    match kind {
        WorkloadKind::Echo => data.to_vec(),
        WorkloadKind::GpuSaxpy => data
            .iter()
            .enumerate()
            .map(|(i, b)| b.wrapping_mul(3).wrapping_add(staging[i % staging.len()]))
            .collect(),
        WorkloadKind::NpuGemm => {
            let (a, b) = (&data[..16], &data[16..32]);
            let mut out = vec![0u8; 16];
            for r in 0..4 {
                for c in 0..4 {
                    let mut acc = staging[r * 4 + c];
                    for k in 0..4 {
                        acc = acc.wrapping_add(a[r * 4 + k].wrapping_mul(b[k * 4 + c]));
                    }
                    out[r * 4 + c] = acc;
                }
            }
            out
        }
    }
}

/// Builds a request payload: the [`SECRET`] followed by seeded data bytes.
pub fn request(kind: WorkloadKind, rng: &mut SimRng) -> Vec<u8> {
    let mut payload = SECRET.to_vec();
    let mut data = vec![0u8; kind.data_len()];
    rng.fill_bytes(&mut data);
    payload.extend_from_slice(&data);
    payload
}

/// The result a correct handler must produce for `payload`.
pub fn expected(kind: WorkloadKind, payload: &[u8]) -> Vec<u8> {
    transform_with(kind, &payload[SECRET.len()..], &staging_pattern(kind))
}

/// The staging page a DMA workload's handler reads its operands from.
#[derive(Clone, Copy, Debug)]
pub struct DmaSetup {
    /// The callee device's SMMU stream.
    pub stream: DmaStreamId,
    /// Physical page number of the staging page.
    pub ppn: u64,
}

/// Everything a scenario needs to drive (and rebuild) a workload.
pub struct Handles {
    /// The owning application.
    pub app: AppId,
    /// The CPU-side caller enclave.
    pub caller: EnclaveRef,
    /// The device-side callee enclave.
    pub callee: EnclaveRef,
    /// The sRPC stream between them.
    pub stream: StreamId,
    /// Device DMA staging, if the workload uses it.
    pub dma: Option<DmaSetup>,
}

/// Boots the campaign platform: CPU, GPU and NPU partitions.
pub fn boot() -> CronusSystem {
    let mut sys = CronusSystem::boot(BootConfig {
        partitions: vec![
            PartitionSpec::new(1, b"cpu-mos", "v1", DeviceSpec::Cpu),
            PartitionSpec::new(
                2,
                b"cuda-mos",
                "v3",
                DeviceSpec::Gpu {
                    memory: 1 << 26,
                    sms: 46,
                },
            ),
            PartitionSpec::new(3, b"vta-mos", "v2", DeviceSpec::Npu { memory: 1 << 24 }),
        ],
        ..Default::default()
    });
    // Black boxes captured on proceed-traps should carry a real
    // mapping-state digest, not the zero placeholder.
    cronus_audit::install_digest_hook(&mut sys);
    sys
}

/// Builds the workload from scratch: app, caller, staging page, callee,
/// stream. Used at scenario setup and again after a caller-partition loss.
pub fn build(sys: &mut CronusSystem, kind: WorkloadKind) -> Handles {
    let app = sys.create_app();
    let caller = sys
        .create_enclave(
            Actor::App(app),
            Manifest::new(DeviceKind::Cpu).with_memory(1 << 20),
            &BTreeMap::new(),
        )
        .expect("caller enclave");
    let dma = setup_staging(sys, kind);
    let callee = spawn_callee(sys, kind, caller, dma);
    let stream = sys.stream(caller, callee).open().expect("stream");
    Handles {
        app,
        caller,
        callee,
        stream,
        dma,
    }
}

/// Allocates and fills the staging page, granting it to the callee
/// device's SMMU stream. Returns `None` for workloads without device DMA.
fn setup_staging(sys: &mut CronusSystem, kind: WorkloadKind) -> Option<DmaSetup> {
    let pattern = staging_pattern(kind);
    if pattern.is_empty() {
        return None;
    }
    let asid = asid_of(kind.mos_id());
    let stream = sys.spm().mos(asid).expect("callee mos").hal().dma_stream();
    let machine = sys.spm_mut().machine_mut();
    let frame = machine.alloc_frame(World::Secure).expect("staging frame");
    let ppn = frame.page();
    machine
        .phys_write(World::Secure, PhysAddr::from_page_number(ppn), &pattern)
        .expect("staging write");
    machine.smmu_mut().grant(stream, ppn, PagePerms::RW);
    Some(DmaSetup { stream, ppn })
}

/// Creates the callee enclave and registers its handler. Used at build
/// time and again after a callee-partition recovery (the handler died with
/// the partition).
pub fn spawn_callee(
    sys: &mut CronusSystem,
    kind: WorkloadKind,
    caller: EnclaveRef,
    dma: Option<DmaSetup>,
) -> EnclaveRef {
    let manifest = Manifest::new(kind.device())
        .with_mecall(McallDecl::synchronous(kind.mecall()).idempotent())
        .with_memory(1 << 20);
    let callee = sys
        .create_enclave(Actor::Enclave(caller), manifest, &BTreeMap::new())
        .expect("callee enclave");
    let cost = kind.cost();
    sys.register_handler(
        callee,
        kind.mecall(),
        Box::new(move |ctx, payload| {
            let data = payload
                .get(SECRET.len()..)
                .filter(|d| d.len() == kind.data_len())
                .ok_or(CronusError::BadRequest)?;
            let staging = match dma {
                Some(d) => {
                    // The device pulls its operands from the staging page
                    // over the SMMU; a revoked mapping faults right here.
                    let mut buf = vec![0u8; staging_pattern(kind).len()];
                    ctx.spm.machine_mut().dma_read(
                        d.stream,
                        World::Secure,
                        PhysAddr::from_page_number(d.ppn),
                        &mut buf,
                    )?;
                    buf
                }
                None => Vec::new(),
            };
            Ok((transform_with(kind, data, &staging), cost))
        }),
    );
    callee
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_names_are_distinct() {
        let mut names: Vec<&str> = WorkloadKind::ALL.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), WorkloadKind::ALL.len());
    }

    #[test]
    fn requests_embed_the_secret_and_results_do_not() {
        let mut rng = SimRng::new(9);
        for kind in WorkloadKind::ALL {
            let payload = request(kind, &mut rng);
            assert!(payload.windows(SECRET.len()).any(|w| w == SECRET));
            assert_eq!(payload.len(), SECRET.len() + kind.data_len());
            let out = expected(kind, &payload);
            assert!(!out.windows(SECRET.len()).any(|w| w == SECRET));
        }
    }

    #[test]
    fn every_workload_round_trips_through_the_ring() {
        for kind in WorkloadKind::ALL {
            let mut sys = boot();
            let h = build(&mut sys, kind);
            let mut rng = SimRng::new(3);
            let payload = request(kind, &mut rng);
            let out = sys
                .call(h.stream, kind.mecall())
                .payload(&payload)
                .sync()
                .expect("call");
            assert_eq!(out, expected(kind, &payload), "{kind:?}");
        }
    }
}
