//! Extraction of the platform's complete mapping state into a plain model.
//!
//! [`IsolationModel::extract`] snapshots everything the isolation argument
//! of the paper depends on — TZASC secure regions, TZPC device assignments,
//! every partition's stage-1 and stage-2 tables, per-device SMMU tables,
//! device-tree ownership, and the share-page grants behind sRPC streams —
//! into ordinary sorted vectors. The invariant engine
//! ([`crate::invariants`]) then reasons about the model alone, so a check
//! can never perturb the system it is checking, and mutation tests can edit
//! the model directly to prove the checks fire.

use cronus_core::CronusSystem;
use cronus_mos::manifest::Eid;
use cronus_sim::addr::PhysRange;
use cronus_sim::{AsId, PagePerms, World, PAGE_SIZE};
use cronus_spm::spm::{ShareState, Spm};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A half-open span of physical page numbers `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageSpan {
    /// First page of the span.
    pub start: u64,
    /// One past the last page of the span.
    pub end: u64,
}

impl PageSpan {
    /// Converts a byte range into the page span covering it.
    pub fn from_range(r: PhysRange) -> Self {
        PageSpan {
            start: r.start().page_number(),
            end: r.end().as_u64().div_ceil(PAGE_SIZE),
        }
    }

    /// True when `ppn` lies inside the span.
    pub fn contains(&self, ppn: u64) -> bool {
        self.start <= ppn && ppn < self.end
    }

    /// True when `other` lies entirely inside the span.
    pub fn contains_span(&self, other: &PageSpan) -> bool {
        self.start <= other.start && other.end <= self.end
    }
}

impl std::fmt::Display for PageSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:#x}, {:#x})", self.start, self.end)
    }
}

/// One physical-page entry of a stage-2 or SMMU table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageEntry {
    /// Physical page number.
    pub ppn: u64,
    /// Access permissions.
    pub perms: PagePerms,
    /// Validity bit; invalid entries trap (the proceed step of failover).
    pub valid: bool,
}

/// One stage-1 mapping of an enclave.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stage1Mapping {
    /// The enclave owning the mapping.
    pub eid: Eid,
    /// Virtual page number.
    pub vpn: u64,
    /// Physical page number it resolves to.
    pub ppn: u64,
    /// Access permissions.
    pub perms: PagePerms,
}

/// One I/O device as seen by the devtree, the TZPC and the SPM.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceModel {
    /// Raw device id (bus/TZPC/devtree id space).
    pub device: u32,
    /// World recorded in the attested device tree, if the device has a node.
    pub devtree_world: Option<World>,
    /// World the TZPC currently enforces (normal if never assigned).
    pub tzpc_world: World,
    /// Partitions the SPM says own this device (must be exactly one).
    pub owners: Vec<AsId>,
}

/// One S-EL2 partition and its full mapping state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionModel {
    /// Partition address-space id.
    pub asid: AsId,
    /// True while the partition is marked failed (mid-failover).
    pub failed: bool,
    /// The device the SPM assigned to this partition's mOS.
    pub device: Option<u32>,
    /// The SMMU stream the partition's device DMAs through.
    pub dma_stream: Option<u32>,
    /// Stage-2 entries, sorted by ppn.
    pub stage2: Vec<PageEntry>,
    /// Stage-1 mappings across all enclaves, sorted by (eid, vpn).
    pub stage1: Vec<Stage1Mapping>,
}

impl PartitionModel {
    /// Looks up this partition's stage-2 entry for `ppn`.
    pub fn stage2_entry(&self, ppn: u64) -> Option<&PageEntry> {
        self.stage2.iter().find(|e| e.ppn == ppn)
    }
}

/// One SMMU stream's grant table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmmuStreamModel {
    /// Raw stream id.
    pub stream: u32,
    /// Grant entries, sorted by ppn.
    pub entries: Vec<PageEntry>,
}

/// One share-memory grant (the backing of an sRPC ring or pipe).
#[derive(Clone, Debug, PartialEq)]
pub struct ShareModel {
    /// Raw share handle.
    pub handle: u64,
    /// Granting endpoint.
    pub owner: (AsId, Eid),
    /// Receiving endpoint.
    pub peer: (AsId, Eid),
    /// Physical pages of the share.
    pub pages: Vec<u64>,
    /// Lifecycle state (active / poisoned / reclaimed).
    pub state: ShareState,
}

impl ShareModel {
    /// The two endpoint partitions, sorted and deduplicated.
    pub fn endpoint_partitions(&self) -> Vec<AsId> {
        let mut ends = vec![self.owner.0, self.peer.0];
        ends.sort();
        ends.dedup();
        ends
    }
}

/// One sRPC stream (provenance for share grants in audit reports).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamModel {
    /// Raw stream id.
    pub id: u64,
    /// Caller endpoint.
    pub caller: (AsId, Eid),
    /// Callee endpoint.
    pub callee: (AsId, Eid),
    /// Raw handle of the backing share.
    pub share: u64,
    /// True until closed or poisoned.
    pub open: bool,
    /// True after a peer failure until re-opened.
    pub quarantined: bool,
}

/// The complete mapping state of a booted platform, in plain sorted data.
#[derive(Clone, Debug, PartialEq)]
pub struct IsolationModel {
    /// Normal-world DRAM pool.
    pub normal_pages: PageSpan,
    /// Secure DRAM pool.
    pub secure_pages: PageSpan,
    /// TZASC secure regions, as page spans.
    pub tzasc_secure_regions: Vec<PageSpan>,
    /// Whether the TZPC configuration is latched (must be, after boot).
    pub tzpc_locked: bool,
    /// Every device known to the devtree, the TZPC or the SPM.
    pub devices: Vec<DeviceModel>,
    /// Every S-EL2 partition.
    pub partitions: Vec<PartitionModel>,
    /// Every configured SMMU stream.
    pub smmu: Vec<SmmuStreamModel>,
    /// Every share-memory grant, live or reclaimed.
    pub shares: Vec<ShareModel>,
    /// Every sRPC stream ever opened this boot.
    pub streams: Vec<StreamModel>,
}

impl IsolationModel {
    /// Snapshots the full mapping state of a running [`CronusSystem`].
    pub fn extract(sys: &CronusSystem) -> Self {
        let streams = sys
            .stream_states()
            .into_iter()
            .map(|s| StreamModel {
                id: s.id.as_u64(),
                caller: s.caller,
                callee: s.callee,
                share: s.share.as_u64(),
                open: s.open,
                quarantined: s.quarantined,
            })
            .collect();
        Self::from_spm(sys.spm(), streams)
    }

    /// Snapshots the SPM-level mapping state; `streams` supplies the sRPC
    /// provenance layer (empty when auditing below the core layer).
    pub fn from_spm(spm: &Spm, streams: Vec<StreamModel>) -> Self {
        let machine = spm.machine();

        // Devices: the union of devtree nodes, TZPC assignments and
        // SPM-owned devices, keyed by raw id so disagreements surface.
        let mut devices: BTreeMap<u32, DeviceModel> = BTreeMap::new();
        fn touch(
            devices: &mut BTreeMap<u32, DeviceModel>,
            id: u32,
            tzpc_world: World,
        ) -> &mut DeviceModel {
            devices.entry(id).or_insert_with(|| DeviceModel {
                device: id,
                devtree_world: None,
                tzpc_world,
                owners: Vec::new(),
            })
        }
        let world_of = |id: u32| machine.tzpc().world_of(cronus_sim::DeviceId::new(id));
        for node in machine.devtree().map(|dt| dt.nodes()).unwrap_or_default() {
            let id = node.device.as_u32();
            touch(&mut devices, id, world_of(id)).devtree_world = Some(node.world);
        }
        for (device, _) in machine.tzpc().assignments() {
            let id = device.as_u32();
            touch(&mut devices, id, world_of(id));
        }
        for asid in spm.partition_ids() {
            if let Some(device) = spm.device_of(asid) {
                let id = device.as_u32();
                touch(&mut devices, id, world_of(id)).owners.push(asid);
            }
        }
        for d in devices.values_mut() {
            d.owners.sort();
        }

        let partitions = spm
            .partition_ids()
            .into_iter()
            .map(|asid| {
                let mos = spm.mos(asid).ok();
                let mut stage1: Vec<Stage1Mapping> = mos
                    .map(|m| {
                        m.stage1_tables()
                            .into_iter()
                            .flat_map(|(eid, pt)| {
                                pt.entries().map(move |(vpn, ppn, perms)| Stage1Mapping {
                                    eid,
                                    vpn,
                                    ppn,
                                    perms,
                                })
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                stage1.sort_by_key(|m| (m.eid, m.vpn));
                PartitionModel {
                    asid,
                    failed: machine.is_failed(asid),
                    device: spm.device_of(asid).map(|d| d.as_u32()),
                    dma_stream: mos.map(|m| m.hal().dma_stream().as_u32()),
                    stage2: machine
                        .stage2_entries(asid)
                        .into_iter()
                        .map(|(ppn, perms, valid)| PageEntry { ppn, perms, valid })
                        .collect(),
                    stage1,
                }
            })
            .collect();

        let smmu = machine
            .smmu()
            .streams()
            .into_iter()
            .map(|(stream, table)| {
                let mut entries: Vec<PageEntry> = table
                    .entries()
                    .map(|(ppn, perms, valid)| PageEntry { ppn, perms, valid })
                    .collect();
                entries.sort_by_key(|e| e.ppn);
                SmmuStreamModel {
                    stream: stream.as_u32(),
                    entries,
                }
            })
            .collect();

        let shares = spm
            .shares()
            .map(|s| ShareModel {
                handle: s.handle.as_u64(),
                owner: s.owner,
                peer: s.peer,
                pages: s.pages.to_vec(),
                state: s.state,
            })
            .collect();

        IsolationModel {
            normal_pages: PageSpan::from_range(machine.normal_range()),
            secure_pages: PageSpan::from_range(machine.secure_range()),
            tzasc_secure_regions: machine
                .tzasc()
                .secure_regions()
                .iter()
                .map(|r| PageSpan::from_range(*r))
                .collect(),
            tzpc_locked: machine.tzpc().is_locked(),
            devices: devices.into_values().collect(),
            partitions,
            smmu,
            shares,
            streams,
        }
    }

    /// The partition model for `asid`, if present.
    pub fn partition(&self, asid: AsId) -> Option<&PartitionModel> {
        self.partitions.iter().find(|p| p.asid == asid)
    }

    /// The SMMU stream model with raw id `stream`, if configured.
    pub fn smmu_stream(&self, stream: u32) -> Option<&SmmuStreamModel> {
        self.smmu.iter().find(|s| s.stream == stream)
    }

    /// True when some TZASC secure region covers `ppn`.
    pub fn tzasc_secure(&self, ppn: u64) -> bool {
        self.tzasc_secure_regions.iter().any(|r| r.contains(ppn))
    }

    /// Renders the model as stable, diff-friendly text (`audit --dump`).
    pub fn render(&self) -> String {
        let mut out = String::from("isolation model\n");
        let _ = writeln!(
            out,
            "  dram: normal ppn {} secure ppn {}",
            self.normal_pages, self.secure_pages
        );
        for r in &self.tzasc_secure_regions {
            let _ = writeln!(out, "  tzasc secure region ppn {r}");
        }
        let _ = writeln!(
            out,
            "  tzpc locked={}",
            if self.tzpc_locked { "yes" } else { "no" }
        );
        for d in &self.devices {
            let _ = writeln!(
                out,
                "  device dev{} devtree={} tzpc={} owners=[{}]",
                d.device,
                d.devtree_world.map_or("-", world_name),
                world_name(d.tzpc_world),
                join(&d.owners),
            );
        }
        for p in &self.partitions {
            let _ = writeln!(
                out,
                "  partition {} failed={} device={} dma-stream={}",
                p.asid,
                if p.failed { "yes" } else { "no" },
                p.device.map_or("-".into(), |d| format!("dev{d}")),
                p.dma_stream.map_or("-".into(), |s| s.to_string()),
            );
            for e in &p.stage2 {
                let _ = writeln!(
                    out,
                    "    stage2 ppn={:#x} perms={} valid={}",
                    e.ppn,
                    perms_name(e.perms),
                    if e.valid { "yes" } else { "no" }
                );
            }
            for m in &p.stage1 {
                let _ = writeln!(
                    out,
                    "    stage1 {} vpn={:#x} ppn={:#x} perms={}",
                    m.eid,
                    m.vpn,
                    m.ppn,
                    perms_name(m.perms)
                );
            }
        }
        for s in &self.smmu {
            let _ = writeln!(out, "  smmu stream={}", s.stream);
            for e in &s.entries {
                let _ = writeln!(
                    out,
                    "    grant ppn={:#x} perms={} valid={}",
                    e.ppn,
                    perms_name(e.perms),
                    if e.valid { "yes" } else { "no" }
                );
            }
        }
        for s in &self.shares {
            let _ = writeln!(
                out,
                "  share h={} owner=({}, {}) peer=({}, {}) state={} pages={}",
                s.handle,
                s.owner.0,
                s.owner.1,
                s.peer.0,
                s.peer.1,
                share_state_name(s.state),
                compress_pages(&s.pages),
            );
        }
        for s in &self.streams {
            let _ = writeln!(
                out,
                "  stream id={} caller=({}, {}) callee=({}, {}) share=h{} open={} quarantined={}",
                s.id,
                s.caller.0,
                s.caller.1,
                s.callee.0,
                s.callee.1,
                s.share,
                if s.open { "yes" } else { "no" },
                if s.quarantined { "yes" } else { "no" },
            );
        }
        out
    }
}

/// Stable lowercase name of a world.
pub fn world_name(w: World) -> &'static str {
    match w {
        World::Normal => "normal",
        World::Secure => "secure",
    }
}

/// Stable lowercase name of a permission set.
pub fn perms_name(p: PagePerms) -> &'static str {
    match (p.read, p.write) {
        (true, true) => "rw",
        (true, false) => "ro",
        (false, true) => "wo",
        (false, false) => "none",
    }
}

/// Stable lowercase name of a share state.
pub fn share_state_name(s: ShareState) -> String {
    match s {
        ShareState::Active => "active".into(),
        ShareState::Poisoned { survivor } => format!("poisoned(survivor={survivor})"),
        ShareState::Reclaimed => "reclaimed".into(),
    }
}

fn join(ids: &[AsId]) -> String {
    ids.iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Compresses a sorted-ish page list into `count: first..last` runs.
fn compress_pages(pages: &[u64]) -> String {
    let mut sorted = pages.to_vec();
    sorted.sort_unstable();
    let mut runs: Vec<String> = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let start = sorted[i];
        let mut end = start;
        while i + 1 < sorted.len() && sorted[i + 1] == end + 1 {
            end = sorted[i + 1];
            i += 1;
        }
        runs.push(if start == end {
            format!("{start:#x}")
        } else {
            format!("{start:#x}..{end:#x}")
        });
        i += 1;
    }
    format!("{}: {}", pages.len(), runs.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cronus_sim::addr::PhysAddr;

    #[test]
    fn page_span_geometry() {
        let span = PageSpan::from_range(PhysRange::from_base_len(PhysAddr::new(0x2000), 0x3000));
        assert_eq!(span, PageSpan { start: 2, end: 5 });
        assert!(span.contains(2) && span.contains(4) && !span.contains(5));
        assert!(span.contains_span(&PageSpan { start: 3, end: 5 }));
        assert!(!span.contains_span(&PageSpan { start: 3, end: 6 }));
    }

    #[test]
    fn page_compression_folds_runs() {
        assert_eq!(compress_pages(&[5, 6, 7, 9]), "4: 0x5..0x7 0x9");
        assert_eq!(compress_pages(&[1]), "1: 0x1");
    }
}
