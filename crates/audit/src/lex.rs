//! A hand-written Rust lexer: the foundation of the static-analysis engine.
//!
//! The previous repo lint was line/substring based and had three known
//! blind spots that this lexer closes (each pinned by a regression test in
//! `tests/static_analysis.rs`):
//!
//! * **raw strings** — `r"..."` / `r#"..."#` (any number of `#`s, plus the
//!   `br` byte variants) used to leak their *contents* into the scan, so a
//!   string mentioning `.unwrap()` produced a false positive and, worse, a
//!   raw string containing `*/` or `"` could desynchronize a naive scanner
//!   so that *real* tokens after it were missed;
//! * **nested block comments** — Rust block comments nest
//!   (`/* outer /* inner */ still a comment */`); a non-counting scanner
//!   resumes scanning one `*/` too early and reports commented-out code;
//! * **char/byte literals vs lifetimes** — `'a'`, `b'"'`, and `'\''`
//!   contain quote characters that must not open or close a string, while
//!   `'static` is a lifetime and contains no closing quote at all.
//!
//! The lexer is deliberately *lossy where loss is safe*: it produces a
//! flat token stream with 1-based line numbers and normalizes multi-char
//! operators (so `->` never looks like a `>` closing a generic list), but
//! it does not interpret numeric suffixes or unescape string contents —
//! the analyses above it only need token identity, shape, and position.
//! String literal *text* is preserved verbatim (without delimiters) so the
//! taint analysis can see `format!("{secret}")` inline captures.

/// Token kind plus payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `let`, names, ...). Raw identifiers
    /// (`r#match`) are stored without the `r#` prefix.
    Ident(String),
    /// Lifetime (`'a`, `'static`), stored without the leading `'`.
    Lifetime(String),
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`), stored as
    /// its verbatim contents without delimiters or prefix.
    Str(String),
    /// Char or byte literal (`'x'`, `b'\n'`), stored without delimiters.
    Char(String),
    /// Numeric literal, stored verbatim (`0xFF`, `1_000u64`, `1.5e3`).
    Num(String),
    /// Punctuation / operator, normalized by maximal munch (`::`, `->`,
    /// `=>`, `==`, `..=`, `<<=`, ... are each a single token).
    Punct(&'static str),
    /// Opening delimiter: one of `(`, `[`, `{`.
    Open(char),
    /// Closing delimiter: one of `)`, `]`, `}`.
    Close(char),
}

/// One token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub tok: Tok,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(&self.tok, Tok::Punct(q) if *q == p)
    }

    /// True when this token is the identifier `id`.
    pub fn is_ident(&self, id: &str) -> bool {
        matches!(&self.tok, Tok::Ident(s) if s == id)
    }
}

/// Multi-character operators, longest first so maximal munch is a simple
/// prefix scan.
const OPERATORS: [&str; 25] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..", "?",
];

/// Single-character punctuation (everything else structural).
const SINGLES: &str = "+-*/%^!&|<>=.,;:#$?@~'";

/// Lexes `text` into a token stream. Never fails: unexpected bytes are
/// skipped (the analyses treat them as opaque), unterminated literals run
/// to end of file — garbage-in stays localized instead of aborting an
/// entire repo scan.
pub fn lex(text: &str) -> Vec<Token> {
    Lexer {
        src: text.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(0),
                b'\'' => self.quote(),
                b'0'..=b'9' => self.number(),
                b'(' | b'[' | b'{' => {
                    self.push(Tok::Open(c as char));
                    self.pos += 1;
                }
                b')' | b']' | b'}' => {
                    self.push(Tok::Close(c as char));
                    self.pos += 1;
                }
                c if is_ident_start(c) => self.ident_or_prefixed(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, tok: Tok) {
        self.out.push(Token {
            tok,
            line: self.line,
        });
    }

    fn line_comment(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    /// Block comments nest: `/* /* */ */` is one comment. Depth-counted.
    fn block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            match (self.src[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// A normal (escaped) string literal; `self.pos` sits on the opening
    /// quote. `skip_prefix` bytes were already consumed by the caller for
    /// `b"..."` forms.
    fn string(&mut self, _skip_prefix: usize) {
        let start_line = self.line;
        self.pos += 1; // opening quote
        let body_start = self.pos;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => {
                    // An escape consumes the next byte wholesale, so \" and
                    // \\ can never terminate the literal.
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                    }
                    self.pos = (self.pos + 2).min(self.src.len());
                }
                b'"' => {
                    let body = text_of(&self.src[body_start..self.pos]);
                    self.out.push(Token {
                        tok: Tok::Str(body),
                        line: start_line,
                    });
                    self.pos += 1;
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        // Unterminated: emit what we have.
        let body = text_of(&self.src[body_start..self.pos]);
        self.out.push(Token {
            tok: Tok::Str(body),
            line: start_line,
        });
    }

    /// A raw string; `self.pos` sits on the first `#` or the `"` after the
    /// `r`/`br` prefix. The closing delimiter is `"` followed by exactly
    /// `hashes` `#`s — quotes and backslashes inside are plain content.
    fn raw_string(&mut self) {
        let start_line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.peek(0) != Some(b'"') {
            // `r#ident` raw identifier, not a raw string: re-lex as ident.
            self.ident_raw();
            return;
        }
        self.pos += 1;
        let body_start = self.pos;
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if self.src[self.pos] == b'"' {
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    let body = text_of(&self.src[body_start..self.pos]);
                    self.out.push(Token {
                        tok: Tok::Str(body),
                        line: start_line,
                    });
                    self.pos += 1 + hashes;
                    return;
                }
            }
            self.pos += 1;
        }
        let body = text_of(&self.src[body_start..self.pos]);
        self.out.push(Token {
            tok: Tok::Str(body),
            line: start_line,
        });
    }

    /// After an `r#` that is not a raw string: a raw identifier.
    fn ident_raw(&mut self) {
        let start = self.pos;
        while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
            self.pos += 1;
        }
        self.push(Tok::Ident(text_of(&self.src[start..self.pos])));
    }

    /// `'` starts either a char literal or a lifetime. Disambiguation:
    /// `'\...'` and `'x'` (any single char followed by `'`) are chars;
    /// `'ident` with no closing quote is a lifetime.
    fn quote(&mut self) {
        let start_line = self.line;
        self.pos += 1;
        if self.peek(0) == Some(b'\\') {
            // Escaped char literal: consume escape then to closing quote.
            let body_start = self.pos;
            self.pos = (self.pos + 2).min(self.src.len());
            while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                self.pos += 1;
            }
            let body = text_of(&self.src[body_start..self.pos]);
            self.pos = (self.pos + 1).min(self.src.len());
            self.out.push(Token {
                tok: Tok::Char(body),
                line: start_line,
            });
            return;
        }
        let is_char = match (self.peek(0), self.peek(1)) {
            // 'x' — one scalar then a quote. Multi-byte UTF-8 chars: scan
            // forward to a quote within 6 bytes with no intervening
            // whitespace.
            (Some(_), Some(b'\'')) => true,
            (Some(c), _) if !is_ident_start(c) => true,
            _ => {
                // `'abc'`? Only a char if a quote appears before a
                // non-ident char; otherwise a lifetime.
                let mut i = 0;
                loop {
                    match self.peek(i) {
                        Some(b'\'') => break i > 0,
                        Some(c) if is_ident_continue(c) && i < 6 => i += 1,
                        _ => break false,
                    }
                }
            }
        };
        if is_char {
            let body_start = self.pos;
            while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                if self.src[self.pos] == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
            let body = text_of(&self.src[body_start..self.pos]);
            self.pos = (self.pos + 1).min(self.src.len());
            self.out.push(Token {
                tok: Tok::Char(body),
                line: start_line,
            });
        } else {
            let start = self.pos;
            while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
                self.pos += 1;
            }
            self.out.push(Token {
                tok: Tok::Lifetime(text_of(&self.src[start..self.pos])),
                line: start_line,
            });
        }
    }

    fn number(&mut self) {
        let start = self.pos;
        // Radix prefix.
        if self.src[self.pos] == b'0'
            && matches!(self.peek(1), Some(b'x' | b'X' | b'b' | b'B' | b'o' | b'O'))
        {
            self.pos += 2;
        }
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        // Fractional part — but `1..2` is a range, and `1.method()` keeps
        // the dot as punctuation.
        if self.peek(0) == Some(b'.')
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
            && self.peek(1) != Some(b'.')
        {
            self.pos += 1;
            while self.pos < self.src.len()
                && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
            {
                self.pos += 1;
            }
        }
        self.push(Tok::Num(text_of(&self.src[start..self.pos])));
    }

    /// Identifier, keyword, or a string/char prefix (`r"…"`, `b'…'`,
    /// `br#"…"#`, `r#raw_ident`).
    fn ident_or_prefixed(&mut self) {
        let start = self.pos;
        while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
            self.pos += 1;
        }
        let word = text_of(&self.src[start..self.pos]);
        match (word.as_str(), self.peek(0)) {
            ("r" | "br" | "cr", Some(b'"' | b'#')) => self.raw_string(),
            ("b" | "c", Some(b'"')) => self.string(1),
            ("b", Some(b'\'')) => self.quote(),
            _ => self.push(Tok::Ident(word)),
        }
    }

    fn punct(&mut self) {
        let rest = &self.src[self.pos..];
        for op in OPERATORS {
            if rest.starts_with(op.as_bytes()) {
                self.push(Tok::Punct(op));
                self.pos += op.len();
                return;
            }
        }
        let c = self.src[self.pos] as char;
        if let Some(i) = SINGLES.find(c) {
            // Safety: SINGLES is ASCII, so byte slicing at i..i+1 is valid.
            let s: &'static str = &SINGLES[i..i + 1];
            self.push(Tok::Punct(s));
        }
        self.pos += 1;
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

fn text_of(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<Tok> {
        lex(text).into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_and_operators() {
        assert_eq!(
            kinds("fn f() -> u32 { a::b(x) }"),
            vec![
                Tok::Ident("fn".into()),
                Tok::Ident("f".into()),
                Tok::Open('('),
                Tok::Close(')'),
                Tok::Punct("->"),
                Tok::Ident("u32".into()),
                Tok::Open('{'),
                Tok::Ident("a".into()),
                Tok::Punct("::"),
                Tok::Ident("b".into()),
                Tok::Open('('),
                Tok::Ident("x".into()),
                Tok::Close(')'),
                Tok::Close('}'),
            ]
        );
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        // Regression (lexical-scanner gap #1): the old substring scanner
        // saw `.unwrap()` inside this raw string. The lexer yields one Str.
        let toks = kinds(r####"let s = r#"x.unwrap() "quoted" "#;"####);
        assert_eq!(
            toks,
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("s".into()),
                Tok::Punct("="),
                Tok::Str("x.unwrap() \"quoted\" ".into()),
                Tok::Punct(";"),
            ]
        );
    }

    #[test]
    fn raw_strings_with_more_hashes_and_byte_variant() {
        let toks = kinds("br##\"a\"# b\"##");
        assert_eq!(toks, vec![Tok::Str("a\"# b".into())]);
        let toks = kinds("r\"plain\"");
        assert_eq!(toks, vec![Tok::Str("plain".into())]);
    }

    #[test]
    fn nested_block_comments_fully_skipped() {
        // Regression (lexical-scanner gap #2): `/* /* */ x.unwrap() */`
        // is entirely a comment; a non-nesting scanner resumes at the
        // first `*/` and sees the unwrap.
        let toks = kinds("a /* outer /* inner */ x.unwrap() */ b");
        assert_eq!(toks, vec![Tok::Ident("a".into()), Tok::Ident("b".into())]);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        assert_eq!(
            kinds("'a' 'static '\\'' b'\"' '{'"),
            vec![
                Tok::Char("a".into()),
                Tok::Lifetime("static".into()),
                Tok::Char("\\'".into()),
                Tok::Char("\"".into()),
                Tok::Char("{".into()),
            ]
        );
    }

    #[test]
    fn char_quote_does_not_open_a_string() {
        // `'"'` then real code: a naive scanner treats the quote in the
        // char literal as a string opener and swallows the unwrap.
        let toks = kinds("let c = '\"'; x.unwrap()");
        assert!(toks.contains(&Tok::Ident("unwrap".into())));
    }

    #[test]
    fn strings_with_escapes_and_continuations() {
        assert_eq!(
            kinds(r#""a\"b" "c\\""#),
            vec![Tok::Str("a\\\"b".into()), Tok::Str("c\\\\".into())]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("0xFF 1_000u64 1.5e3 1..2 3.min(4)"),
            vec![
                Tok::Num("0xFF".into()),
                Tok::Num("1_000u64".into()),
                Tok::Num("1.5e3".into()),
                Tok::Num("1".into()),
                Tok::Punct(".."),
                Tok::Num("2".into()),
                Tok::Num("3".into()),
                Tok::Punct("."),
                Tok::Ident("min".into()),
                Tok::Open('('),
                Tok::Num("4".into()),
                Tok::Close(')'),
            ]
        );
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(
            kinds("r#match r#fn"),
            vec![Tok::Ident("match".into()), Tok::Ident("fn".into())]
        );
    }

    #[test]
    fn line_numbers_track_all_multiline_forms() {
        let text = "a\n/* c\nc */ b\n\"s\ns\" d\nr#\"r\nr\"# e";
        let toks = lex(text);
        let find = |name: &str| toks.iter().find(|t| t.is_ident(name)).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 3);
        assert_eq!(find("d"), 5);
        assert_eq!(find("e"), 7);
    }

    #[test]
    fn shift_operators_are_single_tokens() {
        assert_eq!(
            kinds("a << b >>= c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<<"),
                Tok::Ident("b".into()),
                Tok::Punct(">>="),
                Tok::Ident("c".into()),
            ]
        );
    }
}
