//! Brace-tree item parser: token stream → per-file function items.
//!
//! This is not a full Rust parser — it is the *item skeleton* walker the
//! analyses need: module nesting, `impl`/`trait` type context, function
//! signatures (name, parameter names, return-type tokens) and body token
//! ranges, plus attribute tracking for `#[cfg(test)]`, `#[test]`,
//! `#[deprecated]` and `#[allow(deprecated)]`.
//!
//! Attribute tracking fixes the third known gap of the old line scanner:
//! an item preceded by *multiple* attributes
//! (`#[derive(Debug)] #[cfg(test)] #[allow(x)] mod tests { … }`) is
//! correctly recognized as test-gated regardless of attribute order or
//! whether they share a line, because attributes are parsed structurally,
//! not matched as line prefixes. `cfg(not(test))` is *not* test-gated;
//! `cfg(all(test, …))` is — the tracker evaluates `not`-depth instead of
//! substring-matching `test`.

use crate::lex::{Tok, Token};

/// One parsed `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Fully qualified path: `module::Type::name` or `module::name`.
    pub qual: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub type_ctx: Option<String>,
    /// 1-based line of the function name.
    pub line: u32,
    /// Compiled only under test (`#[cfg(test)]` scope or `#[test]`).
    pub is_test: bool,
    /// Carries a `#[deprecated]` attribute.
    pub is_deprecated: bool,
    /// Declared `pub` (any visibility restriction counts as pub).
    pub is_pub: bool,
    /// Parameter pattern identifiers (excluding `self`; see `has_self`).
    pub params: Vec<String>,
    /// Takes a `self` receiver.
    pub has_self: bool,
    /// Token range (into the file's stream) of the return type; empty
    /// range when the function returns `()`.
    pub ret: (usize, usize),
    /// Token range of the body, exclusive of the outer braces; `None` for
    /// bodiless trait/extern declarations.
    pub body: Option<(usize, usize)>,
}

/// A parsed source file: its token stream plus the extracted items.
#[derive(Clone, Debug)]
pub struct ParsedFile {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// Module path of the file root (e.g. `cronus_core::ring`).
    pub module: String,
    /// The full token stream.
    pub tokens: Vec<Token>,
    /// Every function item, in source order.
    pub fns: Vec<FnItem>,
    /// Token-index ranges that are test-gated (cfg(test) modules/items and
    /// `#[test]` functions) — lexical rules skip these.
    pub test_spans: Vec<(usize, usize)>,
    /// Lines of `#[allow(deprecated)]` attributes in non-test code.
    pub allow_deprecated: Vec<u32>,
}

impl ParsedFile {
    /// True when token index `i` falls inside a test-gated span.
    pub fn is_test_token(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| i >= s && i < e)
    }
}

/// Parses a lexed file into items.
pub fn parse(path: &str, module: &str, tokens: Vec<Token>) -> ParsedFile {
    let mut p = Parser {
        toks: &tokens,
        pos: 0,
        out: ParsedFile {
            path: path.to_string(),
            module: module.to_string(),
            tokens: Vec::new(),
            fns: Vec::new(),
            test_spans: Vec::new(),
            allow_deprecated: Vec::new(),
        },
    };
    p.items(module, None, false);
    let mut out = p.out;
    out.tokens = tokens;
    out
}

/// Attribute summary for one item.
#[derive(Clone, Copy, Debug, Default)]
struct Attrs {
    cfg_test: bool,
    test: bool,
    deprecated: bool,
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    out: ParsedFile,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        self.pos += 1;
        t
    }

    /// Skips a balanced `( … )` / `[ … ]` / `{ … }` group; assumes the
    /// cursor sits on the opening delimiter. Returns the token index just
    /// past the closing delimiter.
    fn skip_group(&mut self) -> usize {
        let Some(open) = self.peek() else {
            return self.pos;
        };
        let Tok::Open(oc) = open.tok else {
            self.pos += 1;
            return self.pos;
        };
        self.pos += 1;
        let mut depth = 1usize;
        while let Some(t) = self.bump() {
            match t.tok {
                Tok::Open(c) if c == oc => depth += 1,
                Tok::Close(c) if close_of(oc) == c => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        self.pos
    }

    /// Skips forward to just past the next `;` at the current nesting
    /// level, entering and leaving balanced groups wholesale.
    fn skip_to_semi(&mut self) {
        while let Some(t) = self.peek() {
            match t.tok {
                Tok::Open(_) => {
                    self.skip_group();
                }
                Tok::Punct(";") => {
                    self.pos += 1;
                    return;
                }
                Tok::Close(_) => return, // stray close: let the caller see it
                _ => self.pos += 1,
            }
        }
    }

    /// Parses the attribute stack before an item; the cursor ends on the
    /// first non-attribute token. All attributes are combined, so multiple
    /// attributes before one item cannot hide a `#[cfg(test)]`.
    fn attrs(&mut self, in_test: bool) -> Attrs {
        let mut a = Attrs::default();
        while self.peek().is_some_and(|t| t.is_punct("#")) {
            let hash = self.pos;
            self.pos += 1;
            // Inner attribute `#![…]` applies to the enclosing scope; we
            // treat `#![cfg(test)]` like an outer one for safety.
            if self.peek().is_some_and(|t| t.is_punct("!")) {
                self.pos += 1;
            }
            if !matches!(self.peek().map(|t| &t.tok), Some(Tok::Open('['))) {
                self.pos = hash + 1;
                return a;
            }
            let start = self.pos + 1;
            let end = self.skip_group() - 1; // exclusive of `]`
            let inner = &self.toks[start..end];
            let first = inner.first().and_then(|t| t.ident());
            match first {
                Some("cfg") if cfg_mentions_test(inner) => {
                    a.cfg_test = true;
                }
                Some("test") => a.test = true,
                Some("deprecated") => a.deprecated = true,
                Some("allow") if inner.iter().any(|t| t.is_ident("deprecated")) && !in_test => {
                    if let Some(t) = self.toks.get(hash) {
                        self.out.allow_deprecated.push(t.line);
                    }
                }
                _ => {}
            }
        }
        a
    }

    /// Parses items until EOF or an unmatched `}` (which is consumed).
    fn items(&mut self, module: &str, type_ctx: Option<&str>, in_test: bool) {
        while let Some(t) = self.peek() {
            if matches!(t.tok, Tok::Close('}')) {
                self.pos += 1;
                return;
            }
            let item_start = self.pos;
            let a = self.attrs(in_test);
            let gated = in_test || a.cfg_test;

            // Visibility + modifiers.
            let mut is_pub = false;
            loop {
                match self.peek().and_then(|t| t.ident()) {
                    Some("pub") => {
                        is_pub = true;
                        self.pos += 1;
                        if matches!(self.peek().map(|t| &t.tok), Some(Tok::Open('('))) {
                            self.skip_group();
                        }
                    }
                    Some("const" | "unsafe" | "async" | "default") => {
                        // `const` may start `const fn` *or* a `const X: T`
                        // item; disambiguate by the following token.
                        if self.peek().is_some_and(|t| t.is_ident("const"))
                            && !self.toks.get(self.pos + 1).is_some_and(|t| {
                                t.is_ident("fn") || t.is_ident("unsafe") || t.is_ident("extern")
                            })
                        {
                            break;
                        }
                        self.pos += 1;
                    }
                    Some("extern") => {
                        self.pos += 1;
                        if matches!(self.peek().map(|t| &t.tok), Some(Tok::Str(_))) {
                            self.pos += 1;
                        }
                    }
                    _ => break,
                }
            }

            match self.peek().and_then(|t| t.ident()) {
                Some("fn") => {
                    self.pos += 1;
                    self.function(module, type_ctx, gated || a.test, a, is_pub);
                    if gated || a.test {
                        self.out.test_spans.push((item_start, self.pos));
                    }
                }
                Some("mod") => {
                    self.pos += 1;
                    let name = self
                        .bump()
                        .and_then(|t| t.ident())
                        .unwrap_or("")
                        .to_string();
                    match self.peek().map(|t| &t.tok) {
                        Some(Tok::Open('{')) => {
                            self.pos += 1;
                            let sub = format!("{module}::{name}");
                            self.items(&sub, None, gated);
                            if gated {
                                self.out.test_spans.push((item_start, self.pos));
                            }
                        }
                        _ => self.skip_to_semi(),
                    }
                }
                Some("impl") => {
                    self.pos += 1;
                    let ty = self.impl_header();
                    if matches!(self.peek().map(|t| &t.tok), Some(Tok::Open('{'))) {
                        self.pos += 1;
                        self.items(module, ty.as_deref(), gated);
                        if gated {
                            self.out.test_spans.push((item_start, self.pos));
                        }
                    }
                }
                Some("trait") => {
                    self.pos += 1;
                    let name = self
                        .bump()
                        .and_then(|t| t.ident())
                        .unwrap_or("")
                        .to_string();
                    // Skip generics/bounds up to the body.
                    while let Some(t) = self.peek() {
                        match t.tok {
                            Tok::Open('{') => break,
                            Tok::Punct(";") => break,
                            Tok::Open(_) => {
                                self.skip_group();
                            }
                            _ => self.pos += 1,
                        }
                    }
                    if matches!(self.peek().map(|t| &t.tok), Some(Tok::Open('{'))) {
                        self.pos += 1;
                        self.items(module, Some(&name), gated);
                        if gated {
                            self.out.test_spans.push((item_start, self.pos));
                        }
                    } else {
                        self.pos += 1;
                    }
                }
                Some("struct" | "enum" | "union") => {
                    self.pos += 1;
                    while let Some(t) = self.peek() {
                        match t.tok {
                            Tok::Open('{') => {
                                self.skip_group();
                                break;
                            }
                            Tok::Open('(') => {
                                self.skip_group(); // tuple struct — then `;`
                            }
                            Tok::Punct(";") => {
                                self.pos += 1;
                                break;
                            }
                            Tok::Close(_) => break,
                            _ => self.pos += 1,
                        }
                    }
                    if gated {
                        self.out.test_spans.push((item_start, self.pos));
                    }
                }
                Some("macro_rules") => {
                    self.pos += 1; // name follows `!`
                    while let Some(t) = self.peek() {
                        match t.tok {
                            Tok::Open(_) => {
                                self.skip_group();
                                break;
                            }
                            _ => self.pos += 1,
                        }
                    }
                    if self.peek().is_some_and(|t| t.is_punct(";")) {
                        self.pos += 1;
                    }
                }
                Some("use" | "static" | "type") => {
                    self.skip_to_semi();
                    if gated {
                        self.out.test_spans.push((item_start, self.pos));
                    }
                }
                Some("const") => {
                    self.skip_to_semi();
                    if gated {
                        self.out.test_spans.push((item_start, self.pos));
                    }
                }
                _ => {
                    // `extern "C" { … }` blocks land here (modifier loop ate
                    // `extern`), as does anything unrecognized: advance by
                    // one token or one balanced group — never stall.
                    match self.peek().map(|t| &t.tok) {
                        Some(Tok::Open(_)) => {
                            self.skip_group();
                        }
                        Some(_) => self.pos += 1,
                        None => return,
                    }
                }
            }
        }
    }

    /// Parses an `impl` header up to (not including) the `{`, returning
    /// the self-type name: `impl<T> Foo<T>` → `Foo`,
    /// `impl Trait for Bar` → `Bar`.
    fn impl_header(&mut self) -> Option<String> {
        let mut segs_before_for: Vec<String> = Vec::new();
        let mut segs_after_for: Vec<String> = Vec::new();
        let mut saw_for = false;
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            match &t.tok {
                Tok::Open('{') | Tok::Punct(";") => break,
                Tok::Punct("<") => {
                    angle += 1;
                    self.pos += 1;
                }
                Tok::Punct(">") => {
                    angle -= 1;
                    self.pos += 1;
                }
                Tok::Punct(">>") => {
                    angle -= 2;
                    self.pos += 1;
                }
                Tok::Ident(id) if id == "for" && angle == 0 => {
                    saw_for = true;
                    self.pos += 1;
                }
                Tok::Ident(id) if angle == 0 && id != "dyn" && id != "where" && id != "mut" => {
                    if saw_for {
                        segs_after_for.push(id.clone());
                    } else {
                        segs_before_for.push(id.clone());
                    }
                    self.pos += 1;
                }
                Tok::Open(_) => {
                    self.skip_group();
                }
                _ => self.pos += 1,
            }
        }
        let segs = if saw_for {
            segs_after_for
        } else {
            segs_before_for
        };
        segs.last().cloned()
    }

    /// Parses a function from just after the `fn` keyword.
    fn function(
        &mut self,
        module: &str,
        type_ctx: Option<&str>,
        is_test: bool,
        a: Attrs,
        is_pub: bool,
    ) {
        let Some(name_tok) = self.bump() else { return };
        let name = name_tok.ident().unwrap_or("").to_string();
        let line = name_tok.line;

        // Generics.
        if self.peek().is_some_and(|t| t.is_punct("<")) {
            let mut angle = 0i32;
            while let Some(t) = self.peek() {
                match t.tok {
                    Tok::Punct("<") => angle += 1,
                    Tok::Punct(">") => angle -= 1,
                    Tok::Punct(">>") => angle -= 2,
                    Tok::Open(_) => {
                        self.skip_group();
                        continue;
                    }
                    _ => {}
                }
                self.pos += 1;
                if angle <= 0 {
                    break;
                }
            }
        }

        // Parameters.
        let mut params = Vec::new();
        let mut has_self = false;
        if matches!(self.peek().map(|t| &t.tok), Some(Tok::Open('('))) {
            let start = self.pos + 1;
            let end = self.skip_group() - 1;
            let mut depth = 0i32;
            let mut seg_start = start;
            let mut segments = Vec::new();
            for i in start..end {
                match self.toks[i].tok {
                    Tok::Open(_) => depth += 1,
                    Tok::Close(_) => depth -= 1,
                    Tok::Punct("<") => depth += 1,
                    Tok::Punct(">") => depth -= 1,
                    Tok::Punct(">>") => depth -= 2,
                    Tok::Punct(",") if depth == 0 => {
                        segments.push((seg_start, i));
                        seg_start = i + 1;
                    }
                    _ => {}
                }
            }
            if seg_start < end {
                segments.push((seg_start, end));
            }
            for (s, e) in segments {
                let toks = &self.toks[s..e];
                let colon = toks.iter().position(|t| t.is_punct(":"));
                let pat = &toks[..colon.unwrap_or(toks.len())];
                if pat.iter().any(|t| t.is_ident("self")) {
                    has_self = true;
                    continue;
                }
                for t in pat {
                    if let Some(id) = t.ident() {
                        if id != "mut" && id != "ref" && id != "_" {
                            params.push(id.to_string());
                        }
                    }
                }
            }
        }

        // Return type: `-> …` up to `where`/`{`/`;`.
        let mut ret = (self.pos, self.pos);
        if self.peek().is_some_and(|t| t.is_punct("->")) {
            self.pos += 1;
            let start = self.pos;
            while let Some(t) = self.peek() {
                match &t.tok {
                    Tok::Open('{') | Tok::Punct(";") => break,
                    Tok::Ident(id) if id == "where" => break,
                    Tok::Open(_) => {
                        self.skip_group();
                    }
                    _ => self.pos += 1,
                }
            }
            ret = (start, self.pos);
        }
        // Where clause.
        while let Some(t) = self.peek() {
            match t.tok {
                Tok::Open('{') | Tok::Punct(";") => break,
                Tok::Open(_) => {
                    self.skip_group();
                }
                _ => self.pos += 1,
            }
        }

        let body = match self.peek().map(|t| &t.tok) {
            Some(Tok::Open('{')) => {
                let start = self.pos + 1;
                let end = self.skip_group() - 1;
                Some((start, end))
            }
            Some(Tok::Punct(";")) => {
                self.pos += 1;
                None
            }
            _ => None,
        };

        let qual = match type_ctx {
            Some(ty) => format!("{module}::{ty}::{name}"),
            None => format!("{module}::{name}"),
        };
        self.out.fns.push(FnItem {
            name,
            qual,
            type_ctx: type_ctx.map(str::to_string),
            line,
            is_test,
            is_deprecated: a.deprecated,
            is_pub,
            params,
            has_self,
            ret,
            body,
        });
    }
}

fn close_of(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

/// True when a `cfg(…)` attribute's argument tokens imply test-only
/// compilation: a bare `test` predicate at `not(…)`-depth zero.
/// `cfg(test)`, `cfg(all(test, feature = "x"))` → true;
/// `cfg(not(test))`, `cfg(feature = "test")` → false.
fn cfg_mentions_test(attr: &[Token]) -> bool {
    let mut not_depth = 0usize;
    let mut not_stack: Vec<usize> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0;
    while i < attr.len() {
        match &attr[i].tok {
            Tok::Ident(id)
                if id == "not"
                    && attr
                        .get(i + 1)
                        .is_some_and(|t| matches!(t.tok, Tok::Open('('))) =>
            {
                not_stack.push(depth + 1);
                not_depth += 1;
            }
            Tok::Ident(id) if id == "test" && not_depth == 0 => {
                // `feature = "test"` has the *string* "test"; a bare
                // `test` predicate is an identifier not preceded by `=`.
                let prev_eq = i > 0 && attr[i - 1].is_punct("=");
                let next_eq = attr.get(i + 1).is_some_and(|t| t.is_punct("="));
                if !prev_eq && !next_eq {
                    return true;
                }
            }
            Tok::Open('(') => depth += 1,
            Tok::Close(')') => {
                if not_stack.last() == Some(&depth) {
                    not_stack.pop();
                    not_depth -= 1;
                }
                depth = depth.saturating_sub(1);
            }
            _ => {}
        }
        i += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn parse_str(text: &str) -> ParsedFile {
        parse("crates/x/src/lib.rs", "x", lex(text))
    }

    #[test]
    fn plain_functions_and_methods() {
        let f = parse_str(
            "pub fn free(a: u32) -> u32 { a }\n\
             struct S;\n\
             impl S { fn method(&self, b: u32) {} }\n\
             impl std::fmt::Display for S { fn fmt(&self) {} }\n",
        );
        let quals: Vec<&str> = f.fns.iter().map(|i| i.qual.as_str()).collect();
        assert_eq!(quals, vec!["x::free", "x::S::method", "x::S::fmt"]);
        assert!(f.fns[0].is_pub && !f.fns[0].has_self);
        assert!(f.fns[1].has_self);
        assert_eq!(f.fns[1].params, vec!["b"]);
    }

    #[test]
    fn module_nesting() {
        let f = parse_str("mod a { mod b { fn deep() {} } } fn top() {}");
        let quals: Vec<&str> = f.fns.iter().map(|i| i.qual.as_str()).collect();
        assert_eq!(quals, vec!["x::a::b::deep", "x::top"]);
    }

    #[test]
    fn cfg_test_mod_marks_items_test() {
        let f = parse_str(
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn t() {}\n}\n",
        );
        assert!(!f.fns[0].is_test);
        assert!(f.fns[1].is_test && f.fns[2].is_test);
    }

    #[test]
    fn multiple_attributes_before_cfg_test_still_gate() {
        // Regression (lexical-scanner gap #3): the old scanner only kept
        // its `#[cfg(test)]` flag alive across *leading* attribute lines;
        // attributes in other orders, or several on one line, slipped by.
        let f = parse_str(
            "#[derive(Debug)]\n#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() {} }\n\
             #[allow(dead_code)] #[cfg(test)] fn gated() {}\n\
             fn real() {}\n",
        );
        assert!(f.fns[0].is_test, "mod under stacked attrs");
        assert!(f.fns[1].is_test, "fn with cfg(test) second on one line");
        assert!(!f.fns[2].is_test);
    }

    #[test]
    fn cfg_not_test_is_not_test() {
        let f = parse_str(
            "#[cfg(not(test))] fn prod() {}\n\
             #[cfg(all(test, feature = \"x\"))] fn gated() {}\n\
             #[cfg(feature = \"test\")] fn feat() {}\n",
        );
        assert!(!f.fns[0].is_test);
        assert!(f.fns[1].is_test);
        assert!(!f.fns[2].is_test);
    }

    #[test]
    fn deprecated_attr_detected() {
        let f = parse_str("#[deprecated(note = \"use new\")]\npub fn old() {}\nfn fresh() {}");
        assert!(f.fns[0].is_deprecated);
        assert!(!f.fns[1].is_deprecated);
    }

    #[test]
    fn allow_deprecated_lines_recorded_outside_tests() {
        let f = parse_str(
            "#[allow(deprecated)]\nfn shim() {}\n#[cfg(test)]\nmod t { #[allow(deprecated)] fn u() {} }",
        );
        assert_eq!(f.allow_deprecated, vec![1]);
    }

    #[test]
    fn generics_and_where_clauses() {
        let f = parse_str(
            "fn g<T: Into<Vec<u8>>>(x: T) -> Result<Vec<u8>, String> where T: Clone { x.into() }",
        );
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].params, vec!["x"]);
        let ret: Vec<_> = f.tokens[f.fns[0].ret.0..f.fns[0].ret.1]
            .iter()
            .filter_map(|t| t.ident())
            .collect();
        assert_eq!(ret, vec!["Result", "Vec", "u8", "String"]);
    }

    #[test]
    fn bodies_are_ranged_and_exclusive() {
        let f = parse_str("fn f() { let x = { 1 }; }");
        let (s, e) = f.fns[0].body.unwrap();
        let body: Vec<_> = f.tokens[s..e].iter().filter_map(|t| t.ident()).collect();
        assert_eq!(body, vec!["let", "x"]);
    }

    #[test]
    fn impl_header_with_nested_generics() {
        let f = parse_str("impl Wrapper<Vec<Inner<u8>>> { fn m(&self) {} }");
        assert_eq!(f.fns[0].type_ctx.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn trait_methods_get_trait_context() {
        let f = parse_str("trait Sink { fn emit(&self); fn both(&self) { self.emit() } }");
        let quals: Vec<&str> = f.fns.iter().map(|i| i.qual.as_str()).collect();
        assert_eq!(quals, vec!["x::Sink::emit", "x::Sink::both"]);
        assert!(f.fns[0].body.is_none());
        assert!(f.fns[1].body.is_some());
    }

    #[test]
    fn tuple_struct_and_const_items_skipped() {
        let f = parse_str(
            "struct T(u32, u32);\nconst N: usize = 4;\nstatic S: &str = \"x\";\ntype A = u32;\nfn f() {}",
        );
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "f");
    }

    #[test]
    fn destructured_params() {
        let f = parse_str("fn f((a, b): (u32, u32), Point { x, y }: Point) {}");
        assert_eq!(f.fns[0].params, vec!["a", "b", "Point", "x", "y"]);
    }
}
