//! The five mapping-state invariants (I1–I5).
//!
//! Each check is a pure function over an [`IsolationModel`]; violations
//! carry the exact physical page, every party to the conflict, and the
//! provenance (share handle / stream / device) needed to act on the report.
//!
//! * **I1 — exclusive writer**: no physical page is writable from two
//!   partitions' stage-2 tables unless it belongs to an *active* share whose
//!   two endpoints are exactly those partitions (R3.1: mutual isolation of
//!   partitions; the sRPC ring is the one sanctioned double-writer).
//! * **I2 — normal-world confinement**: every TZASC secure region stays
//!   inside the secure DRAM pool, every valid stage-2 grant targets a
//!   TZASC-secure page, and no normal-world device's SMMU stream reaches a
//!   secure page (R3.2: enclave memory is unreadable from the normal world).
//! * **I3 — device/DMA ownership**: each device-tree device is owned by
//!   exactly one partition, and a partition's DMA stream only reaches pages
//!   that partition owns, pages of a share it is an endpoint of, or
//!   monitor-owned staging pages that no partition maps (defeats the TOCTOU
//!   of retargeting another partition's DMA engine).
//! * **I4 — revocation completeness**: for every poisoned share, the
//!   survivor's stage-2 and SMMU entries for the share pages are invalid
//!   (the proceed step actually cut access), and once the failed partition
//!   has been recovered it retains *no* mapping of those pages at all
//!   (crashed partitions leak no information, §IV-D).
//! * **I5 — devtree/TZPC agreement**: the TZPC is locked down, enforces
//!   exactly the worlds the attested device tree declares, and assigns no
//!   device the tree does not know (defeats malicious reconfiguration and
//!   MMIO remapping, §IV-A / §V-A).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use cronus_core::CronusSystem;
use cronus_sim::{AsId, World};
use cronus_spm::spm::ShareState;

use crate::model::{share_state_name, world_name, IsolationModel, ShareModel};

/// Identifier of one invariant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Invariant {
    /// I1 — exclusive writer.
    ExclusiveWriter,
    /// I2 — normal-world confinement.
    NormalWorldConfinement,
    /// I3 — device/DMA ownership.
    DeviceOwnership,
    /// I4 — revocation completeness.
    RevocationCompleteness,
    /// I5 — devtree/TZPC agreement.
    DevtreeTzpcAgreement,
}

impl Invariant {
    /// All invariants, in report order.
    pub const ALL: [Invariant; 5] = [
        Invariant::ExclusiveWriter,
        Invariant::NormalWorldConfinement,
        Invariant::DeviceOwnership,
        Invariant::RevocationCompleteness,
        Invariant::DevtreeTzpcAgreement,
    ];

    /// Short code used in reports (`I1`..`I5`).
    pub fn code(self) -> &'static str {
        match self {
            Invariant::ExclusiveWriter => "I1",
            Invariant::NormalWorldConfinement => "I2",
            Invariant::DeviceOwnership => "I3",
            Invariant::RevocationCompleteness => "I4",
            Invariant::DevtreeTzpcAgreement => "I5",
        }
    }

    /// Human-readable name.
    pub fn title(self) -> &'static str {
        match self {
            Invariant::ExclusiveWriter => "exclusive-writer",
            Invariant::NormalWorldConfinement => "normal-world-confinement",
            Invariant::DeviceOwnership => "device-ownership",
            Invariant::RevocationCompleteness => "revocation-completeness",
            Invariant::DevtreeTzpcAgreement => "devtree-tzpc-agreement",
        }
    }
}

impl std::fmt::Display for Invariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.code(), self.title())
    }
}

/// One concrete counterexample to an invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The invariant that does not hold.
    pub invariant: Invariant,
    /// The physical page at the center of the counterexample, when the
    /// violation is page-granular (device-level findings carry `None`).
    pub ppn: Option<u64>,
    /// Full story: every mapper involved and the provenance.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.ppn {
            Some(ppn) => write!(f, "{}: ppn {:#x}: {}", self.invariant, ppn, self.detail),
            None => write!(f, "{}: {}", self.invariant, self.detail),
        }
    }
}

/// The outcome of auditing one model.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct AuditReport {
    /// Every counterexample found, in invariant order.
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// True when every invariant holds.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Counterexamples to one invariant.
    pub fn of(&self, invariant: Invariant) -> Vec<&Violation> {
        self.violations
            .iter()
            .filter(|v| v.invariant == invariant)
            .collect()
    }

    /// Renders the per-invariant pass/fail report with counterexamples.
    pub fn render(&self) -> String {
        let mut out = format!(
            "isolation audit: {} invariant(s), {} violation(s)\n",
            Invariant::ALL.len(),
            self.violations.len()
        );
        for inv in Invariant::ALL {
            let hits = self.of(inv);
            if hits.is_empty() {
                let _ = writeln!(out, "  {inv}: ok");
            } else {
                let _ = writeln!(out, "  {inv}: {} violation(s)", hits.len());
                for v in hits {
                    match v.ppn {
                        Some(ppn) => {
                            let _ = writeln!(out, "    ppn {:#x}: {}", ppn, v.detail);
                        }
                        None => {
                            let _ = writeln!(out, "    {}", v.detail);
                        }
                    }
                }
            }
        }
        out
    }
}

/// Extracts the model from a running system and checks all invariants.
pub fn audit_system(sys: &CronusSystem) -> AuditReport {
    check_model(&IsolationModel::extract(sys))
}

/// Checks all five invariants against a model.
pub fn check_model(model: &IsolationModel) -> AuditReport {
    let mut violations = Vec::new();
    violations.extend(check_exclusive_writer(model));
    violations.extend(check_normal_world_confinement(model));
    violations.extend(check_device_ownership(model));
    violations.extend(check_revocation_completeness(model));
    violations.extend(check_devtree_tzpc_agreement(model));
    AuditReport { violations }
}

fn share_provenance(model: &IsolationModel, share: &ShareModel) -> String {
    let via = model
        .streams
        .iter()
        .find(|s| s.share == share.handle)
        .map(|s| format!(" via stream {}", s.id))
        .unwrap_or_default();
    format!(
        "share h{} ({} <-> {}, {}){}",
        share.handle,
        share.owner.0,
        share.peer.0,
        share_state_name(share.state),
        via
    )
}

/// I1: at most one partition holds a valid writable stage-2 entry per page,
/// except the two endpoints of an active share covering that page.
pub fn check_exclusive_writer(model: &IsolationModel) -> Vec<Violation> {
    let mut writers: BTreeMap<u64, Vec<AsId>> = BTreeMap::new();
    for p in &model.partitions {
        for e in &p.stage2 {
            if e.valid && e.perms.write {
                writers.entry(e.ppn).or_default().push(p.asid);
            }
        }
    }
    let mut out = Vec::new();
    for (ppn, mappers) in &writers {
        if mappers.len() < 2 {
            continue;
        }
        let sanctioned = model.shares.iter().any(|s| {
            s.state == ShareState::Active
                && s.pages.contains(ppn)
                && s.endpoint_partitions() == *mappers
        });
        if sanctioned {
            continue;
        }
        let provenance = model
            .shares
            .iter()
            .filter(|s| s.pages.contains(ppn))
            .map(|s| share_provenance(model, s))
            .collect::<Vec<_>>()
            .join(", ");
        let provenance = if provenance.is_empty() {
            "no share covers this page".to_string()
        } else {
            format!("nearest grant: {provenance}")
        };
        out.push(Violation {
            invariant: Invariant::ExclusiveWriter,
            ppn: Some(*ppn),
            detail: format!(
                "writable from {} partitions [{}] without a sanctioning active share; {}",
                mappers.len(),
                join_asids(mappers),
                provenance
            ),
        });
    }
    out
}

/// I2: TZASC secure regions stay inside the secure pool, stage-2 grants
/// only target TZASC-secure pages, and normal-world devices never DMA into
/// secure pages.
pub fn check_normal_world_confinement(model: &IsolationModel) -> Vec<Violation> {
    let mut out = Vec::new();
    for region in &model.tzasc_secure_regions {
        if !model.secure_pages.contains_span(region) {
            out.push(Violation {
                invariant: Invariant::NormalWorldConfinement,
                ppn: Some(region.start),
                detail: format!(
                    "tzasc secure region {} extends outside the secure dram pool {}",
                    region, model.secure_pages
                ),
            });
        }
    }
    for p in &model.partitions {
        for e in &p.stage2 {
            if e.valid && !model.tzasc_secure(e.ppn) {
                out.push(Violation {
                    invariant: Invariant::NormalWorldConfinement,
                    ppn: Some(e.ppn),
                    detail: format!(
                        "partition {} holds a valid stage-2 grant to a page the tzasc \
                         leaves readable from the normal world",
                        p.asid
                    ),
                });
            }
        }
    }
    for d in &model.devices {
        if d.tzpc_world != World::Normal {
            continue;
        }
        if let Some(stream) = model.smmu_stream(d.device) {
            for e in &stream.entries {
                if e.valid && model.tzasc_secure(e.ppn) {
                    out.push(Violation {
                        invariant: Invariant::NormalWorldConfinement,
                        ppn: Some(e.ppn),
                        detail: format!(
                            "normal-world device dev{} (smmu stream {}) holds a valid \
                             grant into tzasc-secure memory",
                            d.device, stream.stream
                        ),
                    });
                }
            }
        }
    }
    out
}

/// I3: one owner per device-tree device; each partition's DMA stream only
/// reaches its own pages, its shares' pages, or pages no partition maps.
pub fn check_device_ownership(model: &IsolationModel) -> Vec<Violation> {
    let mut out = Vec::new();
    for d in &model.devices {
        if d.devtree_world.is_some() && d.owners.len() != 1 {
            out.push(Violation {
                invariant: Invariant::DeviceOwnership,
                ppn: None,
                detail: format!(
                    "device dev{} must be owned by exactly one partition, found [{}]",
                    d.device,
                    join_asids(&d.owners)
                ),
            });
        }
    }
    for p in &model.partitions {
        let Some(stream_id) = p.dma_stream else {
            continue;
        };
        let Some(stream) = model.smmu_stream(stream_id) else {
            continue;
        };
        for e in &stream.entries {
            if !e.valid {
                continue;
            }
            if p.stage2_entry(e.ppn).is_some_and(|s2| s2.valid) {
                continue; // DMA into the partition's own memory.
            }
            let shared_with_p = model.shares.iter().any(|s| {
                s.state != ShareState::Reclaimed
                    && s.pages.contains(&e.ppn)
                    && (s.owner.0 == p.asid || s.peer.0 == p.asid)
            });
            if shared_with_p {
                continue; // DMA into a share this partition is party to.
            }
            let foreign_owners: Vec<AsId> = model
                .partitions
                .iter()
                .filter(|q| q.asid != p.asid && q.stage2_entry(e.ppn).is_some_and(|s2| s2.valid))
                .map(|q| q.asid)
                .collect();
            if foreign_owners.is_empty() {
                continue; // Monitor-owned staging page: no partition maps it.
            }
            out.push(Violation {
                invariant: Invariant::DeviceOwnership,
                ppn: Some(e.ppn),
                detail: format!(
                    "smmu stream {} of partition {} (dev{}) reaches a page validly \
                     mapped by [{}] with no covering share",
                    stream.stream,
                    p.asid,
                    p.device.map_or("?".into(), |d| d.to_string()),
                    join_asids(&foreign_owners)
                ),
            });
        }
    }
    out
}

/// I4: poisoned shares really are cut off — the survivor's mappings are
/// invalid, and a recovered ex-failed endpoint retains no mapping at all.
pub fn check_revocation_completeness(model: &IsolationModel) -> Vec<Violation> {
    let mut out = Vec::new();
    for share in &model.shares {
        let ShareState::Poisoned { survivor } = share.state else {
            continue;
        };
        let provenance = share_provenance(model, share);
        let failed = if share.owner.0 == survivor {
            share.peer.0
        } else {
            share.owner.0
        };
        let survivor_part = model.partition(survivor);
        let survivor_stream = survivor_part
            .and_then(|p| p.dma_stream)
            .and_then(|s| model.smmu_stream(s));
        let failed_part = model.partition(failed);
        let failed_stream = failed_part
            .and_then(|p| p.dma_stream)
            .and_then(|s| model.smmu_stream(s));
        // Mid-failover (between proceed and recovery) the failed side's own
        // mappings are still being torn down; only check it once recovered.
        let failed_recovered = failed_part.is_some_and(|p| !p.failed);
        for ppn in &share.pages {
            if let Some(p) = survivor_part {
                if p.stage2_entry(*ppn).is_some_and(|e| e.valid) {
                    out.push(Violation {
                        invariant: Invariant::RevocationCompleteness,
                        ppn: Some(*ppn),
                        detail: format!(
                            "survivor {survivor} still holds a valid stage-2 entry for a \
                             page of poisoned {provenance}"
                        ),
                    });
                }
            }
            if let Some(s) = survivor_stream {
                if s.entries.iter().any(|e| e.ppn == *ppn && e.valid) {
                    out.push(Violation {
                        invariant: Invariant::RevocationCompleteness,
                        ppn: Some(*ppn),
                        detail: format!(
                            "survivor {survivor}'s smmu stream {} still holds a valid \
                             grant for a page of poisoned {provenance}",
                            s.stream
                        ),
                    });
                }
            }
            if failed_recovered {
                if let Some(p) = failed_part {
                    if p.stage2_entry(*ppn).is_some() {
                        out.push(Violation {
                            invariant: Invariant::RevocationCompleteness,
                            ppn: Some(*ppn),
                            detail: format!(
                                "recovered partition {failed} retains a stage-2 entry \
                                 for a page of poisoned {provenance}"
                            ),
                        });
                    }
                }
                if let Some(s) = failed_stream {
                    if s.entries.iter().any(|e| e.ppn == *ppn && e.valid) {
                        out.push(Violation {
                            invariant: Invariant::RevocationCompleteness,
                            ppn: Some(*ppn),
                            detail: format!(
                                "recovered partition {failed}'s smmu stream {} retains a \
                                 valid grant for a page of poisoned {provenance}",
                                s.stream
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

/// I5: the TZPC is locked and agrees with the attested device tree.
pub fn check_devtree_tzpc_agreement(model: &IsolationModel) -> Vec<Violation> {
    let mut out = Vec::new();
    if !model.tzpc_locked {
        out.push(Violation {
            invariant: Invariant::DevtreeTzpcAgreement,
            ppn: None,
            detail: "tzpc is not locked down after boot; device worlds can be \
                     reconfigured at runtime"
                .to_string(),
        });
    }
    for d in &model.devices {
        match d.devtree_world {
            Some(world) if world != d.tzpc_world => out.push(Violation {
                invariant: Invariant::DevtreeTzpcAgreement,
                ppn: None,
                detail: format!(
                    "device dev{}: device tree attests world={} but the tzpc enforces {}",
                    d.device,
                    world_name(world),
                    world_name(d.tzpc_world)
                ),
            }),
            Some(_) => {}
            None => out.push(Violation {
                invariant: Invariant::DevtreeTzpcAgreement,
                ppn: None,
                detail: format!(
                    "device dev{} is known to the tzpc or spm but has no attested \
                     device-tree node",
                    d.device
                ),
            }),
        }
    }
    out
}

fn join_asids(ids: &[AsId]) -> String {
    ids.iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}
