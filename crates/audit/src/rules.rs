//! Rule catalog and repo policy configuration for cronus-lint v2.
//!
//! This module is the single place where *policy* lives: which functions
//! are secret sources, observable sinks and sanitizers (the FORENSICS.md
//! redaction contract), which entry points root panic reachability (the
//! attacker-reachable sRPC dispatch and trap-recovery surface), and which
//! directory scopes each legacy rule applies to. The engine
//! ([`crate::engine`]) mechanically applies these tables; changing policy
//! means editing this file, not the analyses.

use crate::graph::{path_ends_with, CallGraph, FnId};
use crate::lex::Tok;
use crate::syntax::ParsedFile;
use crate::taint::{Step, TaintConfig};

/// One finding of any rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line number (0 for file-level findings).
    pub line: u32,
    /// What was found and why it is rejected.
    pub message: String,
    /// Counterexample chain (taint hops or call path); empty for purely
    /// local rules.
    pub chain: Vec<Step>,
}

/// A catalog entry: name plus the `--explain` text.
#[derive(Clone, Copy, Debug)]
pub struct Rule {
    /// Stable rule name (used in findings, baseline and allowlist docs).
    pub name: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Multi-line explanation for `lint --explain <rule>`.
    pub explain: &'static str,
}

/// Every rule the engine can emit, in report order.
pub const RULES: [Rule; 7] = [
    Rule {
        name: "secret-taint",
        summary: "secret values must not reach observable sinks unredacted",
        explain: "Taint is seeded at declared secret sources (DH shared secrets, \
schnorr key derivation, stream-cipher plaintexts, forensics chain keys, decoded \
sRPC payloads and grant-arena reads) and propagated through assignments, \
`{ident}` inline format captures and call edges. Reaching a declared sink — \
recorder spans/metrics/labels, ledger records, black-box annotations, bench \
emitters — is a finding carrying the full source-to-sink chain. Passing the \
value through a sanitizer (measure/sha256/hmac) first clears the taint: that \
is the FORENSICS.md redaction contract, checked statically.",
    },
    Rule {
        name: "panic-reachability",
        summary: "no reachable panic site on the sRPC dispatch / trap-recovery surface",
        explain: "Every panic!/unreachable!/todo!/unimplemented!/assert! site and \
every slice-index expression in crates/{core,spm,sim,mos,crypto,forensics} — \
plus .unwrap()/.expect() in the crates the no-unwrap rule does not already \
cover — is reported if the call graph reaches it from an sRPC dispatch or \
trap-recovery entry point (CronusSystem::{call,app_ecall,sync,...}, \
Call::{start,sync}, StreamBuilder::{open,reopen}, Spm::{handle_trap,...}). \
The finding carries the entry-point-to-site call path. Unreachable sites are \
not findings: a panic a remote caller cannot trigger is not attack surface. \
Accepted sites are ratcheted in LINT_BASELINE.json.",
    },
    Rule {
        name: "deprecated-api",
        summary: "no calls to #[deprecated] items outside the compat shim",
        explain: "Call sites are resolved through the call graph; any call whose \
every candidate target carries #[deprecated] is a finding unless the caller \
lives in crates/core/src/compat.rs or test code. `#[allow(deprecated)]` \
attributes outside the shim are findings too — silencing the compiler is not \
migrating. This replaces the old token-matching rule, so aliased or re-exported \
calls are caught and longer method names cannot false-positive.",
    },
    Rule {
        name: "no-unwrap-in-trusted-path",
        summary: "no .unwrap()/.expect() in trusted non-test code",
        explain: "crates/{core,spm,sim,forensics}/src must not contain \
.unwrap()/.expect() outside test code, reachable or not: trusted code returns \
typed errors. Sites are now found syntactically (string literals and comments \
cannot false-positive; unwrap_or/expect_err cannot match). Justified uses are \
enumerated with reasons in crates/audit/lint_allowlist.txt; unused entries are \
findings so the list cannot rot.",
    },
    Rule {
        name: "no-wall-clock",
        summary: "wall-clock reads only in crates/obs and crates/bench",
        explain: "std::time::{Instant,SystemTime} reads outside crates/obs and \
crates/bench break simulation determinism; everything else runs on the \
simulated clock. The deterministic observatory files \
crates/obs/src/{queue,slo,bundle,diff,meter,fairness}.rs are carved out of \
the exemption: they promise byte-identical output per seed.",
    },
    Rule {
        name: "no-string-errors",
        summary: "public fallible APIs use typed errors, not String",
        explain: "pub fn ... -> Result<_, String> in \
crates/{core,spm,sim,mos,forensics}/src (and the strict observatory files) is \
a finding: callers cannot match on a string. Checked on the parsed return-type \
tokens, so multi-line signatures and aliases are seen.",
    },
    Rule {
        name: "baseline-ratchet",
        summary: "LINT_BASELINE.json counts only go down",
        explain: "Findings ratchet against the committed LINT_BASELINE.json: a \
(rule, file) pair may never exceed its baselined count, and a baseline entry \
whose count exceeds reality is stale and must be shrunk (run \
scripts/relint.sh). Unknown findings and stale entries both fail ci.sh --lint.",
    },
];

/// Looks a rule up by name.
pub fn rule(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

// ---------------------------------------------------------------------
// Scopes (path prefixes; carried over from lint v1 — see AUDIT.md).
// ---------------------------------------------------------------------

/// Directories whose non-test code must be unwrap/expect-free.
pub const NO_UNWRAP_SCOPES: [&str; 4] = [
    "crates/core/src",
    "crates/spm/src",
    "crates/sim/src",
    "crates/forensics/src",
];

/// Crates allowed to read the wall clock.
pub const WALL_CLOCK_EXEMPT: [&str; 2] = ["crates/obs", "crates/bench"];

/// Observatory analysis files held to the strict rules despite living in
/// the otherwise-exempt `crates/obs`.
pub const STRICT_OBS_FILES: [&str; 6] = [
    "crates/obs/src/bundle.rs",
    "crates/obs/src/diff.rs",
    "crates/obs/src/fairness.rs",
    "crates/obs/src/meter.rs",
    "crates/obs/src/queue.rs",
    "crates/obs/src/slo.rs",
];

/// Directories whose public APIs must not use `String` errors.
pub const NO_STRING_ERROR_SCOPES: [&str; 5] = [
    "crates/core/src",
    "crates/spm/src",
    "crates/sim/src",
    "crates/mos/src",
    "crates/forensics/src",
];

/// Trusted crates whose reachable panic sites are findings.
pub const PANIC_SCOPES: [&str; 6] = [
    "crates/core/src",
    "crates/spm/src",
    "crates/sim/src",
    "crates/mos/src",
    "crates/crypto/src",
    "crates/forensics/src",
];

/// The compat shim: the one file allowed to define and reference
/// deprecated APIs.
pub const DEPRECATED_EXEMPT: &str = "crates/core/src/compat.rs";

/// True when `path` sits under one of `scopes`.
pub fn in_scope(path: &str, scopes: &[&str]) -> bool {
    scopes.iter().any(|s| path.starts_with(s))
}

// ---------------------------------------------------------------------
// Taint policy: qualified-path suffixes, resolved against the call
// graph at analysis time. Segment-aligned, so `KeyPair::from_seed`
// matches `cronus_crypto::schnorr::KeyPair::from_seed` but not
// `...::DhKeyPair::from_seed`.
// ---------------------------------------------------------------------

/// Functions whose return value is secret.
pub const SOURCE_PATHS: [&str; 10] = [
    // Crypto key material.
    "DhKeyPair::from_seed",
    "DhKeyPair::agree",
    "KeyPair::from_seed",
    "KeyPair::derive",
    "StreamCipher::open",
    // Forensics chain keys (pre-redaction).
    "ledger::chain_key",
    // sRPC payload bytes and grant-arena pages.
    "ring::decode_request",
    "ring::decode_slot_request",
    "ring::decode_result",
    "CronusSystem::shared_read",
];

/// Functions whose arguments become normal-world observable.
pub const SINK_PATHS: [&str; 23] = [
    // Recorder / metrics labels and values.
    "FlightRecorder::counter_add",
    "MetricsRegistry::counter_add",
    "FlightRecorder::gauge_set",
    "MetricsRegistry::gauge_set",
    "FlightRecorder::observe",
    "MetricsRegistry::observe",
    "Histogram::observe",
    "FlightRecorder::begin_span",
    "FlightRecorder::complete_span",
    "FlightRecorder::charge_detail",
    "TimeProfiler::charge_detail",
    // Ledger records and black-box snapshots.
    "Ledger::append",
    "LedgerInner::append",
    "Ledger::annotate_last_blackbox",
    // BENCH_* / BUNDLE_* emitters.
    "baseline::write",
    "baseline::write_bundle",
    "baseline::emit",
    // Resource-meter usage records: ledgers hold sizes and counts only;
    // payload or grant-arena *bytes* must never reach them.
    "FlightRecorder::meter_count",
    "FlightRecorder::meter_occupy",
    "FlightRecorder::meter_wait",
    "ResourceMeter::add_count",
    "ResourceMeter::record_occupancy",
    "ResourceMeter::record_wait",
];

/// Functions that launder taint: one-way measurement / redaction.
pub const SANITIZER_PATHS: [&str; 8] = [
    "cronus_crypto::measure",
    "cronus_crypto::measure_chained",
    "sha256::sha256",
    "Sha256::update",
    "Sha256::finalize",
    "hmac::hmac_sha256",
    // Declassifiers: extracting the public half of a key pair yields a
    // value that is observable by design (the ledger deliberately
    // records `dh_public` in `KeyExchange` events).
    "DhKeyPair::public",
    "KeyPair::public",
];

/// sRPC dispatch and trap-recovery entry points: the reachability roots.
pub const ROOT_PATHS: [&str; 13] = [
    "CronusSystem::call",
    "CronusSystem::app_ecall",
    "CronusSystem::sync",
    "CronusSystem::close_stream",
    "CronusSystem::inject_partition_failure",
    "CronusSystem::recover_partition",
    "CronusSystem::shared_read",
    "Call::start",
    "Call::sync",
    "StreamBuilder::open",
    "StreamBuilder::reopen",
    "Spm::handle_trap",
    "Spm::detect_failures",
];

/// Resolves the suffix tables into a [`TaintConfig`] over a built graph.
pub fn taint_config(g: &CallGraph) -> TaintConfig {
    let resolve = |paths: &[&str]| {
        let mut out = std::collections::BTreeSet::new();
        for p in paths {
            out.extend(g.find(p));
        }
        out
    };
    TaintConfig {
        sources: resolve(&SOURCE_PATHS),
        sinks: resolve(&SINK_PATHS),
        sanitizers: resolve(&SANITIZER_PATHS),
    }
}

/// Resolves the reachability roots over a built graph.
pub fn roots(g: &CallGraph) -> Vec<FnId> {
    let mut out = Vec::new();
    for p in ROOT_PATHS {
        out.extend(g.find(p));
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// True when `qual` names a declared taint source (used by doc tests and
/// fixtures to assert the tables stay segment-aligned).
pub fn is_declared_source(qual: &str) -> bool {
    SOURCE_PATHS.iter().any(|s| path_ends_with(qual, s))
}

// ---------------------------------------------------------------------
// Token-level legacy rules, now running on the parsed stream.
// ---------------------------------------------------------------------

/// `no-wall-clock`: `Instant`/`SystemTime` reads outside the exemption.
pub fn wall_clock_findings(file: &ParsedFile, out: &mut Vec<Finding>) {
    let strict = STRICT_OBS_FILES.contains(&file.path.as_str());
    if in_scope(&file.path, &WALL_CLOCK_EXEMPT) && !strict {
        return;
    }
    for (i, t) in file.tokens.iter().enumerate() {
        let Tok::Ident(id) = &t.tok else { continue };
        if id != "Instant" && id != "SystemTime" {
            continue;
        }
        if file.is_test_token(i) {
            continue;
        }
        // `std::time::Instant` (a use or a fully qualified mention) or
        // `Instant::now()`.
        let after_time =
            i >= 2 && file.tokens[i - 1].is_punct("::") && file.tokens[i - 2].is_ident("time");
        let before_now = file.tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && file.tokens.get(i + 2).is_some_and(|t| t.is_ident("now"));
        if after_time || before_now {
            out.push(Finding {
                rule: "no-wall-clock",
                path: file.path.clone(),
                line: t.line,
                message: format!(
                    "`{id}` wall-clock read outside crates/obs and crates/bench \
                     breaks simulation determinism; use the simulated clock"
                ),
                chain: Vec::new(),
            });
        }
    }
}

/// `no-string-errors`: `pub fn … -> Result<_, String>` on the parsed
/// return-type tokens (multi-line signatures included).
pub fn string_error_findings(file: &ParsedFile, out: &mut Vec<Finding>) {
    let strict = STRICT_OBS_FILES.contains(&file.path.as_str());
    if !in_scope(&file.path, &NO_STRING_ERROR_SCOPES) && !strict {
        return;
    }
    for item in &file.fns {
        if !item.is_pub || item.is_test {
            continue;
        }
        let (a, b) = item.ret;
        let ret = &file.tokens[a..b.min(file.tokens.len())];
        let has_result = ret.iter().any(|t| t.is_ident("Result"));
        // `, String` closing the Result's angle brackets: the next token
        // is `>`/`>>` (or a trailing comma before it, or end-of-type).
        let string_err = (0..ret.len()).any(|i| {
            ret[i].is_punct(",")
                && ret.get(i + 1).is_some_and(|t| t.is_ident("String"))
                && matches!(
                    ret.get(i + 2).map(|t| &t.tok),
                    None | Some(Tok::Punct(">" | ">>" | ","))
                )
        });
        if has_result && string_err {
            out.push(Finding {
                rule: "no-string-errors",
                path: file.path.clone(),
                line: item.line,
                message: format!(
                    "`{}` is a public fallible API with a bare `String` error; \
                     define a typed error enum",
                    item.name
                ),
                chain: Vec::new(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::syntax::parse;

    fn file(path: &str, text: &str) -> ParsedFile {
        parse(path, "x", lex(text))
    }

    #[test]
    fn catalog_names_are_unique_and_lookup_works() {
        let mut names: Vec<&str> = RULES.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), RULES.len());
        assert!(rule("secret-taint").is_some());
        assert!(rule("nope").is_none());
    }

    #[test]
    fn wall_clock_flagged_outside_obs_and_bench() {
        let mut out = Vec::new();
        wall_clock_findings(
            &file(
                "crates/core/src/x.rs",
                "fn f() { let t = std::time::Instant::now(); }",
            ),
            &mut out,
        );
        assert_eq!(out.len(), 1, "one finding at the Instant token: {out:?}");
        out.clear();
        wall_clock_findings(
            &file(
                "crates/bench/src/x.rs",
                "fn f() { let t = std::time::Instant::now(); }",
            ),
            &mut out,
        );
        assert!(out.is_empty());
        // Strict observatory files lose the exemption.
        wall_clock_findings(
            &file(
                "crates/obs/src/queue.rs",
                "fn f() { let t = Instant::now(); }",
            ),
            &mut out,
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn wall_clock_in_string_or_test_is_clean() {
        let mut out = Vec::new();
        wall_clock_findings(
            &file(
                "crates/core/src/x.rs",
                "fn f() { let s = \"std::time::Instant::now()\"; }\n\
                 #[cfg(test)]\nmod t { fn g() { let t = std::time::Instant::now(); } }",
            ),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn string_errors_flagged_across_lines() {
        let mut out = Vec::new();
        string_error_findings(
            &file(
                "crates/spm/src/x.rs",
                "pub fn f(\n    a: u32,\n) -> Result<\n    u32,\n    String,\n> { Err(String::new()) }",
            ),
            &mut out,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "no-string-errors");
    }

    #[test]
    fn typed_errors_and_private_fns_are_clean() {
        let mut out = Vec::new();
        string_error_findings(
            &file(
                "crates/spm/src/x.rs",
                "pub fn f() -> Result<u32, SpmError> { Ok(0) }\n\
                 fn g() -> Result<u32, String> { Ok(0) }",
            ),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn declared_sources_are_segment_aligned() {
        assert!(is_declared_source(
            "cronus_crypto::schnorr::KeyPair::from_seed"
        ));
        assert!(!is_declared_source("cronus_ptest::Rng::from_seed"));
    }
}
