//! Interprocedural secret-taint analysis over the syntactic call graph.
//!
//! Taint is seeded at *declared* secret sources — functions whose return
//! value is key material or pre-redaction payload bytes — and propagated
//! statement by statement through assignments, `{ident}` inline format
//! captures, and call edges (via per-function summaries iterated to a
//! global monotone fixpoint). A finding is produced when tainted data
//! reaches a declared observable sink (span/metric labels, ledger
//! records, black-box snapshots, bench emitters), carrying the full
//! source→sink hop list as a counterexample chain.
//!
//! Declared *sanitizers* (digest/HMAC/redaction functions) clear taint:
//! a value that only ever flows through a sanitizer argument list is
//! clean, which is exactly the FORENSICS.md redaction contract —
//! secrets may be recorded only after measurement.

use std::collections::{BTreeMap, BTreeSet};

use crate::facts::inline_captures;
use crate::graph::{CallGraph, FnId};
use crate::lex::Tok;
use crate::syntax::ParsedFile;

/// One hop of a taint counterexample chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Step {
    /// Repo-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// What happened at this hop.
    pub note: String,
}

/// A source→sink witness: ordered hops.
pub type Chain = Vec<Step>;

/// A secret value reaching an observable sink.
#[derive(Clone, Debug)]
pub struct TaintFinding {
    /// File of the sink call.
    pub path: String,
    /// Line of the sink call.
    pub line: u32,
    /// One-line description naming the sink.
    pub message: String,
    /// The full counterexample chain, source first.
    pub chain: Chain,
}

/// Source / sink / sanitizer sets as resolved function ids.
#[derive(Debug, Default)]
pub struct TaintConfig {
    /// Functions whose return value is secret.
    pub sources: BTreeSet<FnId>,
    /// Functions whose arguments become normal-world observable.
    pub sinks: BTreeSet<FnId>,
    /// Functions that launder taint (digest, HMAC, redaction).
    pub sanitizers: BTreeSet<FnId>,
}

/// What a callee does with taint, learned by the fixpoint.
#[derive(Clone, Debug, Default)]
struct Summary {
    /// The function returns secret data (chain explains why).
    returns_secret: Option<Chain>,
    /// Some parameter flows to the return value.
    returns_param: bool,
    /// Some parameter flows into a sink inside the function; the chain
    /// holds the internal hops.
    param_to_sink: Option<Chain>,
}

/// Runs the analysis over the whole graph. Deterministic: findings are
/// ordered by (path, line, message) and chains are built in statement
/// order.
pub fn analyze(g: &CallGraph, files: &[ParsedFile], cfg: &TaintConfig) -> Vec<TaintFinding> {
    let mut summaries: Vec<Summary> = vec![Summary::default(); g.fns.len()];
    // Global fixpoint: summary fields only ever go from unknown to
    // known, so this terminates; the cap is a safety net.
    for _ in 0..g.fns.len().max(1) {
        let mut changed = false;
        for f in 0..g.fns.len() {
            if g.fns[f].item.is_test || cfg.sanitizers.contains(&f) {
                continue;
            }
            let s = run_fn(f, g, files, cfg, &summaries, None);
            let cur = &mut summaries[f];
            if cur.returns_secret.is_none() && s.returns_secret.is_some() {
                cur.returns_secret = s.returns_secret;
                changed = true;
            }
            if !cur.returns_param && s.returns_param {
                cur.returns_param = true;
                changed = true;
            }
            if cur.param_to_sink.is_none() && s.param_to_sink.is_some() {
                cur.param_to_sink = s.param_to_sink;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut findings = Vec::new();
    for f in 0..g.fns.len() {
        if g.fns[f].item.is_test || cfg.sanitizers.contains(&f) {
            continue;
        }
        run_fn(f, g, files, cfg, &summaries, Some(&mut findings));
    }
    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    findings.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.message == b.message);
    findings
}

/// Analyzes one function: local taint fixpoint over its statements,
/// then one reporting pass that fills the summary and (optionally)
/// emits sink findings.
fn run_fn(
    f: FnId,
    g: &CallGraph,
    files: &[ParsedFile],
    cfg: &TaintConfig,
    summaries: &[Summary],
    mut findings: Option<&mut Vec<TaintFinding>>,
) -> Summary {
    let node = &g.fns[f];
    let file = &files[node.file];
    let path = file.path.as_str();
    let facts = &node.facts;
    let mut out = Summary::default();

    // Taint cells: variable name → chain that tainted it.
    let mut secret: BTreeMap<String, Chain> = BTreeMap::new();
    // Parameter-derived cells, for the callee summary.
    let mut param: BTreeSet<String> = node.item.params.iter().cloned().collect();

    // Local fixpoint: assignments only. Monotone (cells are only ever
    // added), so it terminates.
    loop {
        let mut changed = false;
        for stmt in &facts.stmts {
            let sv = stmt_view(f, g, files, cfg, summaries, &secret, &param, stmt);
            if let Some(chain) = &sv.secret {
                for t in &stmt.targets {
                    if !secret.contains_key(t) {
                        let mut c = chain.clone();
                        c.push(step(path, stmt.line, format!("assigned to `{t}`")));
                        secret.insert(t.clone(), c);
                        changed = true;
                    }
                }
            }
            if sv.param {
                for t in &stmt.targets {
                    if param.insert(t.clone()) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Reporting pass: returns, and sink calls.
    for stmt in &facts.stmts {
        let sv = stmt_view(f, g, files, cfg, summaries, &secret, &param, stmt);
        // Container cutoff: a return whose value is a struct literal
        // (`Self { .. }`, `SecureMonitor { .. }`) constructs an opaque
        // container. The analysis is field-insensitive, so treating the
        // container itself as a secret value would taint every handle
        // built over key material (`Spm`, `CronusSystem`, ...). Taint
        // stops at construction and is re-seeded at the accessors named
        // in `rules::SOURCE_PATHS`. Local propagation is unaffected: a
        // freshly built record passed straight into a sink still trips.
        if stmt.is_return && !constructs_container(&file.tokens, stmt.range) {
            if let Some(chain) = &sv.secret {
                if out.returns_secret.is_none() {
                    let mut c = chain.clone();
                    c.push(step(path, stmt.line, "returned to caller".into()));
                    out.returns_secret = Some(c);
                }
            }
            if sv.param {
                out.returns_param = true;
            }
        }
        for &ci in &stmt.calls {
            let targets = &g.call_targets[f][ci];
            if targets.is_empty() {
                continue;
            }
            let site = &facts.calls[ci];
            let all_sinks = targets.iter().all(|t| cfg.sinks.contains(t));
            let forwards = !all_sinks
                && targets
                    .iter()
                    .all(|t| summaries[*t].param_to_sink.is_some());
            if !all_sinks && !forwards {
                continue;
            }
            let callee = &g.fns[targets[0]].item;
            if let Some(mut chain) = range_secret(f, g, files, &secret, site.args, &sv) {
                let (message, note) = if all_sinks {
                    (
                        format!("secret value reaches observable sink `{}`", callee.qual),
                        format!("passed into sink `{}`", callee.name),
                    )
                } else {
                    (
                        format!(
                            "secret value reaches an observable sink via `{}`",
                            callee.qual
                        ),
                        format!("passed to `{}`", callee.name),
                    )
                };
                chain.push(step(path, site.line, note));
                if forwards {
                    if let Some(inner) = &summaries[targets[0]].param_to_sink {
                        chain.extend(inner.iter().cloned());
                    }
                }
                if let Some(fs) = findings.as_deref_mut() {
                    fs.push(TaintFinding {
                        path: path.to_string(),
                        line: site.line,
                        message,
                        chain,
                    });
                }
            }
            if out.param_to_sink.is_none() && range_param(f, g, files, &param, site.args, &sv) {
                let mut c = vec![step(
                    path,
                    site.line,
                    format!(
                        "argument of `{}` forwarded into `{}`",
                        node.item.name, callee.name
                    ),
                )];
                if forwards {
                    if let Some(inner) = &summaries[targets[0]].param_to_sink {
                        c.extend(inner.iter().cloned());
                    }
                }
                out.param_to_sink = Some(c);
            }
        }
    }
    out
}

/// Per-statement taint classification, computed fresh each pass.
struct StmtView {
    /// The statement's value is secret (chain explains why).
    secret: Option<Chain>,
    /// The statement's value derives from a parameter.
    param: bool,
    /// Call index → chain, for calls in this statement that *produce*
    /// secret values.
    call_secret: BTreeMap<usize, Chain>,
    /// Calls in this statement that produce parameter-derived values.
    call_param: BTreeSet<usize>,
    /// Token ranges of sanitizer-call argument lists: uses inside them
    /// do not taint.
    sanitized: Vec<(usize, usize)>,
}

#[allow(clippy::too_many_arguments)]
fn stmt_view(
    f: FnId,
    g: &CallGraph,
    files: &[ParsedFile],
    cfg: &TaintConfig,
    summaries: &[Summary],
    secret: &BTreeMap<String, Chain>,
    param: &BTreeSet<String>,
    stmt: &crate::facts::Stmt,
) -> StmtView {
    let node = &g.fns[f];
    let file = &files[node.file];
    let path = file.path.as_str();
    let facts = &node.facts;

    // Sanitizer argument ranges first: they mask idents everywhere else.
    // For method-call sanitizers (`dh.public()`) the mask is extended
    // backwards over the receiver's postfix chain, so the declassified
    // value (`dh`) does not keep tainting the statement.
    let mut sanitized: Vec<(usize, usize)> = Vec::new();
    for &ci in &stmt.calls {
        let targets = &g.call_targets[f][ci];
        if !targets.is_empty() && targets.iter().all(|t| cfg.sanitizers.contains(t)) {
            let site = &facts.calls[ci];
            let start = match site.callee {
                crate::facts::Callee::Method(_) => receiver_start(&file.tokens, site.at),
                crate::facts::Callee::Path(_) => site.args.0,
            };
            sanitized.push((start, site.args.1));
        }
    }

    // Classify calls innermost-first (call sites are recorded in token
    // order, so nested calls have higher indices).
    let mut call_secret: BTreeMap<usize, Chain> = BTreeMap::new();
    let mut call_param: BTreeSet<usize> = BTreeSet::new();
    for &ci in stmt.calls.iter().rev() {
        let site = &facts.calls[ci];
        let targets = &g.call_targets[f][ci];
        if targets.is_empty() || covered(site.at, &sanitized) {
            continue;
        }
        if targets.iter().all(|t| cfg.sanitizers.contains(t)) {
            continue;
        }
        let callee = &g.fns[targets[0]].item;
        if targets.iter().all(|t| cfg.sources.contains(t)) {
            call_secret.insert(
                ci,
                vec![step(
                    path,
                    site.line,
                    format!("secret source `{}` called", callee.qual),
                )],
            );
            continue;
        }
        if targets
            .iter()
            .all(|t| summaries[*t].returns_secret.is_some())
        {
            if let Some(inner) = &summaries[targets[0]].returns_secret {
                let mut c = inner.clone();
                c.push(step(
                    path,
                    site.line,
                    format!("secret returned by `{}`", callee.name),
                ));
                call_secret.insert(ci, c);
                continue;
            }
        }
        if targets.iter().all(|t| summaries[*t].returns_param) {
            if let Some(mut c) = ident_secret_in(
                &file.tokens,
                site.args,
                &sanitized,
                secret,
                &call_secret,
                facts,
            ) {
                c.push(step(
                    path,
                    site.line,
                    format!("secret flows through `{}`", callee.name),
                ));
                call_secret.insert(ci, c);
            }
            if ident_param_in(
                &file.tokens,
                site.args,
                &sanitized,
                param,
                &call_param,
                facts,
            ) {
                call_param.insert(ci);
            }
        }
    }

    // The statement's own value: a tainted ident used outside sanitizer
    // arguments, or a secret-producing call.
    let mut sv_secret = ident_secret_in(
        &file.tokens,
        stmt.range,
        &sanitized,
        secret,
        &call_secret,
        facts,
    );
    if sv_secret.is_none() {
        sv_secret = stmt
            .calls
            .iter()
            .find_map(|ci| call_secret.get(ci).cloned());
    }
    let sv_param = ident_param_in(
        &file.tokens,
        stmt.range,
        &sanitized,
        param,
        &call_param,
        facts,
    ) || stmt.calls.iter().any(|ci| call_param.contains(ci));

    StmtView {
        secret: sv_secret,
        param: sv_param,
        call_secret,
        call_param,
        sanitized,
    }
}

/// First secret ident (or secret-producing nested call) inside a token
/// range, skipping sanitizer argument sub-ranges.
fn range_secret(
    f: FnId,
    g: &CallGraph,
    files: &[ParsedFile],
    secret: &BTreeMap<String, Chain>,
    range: (usize, usize),
    sv: &StmtView,
) -> Option<Chain> {
    let node = &g.fns[f];
    let file = &files[node.file];
    ident_secret_in(
        &file.tokens,
        range,
        &sv.sanitized,
        secret,
        &sv.call_secret,
        &node.facts,
    )
}

/// Parameter-derived analogue of [`range_secret`].
fn range_param(
    f: FnId,
    g: &CallGraph,
    files: &[ParsedFile],
    param: &BTreeSet<String>,
    range: (usize, usize),
    sv: &StmtView,
) -> bool {
    let node = &g.fns[f];
    let file = &files[node.file];
    ident_param_in(
        &file.tokens,
        range,
        &sv.sanitized,
        param,
        &sv.call_param,
        &node.facts,
    )
}

/// Walks backwards from a method name token (`tokens[at]`, preceded by
/// `.`) over the receiver's postfix chain — idents, literals, `?`, `::`
/// paths and balanced `(…)`/`[…]` groups — and returns the index of the
/// chain's first token. Used to extend a sanitizer's masked range over
/// its receiver.
fn receiver_start(tokens: &[crate::lex::Token], at: usize) -> usize {
    let mut i = at; // start of the consumed region
                    // `tokens[at - 1]` is the `.` between receiver and method name.
    if i == 0 || !matches!(&tokens[i - 1].tok, Tok::Punct(p) if *p == ".") {
        return at;
    }
    i -= 1;
    loop {
        if i == 0 {
            return i;
        }
        // Consume one receiver segment, right to left.
        match &tokens[i - 1].tok {
            Tok::Close(c) => {
                let open = match c {
                    ')' => '(',
                    ']' => '[',
                    _ => return i, // `}` block: stop, not a postfix chain
                };
                let mut depth = 0usize;
                let mut j = i - 1;
                loop {
                    match &tokens[j].tok {
                        Tok::Close(x) if *x == *c => depth += 1,
                        Tok::Open(x) if *x == open => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == 0 {
                        return i;
                    }
                    j -= 1;
                }
                i = j;
                // A call group may itself follow a name: `get(k)`.
                if i > 0 && matches!(&tokens[i - 1].tok, Tok::Ident(_)) {
                    i -= 1;
                }
            }
            Tok::Ident(_) | Tok::Num(_) | Tok::Str(_) | Tok::Char(_) => i -= 1,
            Tok::Punct(p) if *p == "?" => {
                i -= 1;
                continue; // postfix `?` glues to the next segment left
            }
            _ => return i,
        }
        // Continue only across `.` / `::` separators.
        if i == 0 {
            return i;
        }
        match &tokens[i - 1].tok {
            Tok::Punct(p) if *p == "." || *p == "::" => i -= 1,
            _ => return i,
        }
    }
}

/// True when the range contains a struct-literal construction: `Self`
/// or an uppercase-initial identifier immediately followed by `{`.
/// Tuple wrappers (`Some(key)`, `Ok(key)`) do not match — the inner
/// identifier keeps carrying taint through them.
fn constructs_container(tokens: &[crate::lex::Token], range: (usize, usize)) -> bool {
    let (a, b) = range;
    let end = b.min(tokens.len());
    for i in a..end.saturating_sub(1) {
        if let Tok::Ident(id) = &tokens[i].tok {
            let type_like =
                id == "Self" || id.chars().next().is_some_and(|c| c.is_ascii_uppercase());
            if type_like && matches!(tokens[i + 1].tok, Tok::Open('{')) {
                return true;
            }
        }
    }
    false
}

fn ident_secret_in(
    tokens: &[crate::lex::Token],
    range: (usize, usize),
    sanitized: &[(usize, usize)],
    secret: &BTreeMap<String, Chain>,
    call_secret: &BTreeMap<usize, Chain>,
    facts: &crate::facts::FnFacts,
) -> Option<Chain> {
    let (a, b) = range;
    for (i, t) in tokens.iter().enumerate().take(b.min(tokens.len())).skip(a) {
        if covered(i, sanitized) {
            continue;
        }
        match &t.tok {
            Tok::Ident(id) => {
                if let Some(c) = secret.get(id) {
                    return Some(c.clone());
                }
            }
            Tok::Str(s) => {
                let mut caps = Vec::new();
                inline_captures(s, &mut caps);
                for cap in caps {
                    if let Some(c) = secret.get(&cap) {
                        return Some(c.clone());
                    }
                }
            }
            _ => {}
        }
    }
    for (ci, chain) in call_secret {
        let at = facts.calls[*ci].at;
        if at >= a && at < b && !covered(at, sanitized) {
            return Some(chain.clone());
        }
    }
    None
}

fn ident_param_in(
    tokens: &[crate::lex::Token],
    range: (usize, usize),
    sanitized: &[(usize, usize)],
    param: &BTreeSet<String>,
    call_param: &BTreeSet<usize>,
    facts: &crate::facts::FnFacts,
) -> bool {
    let (a, b) = range;
    for (i, t) in tokens.iter().enumerate().take(b.min(tokens.len())).skip(a) {
        if covered(i, sanitized) {
            continue;
        }
        match &t.tok {
            Tok::Ident(id) if param.contains(id) => {
                return true;
            }
            Tok::Str(s) => {
                let mut caps = Vec::new();
                inline_captures(s, &mut caps);
                if caps.iter().any(|c| param.contains(c)) {
                    return true;
                }
            }
            _ => {}
        }
    }
    call_param
        .iter()
        .any(|ci| facts.calls[*ci].at >= a && facts.calls[*ci].at < b)
}

fn covered(i: usize, ranges: &[(usize, usize)]) -> bool {
    ranges.iter().any(|&(a, b)| i >= a && i < b)
}

fn step(path: &str, line: u32, note: String) -> Step {
    Step {
        path: path.to_string(),
        line,
        note,
    }
}

/// Renders a chain as indented `file:line: note` lines.
pub fn render_chain(chain: &Chain) -> String {
    let mut out = String::new();
    for s in chain {
        out.push_str(&format!("    {}:{}: {}\n", s.path, s.line, s.note));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::extract;
    use crate::graph::CallGraph;
    use crate::lex::lex;
    use crate::syntax::parse;

    fn world(extra: &str) -> (Vec<ParsedFile>, CallGraph) {
        let files = [
            (
                "crates/crypto/src/lib.rs",
                "crypto",
                "pub fn derive_key(seed: &str) -> Vec<u8> { vec![0u8] }\n\
                 pub fn measure(data: &[u8]) -> u64 { 0 }\n",
            ),
            (
                "crates/obs/src/lib.rs",
                "obs",
                "pub struct Rec;\nimpl Rec {\n    pub fn label(&self, v: &str) { let _ = v; }\n}\n",
            ),
            ("crates/app/src/lib.rs", "app", extra),
        ];
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(p, m, text)| parse(p, m, lex(text)))
            .collect();
        let facts: Vec<Vec<_>> = parsed
            .iter()
            .map(|f| f.fns.iter().map(|i| extract(&f.tokens, i)).collect())
            .collect();
        let g = CallGraph::build(&parsed, &facts);
        (parsed, g)
    }

    fn cfg_of(g: &CallGraph) -> TaintConfig {
        TaintConfig {
            sources: g.find("derive_key").into_iter().collect(),
            sinks: g.find("Rec::label").into_iter().collect(),
            sanitizers: g.find("measure").into_iter().collect(),
        }
    }

    #[test]
    fn direct_leak_through_format_capture() {
        let (files, g) = world(
            "pub fn leak(r: &Rec) {\n\
             let key = derive_key(\"s\");\n\
             let msg = format!(\"k={key}\");\n\
             r.label(&msg);\n\
             }\n",
        );
        let findings = analyze(&g, &files, &cfg_of(&g));
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.path, "crates/app/src/lib.rs");
        assert!(f.message.contains("Rec::label"), "{}", f.message);
        let notes: Vec<&str> = f.chain.iter().map(|s| s.note.as_str()).collect();
        assert!(notes[0].contains("secret source"), "{notes:?}");
        assert!(notes.iter().any(|n| n.contains("`key`")), "{notes:?}");
        assert!(notes.iter().any(|n| n.contains("`msg`")), "{notes:?}");
        assert!(notes.last().unwrap().contains("sink"), "{notes:?}");
    }

    #[test]
    fn interprocedural_leak_via_forwarding_helper() {
        let (files, g) = world(
            "fn emit(r: &Rec, v: &str) { r.label(v); }\n\
             pub fn leak2(r: &Rec) {\n\
             let k = derive_key(\"s\");\n\
             let s = format!(\"{k}\");\n\
             emit(r, &s);\n\
             }\n",
        );
        let findings = analyze(&g, &files, &cfg_of(&g));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("via `app::emit`"));
        let notes: Vec<&str> = findings[0].chain.iter().map(|s| s.note.as_str()).collect();
        assert!(
            notes.iter().any(|n| n.contains("forwarded")),
            "callee-internal hops appended: {notes:?}"
        );
    }

    #[test]
    fn leak_via_secret_returning_helper() {
        let (files, g) = world(
            "fn get() -> String { let k = derive_key(\"s\"); format!(\"{k}\") }\n\
             pub fn leak3(r: &Rec) {\n\
             let v = get();\n\
             r.label(&v);\n\
             }\n",
        );
        let findings = analyze(&g, &files, &cfg_of(&g));
        assert_eq!(findings.len(), 1, "{findings:?}");
        let notes: Vec<&str> = findings[0].chain.iter().map(|s| s.note.as_str()).collect();
        assert!(notes.iter().any(|n| n.contains("returned")), "{notes:?}");
        assert!(
            notes.iter().any(|n| n.contains("secret returned by `get`")),
            "{notes:?}"
        );
    }

    #[test]
    fn sanitizer_clears_taint() {
        let (files, g) = world(
            "pub fn fine(r: &Rec) {\n\
             let key = derive_key(\"s\");\n\
             let h = measure(&key);\n\
             let msg = format!(\"h={h}\");\n\
             r.label(&msg);\n\
             }\n",
        );
        let findings = analyze(&g, &files, &cfg_of(&g));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn untainted_labels_are_clean_and_tests_are_skipped() {
        let (files, g) = world(
            "pub fn fine(r: &Rec, n: u64) {\n\
             let msg = format!(\"count={n}\");\n\
             r.label(&msg);\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             pub fn t(r: &super::Rec) { let k = super::derive_key(\"s\"); r.label(&format!(\"{k}\")); }\n\
             }\n",
        );
        let findings = analyze(&g, &files, &cfg_of(&g));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn direct_source_call_in_sink_args() {
        let (files, g) =
            world("pub fn leak4(r: &Rec) { r.label(&format!(\"{:?}\", derive_key(\"s\"))); }\n");
        let findings = analyze(&g, &files, &cfg_of(&g));
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn deterministic_across_runs() {
        let src = "pub fn leak(r: &Rec) {\n\
                   let key = derive_key(\"s\");\n\
                   r.label(&format!(\"{key}\"));\n\
                   }\n";
        let (files, g) = world(src);
        let a = format!("{:?}", analyze(&g, &files, &cfg_of(&g)));
        let (files2, g2) = world(src);
        let b = format!("{:?}", analyze(&g2, &files2, &cfg_of(&g2)));
        assert_eq!(a, b);
    }
}
