//! Per-function fact extraction: call sites, panic sites, and the
//! statement structure the taint analysis propagates over.
//!
//! Facts are extracted from a function's body token range in one linear
//! walk. The walk is deliberately flow-insensitive about *scoping* (a
//! variable name is one taint cell for the whole function) and precise
//! about *sites* (a call, a panic, an index each carry their exact line) —
//! the right trade for a syntactic analysis that must over-approximate,
//! never miss.

use crate::lex::{Tok, Token};
use crate::syntax::FnItem;

/// What kind of panic a site is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PanicKind {
    /// `panic!`, `unreachable!`, `todo!`, `unimplemented!`.
    Macro,
    /// `assert!`, `assert_eq!`, `assert_ne!` (kept in release builds).
    Assert,
    /// `debug_assert*!` — compiled out of release builds; recorded but
    /// never reported.
    DebugAssert,
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(...)`.
    Expect,
    /// Slice/array index expression `x[...]`.
    Index,
    /// `/` or `%` on a value (division by zero); recorded but not
    /// reported — syntax cannot separate float from integer division.
    DivMod,
}

impl PanicKind {
    /// Human label used in findings.
    pub fn label(self) -> &'static str {
        match self {
            PanicKind::Macro => "explicit panic macro",
            PanicKind::Assert => "assert macro",
            PanicKind::DebugAssert => "debug assert",
            PanicKind::Unwrap => ".unwrap()",
            PanicKind::Expect => ".expect(...)",
            PanicKind::Index => "slice/array index",
            PanicKind::DivMod => "division/remainder",
        }
    }
}

/// One potential-panic site in a function body.
#[derive(Clone, Debug)]
pub struct PanicSite {
    /// What can panic.
    pub kind: PanicKind,
    /// 1-based source line.
    pub line: u32,
}

/// How a call names its target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Callee {
    /// Free/associated call by (possibly partial) path: `f(`,
    /// `module::f(`, `Type::f(`.
    Path(Vec<String>),
    /// Method call `.f(`.
    Method(String),
}

/// One call site in a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Who is called.
    pub callee: Callee,
    /// 1-based source line.
    pub line: u32,
    /// Token range (into the file stream) of the argument list, exclusive
    /// of the parentheses.
    pub args: (usize, usize),
    /// Token index of the callee name (for statement membership).
    pub at: usize,
}

/// One statement (or statement-like region) for taint propagation.
#[derive(Clone, Debug)]
pub struct Stmt {
    /// 1-based line of the statement's first token.
    pub line: u32,
    /// Token range of the whole statement.
    pub range: (usize, usize),
    /// Assignment targets (`let` pattern idents, or `x` in `x = …`,
    /// `x += …`).
    pub targets: Vec<String>,
    /// Identifiers used anywhere in the statement, including `{ident}`
    /// inline captures in string literals (`format!("{secret}")`).
    pub uses: Vec<String>,
    /// Indices into [`FnFacts::calls`] of calls inside this statement.
    pub calls: Vec<usize>,
    /// `return …;` statement or the function's tail expression.
    pub is_return: bool,
}

/// Extracted facts for one function body.
#[derive(Clone, Debug, Default)]
pub struct FnFacts {
    /// Every call site.
    pub calls: Vec<CallSite>,
    /// Every potential-panic site.
    pub panics: Vec<PanicSite>,
    /// Statement structure.
    pub stmts: Vec<Stmt>,
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const ASSERT_MACROS: [&str; 3] = ["assert", "assert_eq", "assert_ne"];
const DEBUG_ASSERT_MACROS: [&str; 3] = ["debug_assert", "debug_assert_eq", "debug_assert_ne"];

/// Rust keywords and expression-position words excluded from `uses`.
const KEYWORDS: [&str; 33] = [
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "trait", "true", "type", "unsafe", "while",
];

/// Extracts facts from `item`'s body within `tokens` (the file stream).
/// Bodiless items produce empty facts.
pub fn extract(tokens: &[Token], item: &FnItem) -> FnFacts {
    let Some((start, end)) = item.body else {
        return FnFacts::default();
    };
    let mut f = FnFacts::default();

    // ---- sites: one linear pass -------------------------------------
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        match &t.tok {
            Tok::Punct("#") => {
                // Statement-level attribute `#[…]`: skip so its brackets
                // are not mistaken for indexing.
                if matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Open('['))) {
                    i = skip_group_at(tokens, i + 1, end);
                    continue;
                }
            }
            Tok::Ident(name) => {
                let next = tokens.get(i + 1).map(|t| &t.tok);
                let prev_fn = i > start && tokens[i - 1].is_ident("fn");
                if prev_fn {
                    // Nested `fn name(...)`: a definition, not a call.
                    i += 1;
                    continue;
                }
                match next {
                    Some(Tok::Punct("!")) => {
                        if matches!(
                            tokens.get(i + 2).map(|t| &t.tok),
                            Some(Tok::Open('(') | Tok::Open('[') | Tok::Open('{'))
                        ) {
                            let kind = if PANIC_MACROS.contains(&name.as_str()) {
                                Some(PanicKind::Macro)
                            } else if ASSERT_MACROS.contains(&name.as_str()) {
                                Some(PanicKind::Assert)
                            } else if DEBUG_ASSERT_MACROS.contains(&name.as_str()) {
                                Some(PanicKind::DebugAssert)
                            } else {
                                None
                            };
                            if let Some(kind) = kind {
                                f.panics.push(PanicSite { kind, line: t.line });
                            }
                            // Walk *into* macro arguments: calls and uses
                            // inside them are real.
                            i += 3;
                            continue;
                        }
                    }
                    Some(Tok::Open('(')) => {
                        let is_method = i > start && tokens[i - 1].is_punct(".");
                        if is_method && name == "unwrap" {
                            f.panics.push(PanicSite {
                                kind: PanicKind::Unwrap,
                                line: t.line,
                            });
                        } else if is_method && name == "expect" {
                            f.panics.push(PanicSite {
                                kind: PanicKind::Expect,
                                line: t.line,
                            });
                        } else {
                            let args_end = skip_group_at(tokens, i + 1, end);
                            let callee = if is_method {
                                Callee::Method(name.clone())
                            } else {
                                Callee::Path(path_back(tokens, start, i, item))
                            };
                            f.calls.push(CallSite {
                                callee,
                                line: t.line,
                                args: (i + 2, args_end.saturating_sub(1)),
                                at: i,
                            });
                        }
                    }
                    _ => {}
                }
            }
            Tok::Open('[') if i > start && is_indexable(&tokens[i - 1].tok) => {
                f.panics.push(PanicSite {
                    kind: PanicKind::Index,
                    line: t.line,
                });
            }
            Tok::Punct(p @ ("/" | "%")) => {
                let _ = p;
                if i > start && is_indexable(&tokens[i - 1].tok) {
                    f.panics.push(PanicSite {
                        kind: PanicKind::DivMod,
                        line: t.line,
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }

    // ---- statements: a second pass over the same range ---------------
    let mut stmt_start = start;
    let mut depth = 0i64;
    let mut first_tok: Option<&Tok> = None;
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        if first_tok.is_none() {
            first_tok = Some(&t.tok);
        }
        match &t.tok {
            Tok::Open(_) => depth += 1,
            Tok::Close(c) => {
                depth -= 1;
                let is_let = matches!(first_tok, Some(Tok::Ident(id)) if id == "let");
                // Only `}` ends a statement (`if … { … }`, `match … { … }`);
                // a `)`/`]` at depth 0 is mid-expression (`g(x)` as the
                // tail). An `else` keeps the if-else expression together,
                // and a `}` that is the body's last token closes the tail
                // expression — an implicit return.
                let next_else = tokens.get(i + 1).is_some_and(|t| t.is_ident("else"));
                if depth == 0 && *c == '}' && !is_let && !next_else {
                    close_stmt(&mut f, tokens, stmt_start, i + 1, i + 1 >= end, end);
                    stmt_start = i + 1;
                    first_tok = None;
                    i += 1;
                    continue;
                }
            }
            Tok::Punct(";") if depth == 0 => {
                close_stmt(&mut f, tokens, stmt_start, i + 1, false, end);
                stmt_start = i + 1;
                first_tok = None;
                i += 1;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    if stmt_start < end {
        // Tail expression: an implicit return.
        close_stmt(&mut f, tokens, stmt_start, end, true, end);
    }
    f
}

fn close_stmt(
    f: &mut FnFacts,
    tokens: &[Token],
    start: usize,
    stop: usize,
    tail: bool,
    _body_end: usize,
) {
    if start >= stop {
        return;
    }
    let toks = &tokens[start..stop];
    if toks.iter().all(|t| matches!(t.tok, Tok::Punct(";"))) {
        return;
    }
    let line = toks[0].line;
    let is_return = tail || toks[0].is_ident("return");

    // Targets.
    let mut targets = Vec::new();
    if toks[0].is_ident("let") {
        // `let <pattern>[: ty] = …` — pattern idents (at any nesting, so
        // `let (a, b) = …` and `let Point { x, y } = …` bind) up to the
        // top-level `=`, skipping a top-level `: ty` annotation.
        let mut d = 0i64;
        let mut in_type = false;
        for t in &toks[1..] {
            match &t.tok {
                Tok::Open(_) => d += 1,
                Tok::Close(_) => d -= 1,
                Tok::Punct("<") => d += 1,
                Tok::Punct(">") => d -= 1,
                Tok::Punct(":") if d == 0 => in_type = true,
                Tok::Punct("=") if d == 0 => break,
                Tok::Punct(";") if d == 0 => break,
                Tok::Ident(id) if !KEYWORDS.contains(&id.as_str()) && id != "_" && !in_type => {
                    targets.push(id.clone())
                }
                _ => {}
            }
        }
    } else if let Some(Tok::Ident(id)) = toks.first().map(|t| &t.tok) {
        // `x = …` / `x += …` reassignments (also `self.x = …` → target x).
        let mut j = 1;
        let mut last = id.clone();
        while j + 1 < toks.len() && toks[j].is_punct(".") {
            if let Some(nid) = toks[j + 1].ident() {
                last = nid.to_string();
                j += 2;
            } else {
                break;
            }
        }
        if toks.get(j).is_some_and(|t| {
            matches!(
                t.tok,
                Tok::Punct("=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=")
            )
        }) && !KEYWORDS.contains(&last.as_str())
        {
            targets.push(last);
        }
    }

    // Uses: every identifier plus `{ident}` captures in string literals.
    let mut uses = Vec::new();
    for t in toks {
        match &t.tok {
            Tok::Ident(id) if !KEYWORDS.contains(&id.as_str()) && id != "_" => {
                uses.push(id.clone());
            }
            Tok::Str(s) => inline_captures(s, &mut uses),
            _ => {}
        }
    }

    // Call membership by token index.
    let calls = f
        .calls
        .iter()
        .enumerate()
        .filter(|(_, c)| c.at >= start && c.at < stop)
        .map(|(k, _)| k)
        .collect();

    f.stmts.push(Stmt {
        line,
        range: (start, stop),
        targets,
        uses,
        calls,
        is_return,
    });
}

/// Collects `{ident}` / `{ident:spec}` inline format captures from a
/// string literal body. `{{` escapes are skipped; positional/`{}` holes
/// capture nothing.
pub(crate) fn inline_captures(s: &str, out: &mut Vec<String>) {
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'{' {
            if b.get(i + 1) == Some(&b'{') {
                i += 2;
                continue;
            }
            let mut j = i + 1;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            if j > i + 1
                && matches!(b.get(j), Some(b'}') | Some(b':'))
                && !b[i + 1].is_ascii_digit()
            {
                out.push(String::from_utf8_lossy(&b[i + 1..j]).into_owned());
            }
            i = j;
        } else {
            i += 1;
        }
    }
}

/// Walks backwards from a call name at `at` to collect its `::` path
/// segments: `a::b::f(` → `[a, b, f]`. A leading `Self` segment is
/// resolved to the function's impl type.
fn path_back(tokens: &[Token], start: usize, at: usize, item: &FnItem) -> Vec<String> {
    let mut segs = vec![tokens[at].ident().unwrap_or("").to_string()];
    let mut j = at;
    while j >= start + 2 && tokens[j - 1].is_punct("::") {
        if let Some(id) = tokens[j - 2].ident() {
            segs.insert(0, id.to_string());
            j -= 2;
        } else {
            // `<T as Trait>::f` or `Vec::<u8>::f` — stop at the turbofish.
            break;
        }
    }
    if segs.first().map(String::as_str) == Some("Self") {
        if let Some(ty) = &item.type_ctx {
            segs[0] = ty.clone();
        }
    }
    segs
}

fn is_indexable(t: &Tok) -> bool {
    matches!(
        t,
        Tok::Ident(_) | Tok::Close(')') | Tok::Close(']') | Tok::Num(_)
    )
}

fn skip_group_at(tokens: &[Token], open: usize, end: usize) -> usize {
    let Some(Tok::Open(oc)) = tokens.get(open).map(|t| &t.tok) else {
        return open + 1;
    };
    let close = match oc {
        '(' => ')',
        '[' => ']',
        _ => '}',
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        match &tokens[i].tok {
            Tok::Open(c) if c == oc => depth += 1,
            Tok::Close(c) if *c == close => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::syntax::parse;

    fn facts_of(body: &str) -> FnFacts {
        let text = format!("fn f(p: u32) {{\n{body}\n}}");
        let file = parse("crates/x/src/lib.rs", "x", lex(&text));
        extract(&file.tokens, &file.fns[0])
    }

    #[test]
    fn call_sites_free_path_and_method() {
        let f = facts_of("a::b::g(1);\nh(2);\nx.m(3);\n");
        assert_eq!(f.calls.len(), 3);
        assert_eq!(
            f.calls[0].callee,
            Callee::Path(vec!["a".into(), "b".into(), "g".into()])
        );
        assert_eq!(f.calls[1].callee, Callee::Path(vec!["h".into()]));
        assert_eq!(f.calls[2].callee, Callee::Method("m".into()));
    }

    #[test]
    fn panic_sites_by_kind() {
        let f = facts_of(
            "panic!(\"boom\");\nassert!(x > 0);\ndebug_assert_eq!(a, b);\n\
             v.unwrap();\nv.expect(\"msg\");\nlet y = s[0];\nlet z = a / b;\n",
        );
        let kinds: Vec<PanicKind> = f.panics.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![
                PanicKind::Macro,
                PanicKind::Assert,
                PanicKind::DebugAssert,
                PanicKind::Unwrap,
                PanicKind::Expect,
                PanicKind::Index,
                PanicKind::DivMod,
            ]
        );
    }

    #[test]
    fn unwrap_inside_string_is_not_a_site() {
        let f = facts_of("let s = \"x.unwrap()\";\nlet r = r#\"y.expect(\"m\")\"#;\n");
        assert!(f.panics.is_empty());
        // And the old substring scanner would have flagged both lines.
    }

    #[test]
    fn unwrap_or_is_not_a_site() {
        let f = facts_of("v.unwrap_or(0);\nv.unwrap_or_else(g);\nv.expect_err(\"e\");\n");
        assert!(f.panics.is_empty());
        // unwrap_or / unwrap_or_else / expect_err ARE call sites though.
        assert_eq!(f.calls.len(), 3);
    }

    #[test]
    fn array_literals_and_attributes_are_not_indexing() {
        let f = facts_of("let a = [1, 2, 3];\n#[allow(x)]\nlet b = vec![4];\nlet c = a[0];\n");
        let idx: Vec<_> = f
            .panics
            .iter()
            .filter(|p| p.kind == PanicKind::Index)
            .collect();
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn let_targets_and_uses() {
        let f = facts_of("let key = derive(seed);\nlet msg = format!(\"k={key}\");\n");
        assert_eq!(f.stmts[0].targets, vec!["key"]);
        assert!(f.stmts[0].uses.contains(&"seed".to_string()));
        assert_eq!(f.stmts[1].targets, vec!["msg"]);
        assert!(
            f.stmts[1].uses.contains(&"key".to_string()),
            "inline format capture counts as a use: {:?}",
            f.stmts[1].uses
        );
    }

    #[test]
    fn reassignment_and_field_assignment_targets() {
        let f = facts_of("x = g();\nself.field = h();\ntotal += y;\n");
        assert_eq!(f.stmts[0].targets, vec!["x"]);
        assert_eq!(f.stmts[1].targets, vec!["field"]);
        assert_eq!(f.stmts[2].targets, vec!["total"]);
    }

    #[test]
    fn return_statements_and_tail_expression() {
        let f = facts_of("if p > 0 {\n    return a;\n}\nb\n");
        let returning: Vec<bool> = f.stmts.iter().map(|s| s.is_return).collect();
        // The if-block is one statement (not a return at depth 0), the
        // tail `b` is the implicit return.
        assert!(returning.last().copied().unwrap());
    }

    #[test]
    fn statement_split_keeps_let_with_block_initializer() {
        let f = facts_of("let x = match p {\n    0 => g(),\n    _ => h(),\n};\nsink(x);\n");
        assert_eq!(f.stmts.len(), 2);
        assert_eq!(f.stmts[0].targets, vec!["x"]);
        assert!(f.stmts[0].calls.len() == 2, "g and h inside the match");
        assert!(f.stmts[1].uses.contains(&"x".to_string()));
    }

    #[test]
    fn self_paths_resolve_to_impl_type() {
        let text = "struct S;\nimpl S {\n    fn f() { Self::g(); }\n    fn g() {}\n}\n";
        let file = parse("crates/x/src/lib.rs", "x", lex(text));
        let facts = extract(&file.tokens, &file.fns[0]);
        assert_eq!(
            facts.calls[0].callee,
            Callee::Path(vec!["S".into(), "g".into()])
        );
    }

    #[test]
    fn nested_fn_definitions_are_not_calls() {
        let f = facts_of("fn inner(q: u32) -> u32 { q }\ninner(p);\n");
        assert_eq!(f.calls.len(), 1);
        assert_eq!(f.calls[0].callee, Callee::Path(vec!["inner".into()]));
    }
}
