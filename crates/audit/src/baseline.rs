//! The finding-count ratchet against `LINT_BASELINE.json`.
//!
//! The baseline commits, per `(rule, file)` pair, how many findings are
//! currently accepted. Counts may only go *down*: a run producing more
//! findings than baselined for a pair fails with every finding of that
//! pair shown, and a run producing fewer (or a pair that vanished) flags
//! the baseline entry as stale — mirroring the allowlist's zero-unused
//! invariant, so the baseline cannot rot. `scripts/relint.sh`
//! regenerates the file for intentional ratchet updates.
//!
//! The format is a deliberately small JSON subset written and read only
//! by this module (std-only; no parser dependency):
//!
//! ```json
//! {
//!   "version": 1,
//!   "entries": [
//!     { "rule": "panic-reachability", "path": "crates/core/src/ring.rs", "count": 2 }
//!   ]
//! }
//! ```

use std::collections::BTreeMap;

use crate::rules::Finding;

/// Parsed baseline: `(rule, path)` → accepted count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Accepted finding counts.
    pub entries: BTreeMap<(String, String), u64>,
}

impl Baseline {
    /// Parses the committed JSON.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed entry; an empty or
    /// whitespace-only file is an empty baseline.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        if text.trim().is_empty() {
            return Ok(Baseline { entries });
        }
        // Entry objects are `{ "rule": "...", "path": "...", "count": N }`.
        for (i, chunk) in text.split('{').skip(1).enumerate() {
            let body = chunk.split('}').next().unwrap_or("");
            if !body.contains("\"rule\"") {
                continue; // the outer object header
            }
            let rule = field(body, "rule")
                .ok_or_else(|| format!("baseline entry {} lacks \"rule\"", i + 1))?;
            let path = field(body, "path")
                .ok_or_else(|| format!("baseline entry {} lacks \"path\"", i + 1))?;
            let count = num_field(body, "count")
                .ok_or_else(|| format!("baseline entry {} lacks \"count\"", i + 1))?;
            if entries
                .insert((rule.clone(), path.clone()), count)
                .is_some()
            {
                return Err(format!("duplicate baseline entry for {rule} / {path}"));
            }
        }
        Ok(Baseline { entries })
    }

    /// Builds a baseline from a finding set (what `--write-baseline`
    /// persists).
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: BTreeMap<(String, String), u64> = BTreeMap::new();
        for f in findings {
            *entries
                .entry((f.rule.to_string(), f.path.clone()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Renders the committed JSON form (sorted; byte-stable).
    pub fn render(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [\n");
        let n = self.entries.len();
        for (i, ((rule, path), count)) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"rule\": \"{rule}\", \"path\": \"{path}\", \"count\": {count} }}{}\n",
                if i + 1 == n { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn field(body: &str, name: &str) -> Option<String> {
    let key = format!("\"{name}\"");
    let after = &body[body.find(&key)? + key.len()..];
    let after = after.trim_start().strip_prefix(':')?.trim_start();
    let after = after.strip_prefix('"')?;
    Some(after[..after.find('"')?].to_string())
}

fn num_field(body: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\"");
    let after = &body[body.find(&key)? + key.len()..];
    let after = after.trim_start().strip_prefix(':')?.trim_start();
    let digits: String = after.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Applies the ratchet: returns the findings that remain visible (new
/// findings over baseline plus stale-entry findings) and how many were
/// suppressed by the baseline.
pub fn apply(findings: Vec<Finding>, base: &Baseline) -> (Vec<Finding>, usize) {
    let mut groups: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
    for f in findings {
        groups
            .entry((f.rule.to_string(), f.path.clone()))
            .or_default()
            .push(f);
    }
    let mut visible = Vec::new();
    let mut suppressed = 0usize;
    for (key, group) in &groups {
        let accepted = base.entries.get(key).copied().unwrap_or(0);
        let fresh = group.len() as u64;
        if fresh > accepted {
            // Over budget: show the whole group (we cannot know which of
            // the sites is the new one) with the budget in the message.
            for f in group {
                let mut f = f.clone();
                if accepted > 0 {
                    f.message = format!(
                        "{} [baseline accepts {} for this rule+file, found {}]",
                        f.message, accepted, fresh
                    );
                }
                visible.push(f);
            }
        } else {
            suppressed += group.len();
            if fresh < accepted {
                visible.push(stale(key, accepted, fresh));
            }
        }
    }
    // Entries with no findings at all this run are stale too.
    for (key, &accepted) in &base.entries {
        if !groups.contains_key(key) && accepted > 0 {
            visible.push(stale(key, accepted, 0));
        }
    }
    visible.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    (visible, suppressed)
}

fn stale(key: &(String, String), accepted: u64, fresh: u64) -> Finding {
    Finding {
        rule: "baseline-ratchet",
        path: "LINT_BASELINE.json".into(),
        line: 0,
        message: format!(
            "stale entry: {} / {} accepts {} finding(s) but the run produced {}; \
             ratchet down with scripts/relint.sh",
            key.0, key.1, accepted, fresh
        ),
        chain: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line: u32) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line,
            message: format!("m{line}"),
            chain: Vec::new(),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let b = Baseline::from_findings(&[
            finding("panic-reachability", "crates/core/src/ring.rs", 5),
            finding("panic-reachability", "crates/core/src/ring.rs", 9),
            finding("secret-taint", "crates/core/src/system.rs", 2),
        ]);
        let parsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(
            parsed.entries[&(
                "panic-reachability".to_string(),
                "crates/core/src/ring.rs".to_string()
            )],
            2
        );
    }

    #[test]
    fn empty_and_malformed() {
        assert!(Baseline::parse("").unwrap().entries.is_empty());
        assert!(
            Baseline::parse("{\n \"version\": 1,\n \"entries\": []\n}\n")
                .unwrap()
                .entries
                .is_empty()
        );
        assert!(Baseline::parse("{ \"entries\": [ { \"rule\": \"x\" } ] }").is_err());
    }

    #[test]
    fn ratchet_suppresses_at_budget_and_fails_over() {
        let base = Baseline::from_findings(&[finding("secret-taint", "a.rs", 1)]);
        // At budget: suppressed.
        let (vis, sup) = apply(vec![finding("secret-taint", "a.rs", 7)], &base);
        assert!(vis.is_empty(), "{vis:?}");
        assert_eq!(sup, 1);
        // Over budget: the whole group surfaces.
        let (vis, _) = apply(
            vec![
                finding("secret-taint", "a.rs", 7),
                finding("secret-taint", "a.rs", 8),
            ],
            &base,
        );
        assert_eq!(vis.len(), 2);
        assert!(vis[0].message.contains("baseline accepts 1"));
    }

    #[test]
    fn stale_entries_are_findings() {
        let base = Baseline::from_findings(&[
            finding("secret-taint", "a.rs", 1),
            finding("panic-reachability", "b.rs", 2),
        ]);
        // One pair under-counts, the other vanished entirely.
        let (vis, _) = apply(Vec::new(), &base);
        assert_eq!(vis.len(), 2, "{vis:?}");
        assert!(vis.iter().all(|f| f.rule == "baseline-ratchet"));
        assert!(vis[0].message.contains("relint"));
    }
}
