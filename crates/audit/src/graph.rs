//! Repo-wide call graph: function index, call resolution, reachability.
//!
//! Resolution is *syntactic suffix matching* over fully qualified paths:
//! a call written `ledger::chain_key(…)` resolves to every known function
//! whose qualified path ends in `ledger::chain_key`; a method call
//! `.counter_add(…)` resolves to every impl/trait method of that name.
//! Where several candidates survive, same-file then same-crate candidates
//! are preferred; remaining ambiguity keeps *all* candidates — the
//! analyses over-approximate rather than miss an edge. Calls into `std`
//! or other out-of-repo code resolve to nothing and produce no edges.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use crate::facts::{Callee, FnFacts};
use crate::syntax::{FnItem, ParsedFile};

/// Index of one function in the [`CallGraph`].
pub type FnId = usize;

/// One function: its item, facts, and location.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Index of the owning file in the analyzed set.
    pub file: usize,
    /// The parsed item.
    pub item: FnItem,
    /// Extracted body facts.
    pub facts: FnFacts,
}

/// The repo-wide call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every function, in deterministic (file, source) order.
    pub fns: Vec<FnNode>,
    /// Bare name → candidate functions.
    by_name: HashMap<String, Vec<FnId>>,
    /// Caller → resolved callees (deduplicated, ordered).
    pub edges: Vec<Vec<FnId>>,
    /// Per-call-site resolution: `call_targets[f][c]` are the targets of
    /// call site `c` of function `f`.
    pub call_targets: Vec<Vec<Vec<FnId>>>,
}

impl CallGraph {
    /// Builds the graph over parsed files and their per-function facts
    /// (parallel to `files[i].fns`).
    pub fn build(files: &[ParsedFile], facts: &[Vec<FnFacts>]) -> Self {
        let mut g = CallGraph::default();
        for (fi, file) in files.iter().enumerate() {
            for (ii, item) in file.fns.iter().enumerate() {
                let id = g.fns.len();
                g.by_name.entry(item.name.clone()).or_default().push(id);
                g.fns.push(FnNode {
                    file: fi,
                    item: item.clone(),
                    facts: facts[fi][ii].clone(),
                });
            }
        }
        for id in 0..g.fns.len() {
            let node = &g.fns[id];
            let mut targets_per_call = Vec::with_capacity(node.facts.calls.len());
            let mut edge_set: Vec<FnId> = Vec::new();
            for call in &node.facts.calls {
                let t = g.resolve(id, &call.callee);
                for &x in &t {
                    if !edge_set.contains(&x) {
                        edge_set.push(x);
                    }
                }
                targets_per_call.push(t);
            }
            g.edges.push(edge_set);
            g.call_targets.push(targets_per_call);
        }
        g
    }

    /// Resolves one call site from `caller` to candidate functions.
    pub fn resolve(&self, caller: FnId, callee: &Callee) -> Vec<FnId> {
        let caller_node = &self.fns[caller];
        match callee {
            Callee::Method(name) => {
                let mut out: Vec<FnId> = self
                    .by_name
                    .get(name)
                    .map(|v| {
                        v.iter()
                            .copied()
                            .filter(|&id| self.fns[id].item.type_ctx.is_some())
                            .collect()
                    })
                    .unwrap_or_default();
                out.sort_unstable();
                out
            }
            Callee::Path(segs) => {
                let Some(name) = segs.last() else {
                    return Vec::new();
                };
                let cands = match self.by_name.get(name) {
                    Some(v) => v,
                    None => return Vec::new(),
                };
                let suffix = segs.join("::");
                let mut matched: Vec<FnId> = cands
                    .iter()
                    .copied()
                    .filter(|&id| path_ends_with(&self.fns[id].item.qual, &suffix))
                    .collect();
                if matched.is_empty() {
                    return Vec::new();
                }
                // Prefer same-file, then same-crate definitions.
                let same_file: Vec<FnId> = matched
                    .iter()
                    .copied()
                    .filter(|&id| self.fns[id].file == caller_node.file)
                    .collect();
                if !same_file.is_empty() {
                    return same_file;
                }
                let caller_crate = crate_of(&caller_node.item.qual);
                let same_crate: Vec<FnId> = matched
                    .iter()
                    .copied()
                    .filter(|&id| crate_of(&self.fns[id].item.qual) == caller_crate)
                    .collect();
                if !same_crate.is_empty() {
                    return same_crate;
                }
                matched.sort_unstable();
                matched
            }
        }
    }

    /// Finds every function whose qualified path ends with `suffix`
    /// (segment-aligned).
    pub fn find(&self, suffix: &str) -> Vec<FnId> {
        let name = suffix.rsplit("::").next().unwrap_or(suffix);
        self.by_name
            .get(name)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&id| path_ends_with(&self.fns[id].item.qual, suffix))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// BFS over call edges from `roots`, skipping test functions. Returns
    /// for each reached function its BFS parent (roots map to
    /// themselves), which reconstructs a shortest witness path.
    pub fn reachable_from(&self, roots: &[FnId]) -> BTreeMap<FnId, FnId> {
        let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut seen: HashSet<FnId> = HashSet::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        let mut sorted_roots: Vec<FnId> = roots.to_vec();
        sorted_roots.sort_unstable();
        for &r in &sorted_roots {
            if !self.fns[r].item.is_test && seen.insert(r) {
                parent.insert(r, r);
                queue.push_back(r);
            }
        }
        while let Some(f) = queue.pop_front() {
            for &g in &self.edges[f] {
                if self.fns[g].item.is_test {
                    continue;
                }
                if seen.insert(g) {
                    parent.insert(g, f);
                    queue.push_back(g);
                }
            }
        }
        parent
    }

    /// Reconstructs the root→`f` call path from a parent map.
    pub fn witness_path(&self, parent: &BTreeMap<FnId, FnId>, f: FnId) -> Vec<FnId> {
        let mut path = vec![f];
        let mut cur = f;
        while let Some(&p) = parent.get(&cur) {
            if p == cur {
                break;
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }
}

/// `cronus_core::ring::decode_request` ends with `ring::decode_request`
/// but not with `ng::decode_request`: matches must be segment-aligned.
pub fn path_ends_with(qual: &str, suffix: &str) -> bool {
    if !qual.ends_with(suffix) {
        return false;
    }
    let rest = &qual[..qual.len() - suffix.len()];
    rest.is_empty() || rest.ends_with("::")
}

/// The first path segment: the crate.
fn crate_of(qual: &str) -> &str {
    qual.split("::").next().unwrap_or(qual)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::extract;
    use crate::lex::lex;
    use crate::syntax::parse;

    fn build(files: &[(&str, &str, &str)]) -> CallGraph {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(p, m, text)| parse(p, m, lex(text)))
            .collect();
        let facts: Vec<Vec<_>> = parsed
            .iter()
            .map(|f| f.fns.iter().map(|i| extract(&f.tokens, i)).collect())
            .collect();
        CallGraph::build(&parsed, &facts)
    }

    #[test]
    fn resolves_bare_and_qualified_calls() {
        let g = build(&[
            (
                "crates/a/src/lib.rs",
                "a",
                "pub fn entry() { helper(); b::util::work(); }\nfn helper() {}",
            ),
            ("crates/b/src/util.rs", "b::util", "pub fn work() {}"),
        ]);
        let entry = g.find("a::entry")[0];
        let names: Vec<&str> = g.edges[entry]
            .iter()
            .map(|&id| g.fns[id].item.name.as_str())
            .collect();
        assert_eq!(names, vec!["helper", "work"]);
    }

    #[test]
    fn same_crate_preferred_on_ambiguity() {
        let g = build(&[
            (
                "crates/a/src/lib.rs",
                "a",
                "pub fn go() { init(); }\nfn init() {}",
            ),
            ("crates/b/src/lib.rs", "b", "fn init() {}"),
        ]);
        let go = g.find("a::go")[0];
        assert_eq!(g.edges[go].len(), 1);
        assert_eq!(g.fns[g.edges[go][0]].item.qual, "a::init");
    }

    #[test]
    fn method_calls_resolve_to_all_impl_methods() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "a",
            "struct S;\nimpl S { pub fn emit(&self) {} }\n\
             struct T;\nimpl T { pub fn emit(&self) {} }\n\
             pub fn go(s: S) { s.emit(); }\nfn emit() {}",
        )]);
        let go = g.find("a::go")[0];
        // Both methods, but not the free fn of the same name.
        let quals: Vec<&str> = g.edges[go]
            .iter()
            .map(|&id| g.fns[id].item.qual.as_str())
            .collect();
        assert_eq!(quals, vec!["a::S::emit", "a::T::emit"]);
    }

    #[test]
    fn reachability_skips_tests_and_yields_paths() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "a",
            "pub fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn island() {}\n\
             #[cfg(test)]\nmod tests { fn t() { super::island(); } }",
        )]);
        let root = g.find("a::root")[0];
        let reach = g.reachable_from(&[root]);
        let leaf = g.find("a::leaf")[0];
        let island = g.find("a::island")[0];
        assert!(reach.contains_key(&leaf));
        assert!(!reach.contains_key(&island), "only test code calls island");
        let path: Vec<&str> = g
            .witness_path(&reach, leaf)
            .into_iter()
            .map(|id| g.fns[id].item.name.as_str())
            .collect();
        assert_eq!(path, vec!["root", "mid", "leaf"]);
    }

    #[test]
    fn segment_alignment() {
        assert!(path_ends_with("a::ring::decode", "ring::decode"));
        assert!(path_ends_with("a::ring::decode", "decode"));
        assert!(!path_ends_with("a::spring::decode", "ring::decode"));
    }
}
