//! The cronus-lint v2 engine: loads sources, builds the call graph, and
//! runs every analysis from [`crate::rules`] deterministically.
//!
//! Determinism contract: files are analyzed in sorted path order, all
//! intermediate maps are ordered, no wall clock or randomness is read,
//! and [`Report::render`]/[`Report::render_json`] are pure functions of
//! the source tree — the full-repo report is byte-identical across runs.

use std::fs;
use std::io;
use std::path::Path;

use crate::facts::{extract, FnFacts, PanicKind};
use crate::graph::CallGraph;
use crate::lex::lex;
use crate::rules::{self, Finding};
use crate::syntax::{parse, ParsedFile};
use crate::taint::{self, Step};

/// Relative path of the unwrap/expect allowlist.
pub const ALLOWLIST_PATH: &str = "crates/audit/lint_allowlist.txt";

/// One loaded source file: raw text plus its parse.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Raw file contents (for allowlist needle matching).
    pub text: String,
    /// The parsed token stream and items.
    pub parsed: ParsedFile,
}

/// The analyzed source tree.
#[derive(Debug, Default)]
pub struct SourceSet {
    /// Files in sorted path order.
    pub files: Vec<SourceFile>,
    /// Allowlist file contents (empty when absent).
    pub allowlist: String,
}

impl SourceSet {
    /// Loads every `.rs` file under `root` (skipping `target/` and dot
    /// directories) plus the allowlist.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from walking or reading the tree.
    pub fn load(root: &Path) -> io::Result<SourceSet> {
        let mut paths = Vec::new();
        collect_rs_files(root, root, &mut paths)?;
        paths.sort();
        let mut files = Vec::new();
        for rel in &paths {
            let text = fs::read_to_string(root.join(rel))?;
            files.push(parse_one(rel, text));
        }
        let allowlist = match fs::read_to_string(root.join(ALLOWLIST_PATH)) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        Ok(SourceSet { files, allowlist })
    }

    /// Builds a set from in-memory `(path, text)` pairs — the fixture
    /// entry point used by `tests/static_analysis.rs`.
    pub fn from_files(files: Vec<(String, String)>) -> SourceSet {
        let mut files: Vec<SourceFile> = files.into_iter().map(|(p, t)| parse_one(&p, t)).collect();
        files.sort_by(|a, b| a.parsed.path.cmp(&b.parsed.path));
        SourceSet {
            files,
            allowlist: String::new(),
        }
    }

    /// Replaces the allowlist text (fixtures).
    pub fn with_allowlist(mut self, text: &str) -> SourceSet {
        self.allowlist = text.to_string();
        self
    }
}

fn parse_one(rel: &str, text: String) -> SourceFile {
    let module = module_of(rel);
    let parsed = parse(rel, &module, lex(&text));
    SourceFile { text, parsed }
}

/// Outcome of one engine run (pre-baseline).
#[derive(Debug, Default)]
pub struct Report {
    /// Everything that fired, sorted by (path, line, rule, message).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files analyzed.
    pub files_scanned: usize,
    /// Number of functions in the call graph.
    pub fns_analyzed: usize,
    /// Number of distinct `crates/<name>` trees seen.
    pub crates_analyzed: usize,
}

impl Report {
    /// True when no rule fired.
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }

    /// Text rendering: one line per finding, counterexample chains
    /// indented beneath it, then a one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.path, f.line, f.rule, f.message
            ));
            out.push_str(&taint::render_chain(&f.chain));
        }
        out.push_str(&format!(
            "cronus-lint: {} crate(s), {} file(s), {} function(s) analyzed, {} finding(s)\n",
            self.crates_analyzed,
            self.files_scanned,
            self.fns_analyzed,
            self.findings.len()
        ));
        out
    }

    /// JSON rendering (stable field order; byte-identical across runs).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"crates\": {},\n  \"files\": {},\n  \"functions\": {},\n",
            self.crates_analyzed, self.files_scanned, self.fns_analyzed
        ));
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"rule\": {},\n", json_str(f.rule)));
            out.push_str(&format!("      \"path\": {},\n", json_str(&f.path)));
            out.push_str(&format!("      \"line\": {},\n", f.line));
            out.push_str(&format!("      \"message\": {},\n", json_str(&f.message)));
            out.push_str("      \"chain\": [");
            for (j, s) in f.chain.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"path\": {}, \"line\": {}, \"note\": {}}}",
                    json_str(&s.path),
                    s.line,
                    json_str(&s.note)
                ));
            }
            out.push_str("]\n");
            out.push_str(if i + 1 == self.findings.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One entry of `lint_allowlist.txt`: `path | line-substring | reason`.
#[derive(Clone, Debug)]
struct AllowEntry {
    path: String,
    needle: String,
    reason: String,
    line_no: u32,
    used: bool,
}

fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '|').map(str::trim);
        let (Some(path), Some(needle), Some(reason)) = (parts.next(), parts.next(), parts.next())
        else {
            entries.push(AllowEntry {
                path: line.to_string(),
                needle: String::new(),
                reason: "malformed entry: expected `path | line-substring | reason`".into(),
                line_no: i as u32 + 1,
                used: false,
            });
            continue;
        };
        entries.push(AllowEntry {
            path: path.to_string(),
            needle: needle.to_string(),
            reason: reason.to_string(),
            line_no: i as u32 + 1,
            used: false,
        });
    }
    entries
}

/// Paths the interprocedural analyses report findings in: crate sources
/// and the umbrella `src/` tree — not integration tests or benches.
fn analyzed_scope(path: &str) -> bool {
    (path.starts_with("crates/") && path.contains("/src/")) || path.starts_with("src/")
}

/// Runs every analysis over a loaded set. Pure; no baseline applied —
/// see [`crate::baseline`] for the ratchet.
pub fn run(set: &SourceSet) -> Report {
    let parsed_owned: Vec<ParsedFile> = set.files.iter().map(|f| f.parsed.clone()).collect();
    let facts: Vec<Vec<FnFacts>> = parsed_owned
        .iter()
        .map(|f| f.fns.iter().map(|i| extract(&f.tokens, i)).collect())
        .collect();
    let g = CallGraph::build(&parsed_owned, &facts);
    let mut findings: Vec<Finding> = Vec::new();

    // ---- 1. secret-taint -------------------------------------------
    let cfg = rules::taint_config(&g);
    for t in taint::analyze(&g, &parsed_owned, &cfg) {
        if !analyzed_scope(&t.path) {
            continue;
        }
        findings.push(Finding {
            rule: "secret-taint",
            path: t.path,
            line: t.line,
            message: t.message,
            chain: t.chain,
        });
    }

    // ---- 2. panic-reachability -------------------------------------
    let mut allow = parse_allowlist(&set.allowlist);
    let roots = rules::roots(&g);
    let reach = g.reachable_from(&roots);
    for &f in reach.keys() {
        let node = &g.fns[f];
        let file = &parsed_owned[node.file];
        if node.item.is_test || !rules::in_scope(&file.path, &rules::PANIC_SCOPES) {
            continue;
        }
        let in_unwrap_scope = rules::in_scope(&file.path, &rules::NO_UNWRAP_SCOPES);
        for site in &node.facts.panics {
            let covered_elsewhere =
                matches!(site.kind, PanicKind::Unwrap | PanicKind::Expect) && in_unwrap_scope;
            let reportable = matches!(
                site.kind,
                PanicKind::Macro
                    | PanicKind::Assert
                    | PanicKind::Index
                    | PanicKind::Unwrap
                    | PanicKind::Expect
            );
            if !reportable || covered_elsewhere {
                continue;
            }
            if matches!(site.kind, PanicKind::Unwrap | PanicKind::Expect)
                && allowlisted(&mut allow, &file.path, set, node.file, site.line)
            {
                continue;
            }
            let witness = g.witness_path(&reach, f);
            let root_qual = g.fns[witness[0]].item.qual.clone();
            let mut chain: Vec<Step> = witness
                .into_iter()
                .map(|id| {
                    let n = &g.fns[id];
                    Step {
                        path: parsed_owned[n.file].path.clone(),
                        line: n.item.line,
                        note: format!("`{}`", n.item.qual),
                    }
                })
                .collect();
            if let Some(first) = chain.first_mut() {
                first.note = format!("entry point {}", first.note);
            }
            chain.push(Step {
                path: file.path.clone(),
                line: site.line,
                note: format!("{} here", site.kind.label()),
            });
            findings.push(Finding {
                rule: "panic-reachability",
                path: file.path.clone(),
                line: site.line,
                message: format!(
                    "{} reachable from `{}` ({} call hop(s)); return a typed error",
                    site.kind.label(),
                    root_qual,
                    chain.len().saturating_sub(2),
                ),
                chain,
            });
        }
    }

    // ---- 3. no-unwrap-in-trusted-path (reachable or not) ------------
    for (fi, file) in parsed_owned.iter().enumerate() {
        if !rules::in_scope(&file.path, &rules::NO_UNWRAP_SCOPES) {
            continue;
        }
        for (ii, item) in file.fns.iter().enumerate() {
            if item.is_test {
                continue;
            }
            for site in &facts[fi][ii].panics {
                if !matches!(site.kind, PanicKind::Unwrap | PanicKind::Expect) {
                    continue;
                }
                if allowlisted(&mut allow, &file.path, set, fi, site.line) {
                    continue;
                }
                findings.push(Finding {
                    rule: "no-unwrap-in-trusted-path",
                    path: file.path.clone(),
                    line: site.line,
                    message: format!(
                        "`{}` in trusted non-test code (fn `{}`); return a typed \
                         error or add a justified entry to {}",
                        site.kind.label(),
                        item.name,
                        ALLOWLIST_PATH
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }

    // ---- 4. deprecated-api ------------------------------------------
    for (f, node) in g.fns.iter().enumerate() {
        let file = &parsed_owned[node.file];
        if node.item.is_test || file.path == rules::DEPRECATED_EXEMPT {
            continue;
        }
        for (ci, site) in node.facts.calls.iter().enumerate() {
            let targets = &g.call_targets[f][ci];
            if targets.is_empty() || !targets.iter().all(|&t| g.fns[t].item.is_deprecated) {
                continue;
            }
            let target = &g.fns[targets[0]].item;
            findings.push(Finding {
                rule: "deprecated-api",
                path: file.path.clone(),
                line: site.line,
                message: format!(
                    "call to deprecated `{}` from `{}`; use the replacement \
                     named in its #[deprecated] note",
                    target.qual, node.item.qual
                ),
                chain: vec![Step {
                    path: parsed_owned[g.fns[targets[0]].file].path.clone(),
                    line: target.line,
                    note: format!("`{}` declared #[deprecated] here", target.qual),
                }],
            });
        }
    }
    for file in &parsed_owned {
        if file.path == rules::DEPRECATED_EXEMPT || !analyzed_scope(&file.path) {
            continue;
        }
        for &line in &file.allow_deprecated {
            findings.push(Finding {
                rule: "deprecated-api",
                path: file.path.clone(),
                line,
                message: "`#[allow(deprecated)]` outside crates/core/src/compat.rs; \
                          migrate the call instead of silencing the compiler"
                    .into(),
                chain: Vec::new(),
            });
        }
    }

    // ---- 5 & 6. wall clock, string errors ---------------------------
    for file in &parsed_owned {
        rules::wall_clock_findings(file, &mut findings);
        rules::string_error_findings(file, &mut findings);
    }

    // ---- 7. allowlist hygiene ---------------------------------------
    for e in &allow {
        if !e.used {
            findings.push(Finding {
                rule: "no-unwrap-in-trusted-path",
                path: ALLOWLIST_PATH.into(),
                line: e.line_no,
                message: format!(
                    "allowlist entry `{} | {}` matched nothing; remove it ({})",
                    e.path, e.needle, e.reason
                ),
                chain: Vec::new(),
            });
        }
    }

    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    findings.dedup();

    let mut crates: Vec<&str> = parsed_owned
        .iter()
        .filter_map(|f| {
            f.path
                .strip_prefix("crates/")
                .and_then(|r| r.split('/').next())
        })
        .collect();
    crates.sort_unstable();
    crates.dedup();

    Report {
        findings,
        files_scanned: parsed_owned.len(),
        fns_analyzed: g.fns.len(),
        crates_analyzed: crates.len(),
    }
}

/// Matches a site line against the allowlist (marking entries used).
fn allowlisted(
    allow: &mut [AllowEntry],
    path: &str,
    set: &SourceSet,
    file_idx: usize,
    line: u32,
) -> bool {
    let Some(text) = set
        .files
        .get(file_idx)
        .and_then(|f| f.text.lines().nth(line as usize - 1))
    else {
        return false;
    };
    let mut hit = false;
    for e in allow.iter_mut() {
        if !e.needle.is_empty() && e.path == path && text.contains(e.needle.as_str()) {
            e.used = true;
            hit = true;
        }
    }
    hit
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel_path(root, &path));
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Computes the Rust module path of a repo-relative file path:
/// `crates/core/src/ring.rs` → `cronus_core::ring`,
/// `src/bin/obs-diff.rs` → `obs_diff`, `tests/security.rs` → `security`.
pub fn module_of(path: &str) -> String {
    let stemmed = |s: &str| s.trim_end_matches(".rs").replace('-', "_");
    if let Some(rest) = path.strip_prefix("crates/") {
        let mut parts = rest.split('/');
        let krate = parts.next().unwrap_or("");
        let rest: Vec<&str> = parts.collect();
        let base = format!("cronus_{}", krate.replace('-', "_"));
        if rest.first() == Some(&"src") {
            let mut segs = vec![base];
            for (i, p) in rest[1..].iter().enumerate() {
                let last = i + 2 == rest.len();
                if last && (*p == "lib.rs" || *p == "mod.rs" || *p == "main.rs") {
                    break;
                }
                if last && *p == "bin" {
                    break;
                }
                segs.push(stemmed(p));
            }
            // `src/bin/x.rs` binaries are their own crate root.
            if rest.get(1) == Some(&"bin") {
                return stemmed(rest.last().unwrap_or(&""));
            }
            return segs.join("::");
        }
        // tests/ and benches/ files are their own crate roots.
        return stemmed(rest.last().unwrap_or(&""));
    }
    if let Some(rest) = path.strip_prefix("src/bin/") {
        return stemmed(rest);
    }
    if path == "src/lib.rs" {
        return "cronus".into();
    }
    if let Some(rest) = path.strip_prefix("src/") {
        return format!("cronus::{}", stemmed(rest));
    }
    stemmed(path.rsplit('/').next().unwrap_or(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_paths() {
        assert_eq!(module_of("crates/core/src/ring.rs"), "cronus_core::ring");
        assert_eq!(module_of("crates/core/src/lib.rs"), "cronus_core");
        assert_eq!(
            module_of("crates/workloads/src/dnn/mod.rs"),
            "cronus_workloads::dnn"
        );
        assert_eq!(module_of("crates/bench/src/bin/fig7.rs"), "fig7");
        assert_eq!(module_of("crates/bench/benches/srpc.rs"), "srpc");
        assert_eq!(module_of("src/bin/obs-diff.rs"), "obs_diff");
        assert_eq!(module_of("src/lib.rs"), "cronus");
        assert_eq!(module_of("tests/security.rs"), "security");
    }

    fn set(files: &[(&str, &str)]) -> SourceSet {
        SourceSet::from_files(
            files
                .iter()
                .map(|(p, t)| (p.to_string(), t.to_string()))
                .collect(),
        )
    }

    #[test]
    fn unwrap_rule_is_syntactic_now() {
        // A string literal containing ".unwrap()" — the v1 scanner's
        // false positive — is clean; a real unwrap fires.
        let r = run(&set(&[(
            "crates/core/src/x.rs",
            "fn doc() -> &'static str { \"call .unwrap() never\" }\n\
             fn bad(v: Option<u32>) -> u32 { v.unwrap() }\n",
        )]));
        assert_eq!(r.findings.len(), 1, "{}", r.render());
        assert_eq!(r.findings[0].rule, "no-unwrap-in-trusted-path");
        assert_eq!(r.findings[0].line, 2);
    }

    #[test]
    fn allowlist_suppresses_and_unused_entries_fire() {
        let s = set(&[(
            "crates/core/src/x.rs",
            "fn ok(v: Option<u32>) -> u32 { v.expect(\"checked above\") }\n",
        )])
        .with_allowlist(
            "crates/core/src/x.rs | expect(\"checked above\") | guarded\n\
             crates/core/src/y.rs | expect(\"gone\") | stale entry\n",
        );
        let r = run(&s);
        assert_eq!(r.findings.len(), 1, "{}", r.render());
        assert!(r.findings[0].message.contains("matched nothing"));
        assert_eq!(r.findings[0].path, ALLOWLIST_PATH);
    }

    #[test]
    fn deprecated_calls_resolved_not_matched() {
        let r = run(&set(&[
            (
                "crates/core/src/compat.rs",
                "pub struct S;\nimpl S {\n#[deprecated(note = \"use new\")]\npub fn old(&self) {}\n}\n",
            ),
            (
                "crates/mos/src/x.rs",
                "use cronus_core::compat::S;\npub fn f(s: &S) { s.old(); }\n",
            ),
        ]));
        assert_eq!(r.findings.len(), 1, "{}", r.render());
        assert_eq!(r.findings[0].rule, "deprecated-api");
        assert_eq!(r.findings[0].path, "crates/mos/src/x.rs");
        assert!(!r.findings[0].chain.is_empty());
    }

    #[test]
    fn report_is_byte_identical_across_runs() {
        let files = &[(
            "crates/core/src/x.rs",
            "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n",
        )];
        let a = run(&set(files));
        let b = run(&set(files));
        assert_eq!(a.render(), b.render());
        assert_eq!(a.render_json(), b.render_json());
    }
}
