//! Repo-rule source lint: lexical, std-only, zero dependencies.
//!
//! Four rules, each scoped to the directories where the property must hold
//! (see `AUDIT.md` for rationale):
//!
//! 1. **`deprecated-srpc-entry-points`** — the pre-builder sRPC entry
//!    points (`.call_sync(...)` and friends) and `#[allow(deprecated)]`
//!    may appear only in `crates/core/src/compat.rs`, the shim module.
//! 2. **`no-unwrap-in-trusted-path`** — no `.unwrap()` / `.expect(` in
//!    non-test code of `crates/{core,spm,sim}/src`. Justified uses are
//!    enumerated, with reasons, in `crates/audit/lint_allowlist.txt`;
//!    unused allowlist entries are themselves findings, so the list cannot
//!    rot.
//! 3. **`no-wall-clock`** — `std::time::{Instant, SystemTime}` only in
//!    `crates/obs` and `crates/bench`; everything else runs on the
//!    simulated clock so results stay deterministic. The queue/SLO/
//!    bundle/diff analysis layers
//!    (`crates/obs/src/{queue,slo,bundle,diff}.rs`) are carved *out* of
//!    the exemption: their byte-identical-per-seed guarantee makes them
//!    deterministic code despite living in the exporter crate.
//! 4. **`no-string-errors`** — no `pub fn ... -> Result<_, String>` in
//!    `crates/{core,spm,sim,mos}/src` (plus the strict observatory files
//!    above); public fallible APIs must use typed errors.
//!
//! The scanner is line/token-level: it skips comment lines and
//! `#[cfg(test)]`-gated blocks (tracked by brace depth), which is exactly
//! enough precision for these rules on rustfmt-formatted code.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// One rule finding at a source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintFinding {
    /// The rule that fired.
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// What was matched and why it is rejected.
    pub message: String,
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Outcome of one lint run.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Everything that fired, sorted by (path, line).
    pub findings: Vec<LintFinding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when no rule fired.
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders findings plus a one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{f}");
        }
        let _ = writeln!(
            out,
            "source lint: {} file(s) scanned, {} finding(s)",
            self.files_scanned,
            self.findings.len()
        );
        out
    }
}

/// One entry of `lint_allowlist.txt`.
#[derive(Clone, Debug)]
struct AllowEntry {
    path: String,
    needle: String,
    reason: String,
    line_no: usize,
    used: bool,
}

/// Deprecated sRPC entry-point tokens (rule 1). `.call_sync_attempt(` is
/// safe: the trailing `(` keeps these from matching longer method names.
/// The stream/dispatch redesign adds the positional `open_stream`/
/// `reopen_stream` constructors and the split `route_*` methods, all
/// superseded by `sys.stream(..)` and `route(kind, RoutePolicy)`.
const DEPRECATED_TOKENS: [&str; 9] = [
    ".call_async(",
    ".call_async_with_req(",
    ".call_sync(",
    ".call_sync_with_req(",
    ".open_stream(",
    ".reopen_stream(",
    ".route_with_balancing(",
    ".route_least_loaded(",
    "#[allow(deprecated)]",
];

const DEPRECATED_EXEMPT: &str = "crates/core/src/compat.rs";

/// The rule definitions below spell out every forbidden token literally, so
/// this file can never pass its own scan; it is excluded wholesale.
const SELF: &str = "crates/audit/src/lint.rs";

/// Directories whose non-test code must be unwrap/expect-free (rule 2).
const NO_UNWRAP_SCOPES: [&str; 4] = [
    "crates/core/src",
    "crates/spm/src",
    "crates/sim/src",
    "crates/forensics/src",
];

/// Crates allowed to read the wall clock (rule 3).
const WALL_CLOCK_EXEMPT: [&str; 2] = ["crates/obs", "crates/bench"];

/// Observatory analysis files held to the strict rules (3 and 4) despite
/// living inside the otherwise-exempt `crates/obs`: the queue telemetry,
/// SLO, telemetry-bundle and diff layers promise byte-identical output per
/// seed, so wall-clock reads and stringly-typed errors are as much a bug
/// there as in trusted code.
const STRICT_OBS_FILES: [&str; 4] = [
    "crates/obs/src/bundle.rs",
    "crates/obs/src/diff.rs",
    "crates/obs/src/queue.rs",
    "crates/obs/src/slo.rs",
];

/// Directories whose public APIs must not use `String` errors (rule 4).
const NO_STRING_ERROR_SCOPES: [&str; 5] = [
    "crates/core/src",
    "crates/spm/src",
    "crates/sim/src",
    "crates/mos/src",
    "crates/forensics/src",
];

/// Runs every rule over the repo rooted at `root`.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree (the allowlist
/// file is optional; a missing one means an empty allowlist).
pub fn run_lint(root: &Path) -> io::Result<LintReport> {
    let mut allow = load_allowlist(root)?;
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut findings = Vec::new();
    for rel in &files {
        let text = fs::read_to_string(root.join(rel))?;
        scan_file(rel, &text, &mut allow, &mut findings);
    }
    for e in &allow {
        if !e.used {
            findings.push(LintFinding {
                rule: "no-unwrap-in-trusted-path",
                path: "crates/audit/lint_allowlist.txt".into(),
                line: e.line_no,
                message: format!(
                    "allowlist entry `{} | {}` matched nothing; remove it ({})",
                    e.path, e.needle, e.reason
                ),
            });
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(LintReport {
        findings,
        files_scanned: files.len(),
    })
}

fn load_allowlist(root: &Path) -> io::Result<Vec<AllowEntry>> {
    let path = root.join("crates/audit/lint_allowlist.txt");
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '|').map(str::trim);
        let (Some(path), Some(needle), Some(reason)) = (parts.next(), parts.next(), parts.next())
        else {
            entries.push(AllowEntry {
                path: line.to_string(),
                needle: String::new(),
                reason: "malformed entry: expected `path | line-substring | reason`".into(),
                line_no: i + 1,
                used: false,
            });
            continue;
        };
        entries.push(AllowEntry {
            path: path.to_string(),
            needle: needle.to_string(),
            reason: reason.to_string(),
            line_no: i + 1,
            used: false,
        });
    }
    Ok(entries)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel_path(root, &path));
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn in_scope(path: &str, scopes: &[&str]) -> bool {
    scopes.iter().any(|s| path.starts_with(s))
}

fn is_comment_line(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("//!") || t.starts_with("///")
}

/// Net `{`/`}` balance of a line, ignoring obvious string/char content is
/// not attempted: on rustfmt-formatted code braces in literals inside
/// test modules only ever make the skip region *longer*, which is safe.
fn brace_delta(line: &str) -> i64 {
    let opens = line.matches('{').count() as i64;
    let closes = line.matches('}').count() as i64;
    opens - closes
}

fn scan_file(rel: &str, text: &str, allow: &mut [AllowEntry], findings: &mut Vec<LintFinding>) {
    if rel == SELF {
        return;
    }
    let deprecated_applies = rel != DEPRECATED_EXEMPT;
    let unwrap_applies = in_scope(rel, &NO_UNWRAP_SCOPES);
    let strict_obs = STRICT_OBS_FILES.contains(&rel);
    let wall_clock_applies = !in_scope(rel, &WALL_CLOCK_EXEMPT) || strict_obs;
    let string_error_applies = in_scope(rel, &NO_STRING_ERROR_SCOPES) || strict_obs;

    // Brace-tracked skipping of `#[cfg(test)] mod ... { ... }` regions.
    let mut pending_cfg_test = false;
    let mut test_depth: i64 = 0;
    let mut in_test_block = false;

    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if in_test_block {
            test_depth += brace_delta(line);
            if test_depth <= 0 {
                in_test_block = false;
            }
            continue;
        }
        if line.trim_start().starts_with("#[cfg(test)]") {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test {
            // Attribute lines (e.g. further cfg/allow) keep the flag alive.
            if line.trim_start().starts_with("#[") {
                continue;
            }
            pending_cfg_test = false;
            let t = line.trim_start();
            if t.starts_with("mod ") || t.starts_with("pub mod ") {
                test_depth = brace_delta(line);
                if test_depth > 0 {
                    in_test_block = true;
                }
                continue;
            }
            // `#[cfg(test)]` on a single item (fn, use, …): skip just it.
            test_depth = brace_delta(line);
            if test_depth > 0 {
                in_test_block = true;
            }
            continue;
        }
        if is_comment_line(line) {
            continue;
        }

        if deprecated_applies {
            for token in DEPRECATED_TOKENS {
                if line.contains(token) {
                    findings.push(LintFinding {
                        rule: "deprecated-srpc-entry-points",
                        path: rel.to_string(),
                        line: line_no,
                        message: format!(
                            "`{token}` is deprecated; use the builder call API \
                             (only crates/core/src/compat.rs may reference it)"
                        ),
                    });
                }
            }
        }

        if unwrap_applies && (line.contains(".unwrap()") || line.contains(".expect(")) {
            let allowed = allow.iter_mut().find(|e| {
                !e.needle.is_empty() && e.path == rel && line.contains(e.needle.as_str())
            });
            if let Some(e) = allowed {
                e.used = true;
            } else {
                let what = if line.contains(".unwrap()") {
                    ".unwrap()"
                } else {
                    ".expect("
                };
                findings.push(LintFinding {
                    rule: "no-unwrap-in-trusted-path",
                    path: rel.to_string(),
                    line: line_no,
                    message: format!(
                        "`{what}` in trusted non-test code; return a typed error or \
                         add a justified entry to crates/audit/lint_allowlist.txt"
                    ),
                });
            }
        }

        if wall_clock_applies
            && (line.contains("std::time::Instant")
                || line.contains("std::time::SystemTime")
                || line.contains("Instant::now()")
                || line.contains("SystemTime::now()"))
        {
            findings.push(LintFinding {
                rule: "no-wall-clock",
                path: rel.to_string(),
                line: line_no,
                message: "wall-clock time outside crates/obs and crates/bench breaks \
                          simulation determinism; use the simulated clock"
                    .to_string(),
            });
        }

        if string_error_applies
            && line.contains("pub fn")
            && line.contains("Result<")
            && line.contains(", String>")
        {
            findings.push(LintFinding {
                rule: "no-string-errors",
                path: rel.to_string(),
                line: line_no,
                message: "public fallible API with a bare `String` error; define a \
                          typed error enum"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rel: &str, text: &str) -> Vec<LintFinding> {
        let mut findings = Vec::new();
        scan_file(rel, text, &mut [], &mut findings);
        findings
    }

    #[test]
    fn deprecated_tokens_flagged_outside_the_shim() {
        let hits = scan(
            "crates/foo/src/lib.rs",
            "let x = sys.call_sync(id, n, p);\n",
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "deprecated-srpc-entry-points");
        assert!(scan(
            "crates/core/src/compat.rs",
            "let x = sys.call_sync(id, n, p);\n"
        )
        .is_empty());
    }

    #[test]
    fn longer_method_names_do_not_match() {
        assert!(scan(
            "crates/foo/src/lib.rs",
            "self.call_sync_attempt(id)?;\nself.call_commit_sync(id, n, p, None, None, None)\n"
        )
        .is_empty());
    }

    #[test]
    fn unwrap_flagged_only_in_scope_and_outside_tests() {
        let hits = scan("crates/core/src/x.rs", "v.unwrap();\n");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "no-unwrap-in-trusted-path");
        assert!(scan("crates/chaos/src/x.rs", "v.unwrap();\n").is_empty());
        let test_block = "#[cfg(test)]\nmod tests {\n    fn f() { v.unwrap(); }\n}\n";
        assert!(scan("crates/core/src/x.rs", test_block).is_empty());
    }

    #[test]
    fn unwrap_or_variants_do_not_match() {
        assert!(scan(
            "crates/core/src/x.rs",
            "v.unwrap_or(0);\nv.unwrap_or_else(f);\nv.unwrap_or_default();\nv.expect_err(\"e\");\n"
        )
        .is_empty());
    }

    #[test]
    fn comment_lines_are_skipped() {
        assert!(scan(
            "crates/core/src/x.rs",
            "// v.unwrap() would be wrong here\n/// calls .expect( nothing\n"
        )
        .is_empty());
    }

    #[test]
    fn wall_clock_flagged_outside_obs_and_bench() {
        let hits = scan(
            "crates/core/src/x.rs",
            "let t = std::time::Instant::now();\n",
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "no-wall-clock");
        assert!(scan(
            "crates/bench/src/harness.rs",
            "let t = std::time::Instant::now();\n"
        )
        .is_empty());
        assert!(scan("crates/obs/src/x.rs", "std::time::SystemTime::now();\n").is_empty());
    }

    #[test]
    fn strict_obs_files_lose_the_obs_exemptions() {
        // queue.rs/slo.rs/bundle.rs/diff.rs promise determinism: wall clock
        // flagged even though the rest of crates/obs is exempt.
        for file in STRICT_OBS_FILES {
            let hits = scan(file, "let t = std::time::Instant::now();\n");
            assert_eq!(hits.len(), 1, "{file} must flag wall clock");
            assert_eq!(hits[0].rule, "no-wall-clock");
            let hits = scan(file, "pub fn f() -> Result<u32, String> {\n");
            assert_eq!(hits.len(), 1, "{file} must flag string errors");
            assert_eq!(hits[0].rule, "no-string-errors");
        }
    }

    #[test]
    fn string_error_flagged_in_scope() {
        let hits = scan(
            "crates/spm/src/x.rs",
            "pub fn f() -> Result<u32, String> {\n",
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "no-string-errors");
        assert!(scan(
            "crates/obs/src/json.rs",
            "pub fn f() -> Result<u32, String> {\n"
        )
        .is_empty());
    }

    #[test]
    fn allowlist_suppresses_and_marks_used() {
        let mut allow = vec![AllowEntry {
            path: "crates/core/src/x.rs".into(),
            needle: "expect(\"checked\")".into(),
            reason: "length-guarded".into(),
            line_no: 1,
            used: false,
        }];
        let mut findings = Vec::new();
        scan_file(
            "crates/core/src/x.rs",
            "v.expect(\"checked\");\n",
            &mut allow,
            &mut findings,
        );
        assert!(findings.is_empty());
        assert!(allow[0].used);
    }
}
