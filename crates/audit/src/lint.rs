//! Compatibility shim over the cronus-lint v2 engine.
//!
//! The line-level lexical scanner that used to live here has been
//! replaced by a real static-analysis pipeline — hand-written lexer
//! ([`crate::lex`]), item parser ([`crate::syntax`]), fact extraction
//! ([`crate::facts`]), repo-wide call graph ([`crate::graph`]), the
//! secret-taint analysis ([`crate::taint`]) and the rule catalog
//! ([`crate::rules`]) — orchestrated by [`crate::engine`] and ratcheted
//! against `LINT_BASELINE.json` by [`crate::baseline`].
//!
//! This module keeps the original `run_lint` / [`LintReport`] surface so
//! `audit --lint` and older callers keep working: it runs the full
//! engine with the committed baseline applied and flattens the findings
//! (chains included in the rendering). New code should call the engine
//! directly, or `cargo run --bin lint` (`--json`, `--baseline`,
//! `--explain <rule>`).

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::baseline::{self, Baseline};
use crate::engine::{run, SourceSet};
use crate::taint::render_chain;

/// One rule finding at a source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintFinding {
    /// The rule that fired.
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// What was matched and why it is rejected; counterexample chains
    /// are appended as indented lines.
    pub message: String,
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Outcome of one lint run.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Everything that fired, sorted by (path, line).
    pub findings: Vec<LintFinding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when no rule fired.
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders findings plus a one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{f}");
        }
        let _ = writeln!(
            out,
            "source lint: {} file(s) scanned, {} finding(s)",
            self.files_scanned,
            self.findings.len()
        );
        out
    }
}

/// Runs the full v2 engine over the repo rooted at `root`, applying the
/// committed `LINT_BASELINE.json` ratchet when present.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree. A malformed
/// baseline file is reported as a finding, not an error.
pub fn run_lint(root: &Path) -> io::Result<LintReport> {
    let set = SourceSet::load(root)?;
    let report = run(&set);
    let files_scanned = report.files_scanned;
    let (base, mut findings) = match fs::read_to_string(root.join("LINT_BASELINE.json")) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => (b, Vec::new()),
            Err(msg) => (
                Baseline::default(),
                vec![crate::rules::Finding {
                    rule: "baseline-ratchet",
                    path: "LINT_BASELINE.json".into(),
                    line: 0,
                    message: msg,
                    chain: Vec::new(),
                }],
            ),
        },
        Err(e) if e.kind() == io::ErrorKind::NotFound => (Baseline::default(), Vec::new()),
        Err(e) => return Err(e),
    };
    let (visible, _suppressed) = baseline::apply(report.findings, &base);
    findings.extend(visible);
    Ok(LintReport {
        findings: findings
            .into_iter()
            .map(|f| {
                let mut message = f.message;
                if !f.chain.is_empty() {
                    message.push('\n');
                    let rendered = render_chain(&f.chain);
                    message.push_str(rendered.trim_end_matches('\n'));
                }
                LintFinding {
                    rule: f.rule,
                    path: f.path,
                    line: f.line as usize,
                    message,
                }
            })
            .collect(),
        files_scanned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every declared source/sink/sanitizer/root suffix must resolve to
    /// at least one function in this repo — a dead entry means the rule
    /// silently stopped covering what it claims to cover (exactly how a
    /// `crypto::measure` entry once went dead when segment alignment
    /// rejected it against `cronus_crypto::measure`).
    #[test]
    fn every_configured_path_resolves_in_this_repo() {
        use crate::facts::extract;
        use crate::graph::{path_ends_with, CallGraph};

        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("repo root");
        let set = SourceSet::load(root).expect("sources load");
        let parsed: Vec<_> = set.files.iter().map(|f| f.parsed.clone()).collect();
        let facts: Vec<Vec<_>> = parsed
            .iter()
            .map(|f| f.fns.iter().map(|i| extract(&f.tokens, i)).collect())
            .collect();
        let g = CallGraph::build(&parsed, &facts);
        let mut dead = Vec::new();
        for suffix in crate::rules::SOURCE_PATHS
            .iter()
            .chain(&crate::rules::SINK_PATHS)
            .chain(&crate::rules::SANITIZER_PATHS)
            .chain(&crate::rules::ROOT_PATHS)
        {
            if !g.fns.iter().any(|n| path_ends_with(&n.item.qual, suffix)) {
                dead.push(*suffix);
            }
        }
        assert!(dead.is_empty(), "dead rule-config entries: {dead:?}");
    }

    #[test]
    fn shim_runs_the_engine_over_this_repo() {
        // CARGO_MANIFEST_DIR is crates/audit; the repo root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("repo root");
        let report = run_lint(root).expect("lint runs");
        assert!(report.files_scanned > 50, "whole repo scanned");
        assert!(
            report.passed(),
            "repo must lint clean under the baseline:\n{}",
            report.render()
        );
    }
}
