//! # cronus-audit — the isolation auditor
//!
//! CRONUS's security argument (R3.1/R3.2, §IV) is a statement about
//! *mapping state*: whatever the workloads and failures do, the TZASC,
//! TZPC, stage-2, SMMU and devtree configurations must always compose into
//! mutually isolated partitions. This crate verifies that statically, at
//! any moment, against a live system:
//!
//! * [`model::IsolationModel::extract`] snapshots the complete mapping
//!   state into plain sorted data (renderable with `audit --dump`);
//! * [`invariants::check_model`] checks five named invariants I1–I5 and
//!   reports per-invariant counterexamples down to the exact physical page,
//!   every mapper involved, and the share/stream provenance;
//! * [`install_hooks`] wires the audit into
//!   [`cronus_core::CronusSystem`]'s reconfiguration points (enclave
//!   create/destroy, stream open/close/reopen, ecall, failure injection,
//!   recovery) via the `audit-hooks` feature, so every state transition is
//!   re-verified during tests and campaigns;
//! * the **cronus-lint v2** static-analysis engine — a hand-written
//!   lexer ([`lex`]), brace-tree item parser ([`syntax`]), per-function
//!   fact extraction ([`facts`]), a repo-wide call graph ([`graph`]),
//!   the interprocedural secret-taint analysis ([`taint`]) and the rule
//!   catalog ([`rules`]) — orchestrated by [`engine::run`], ratcheted
//!   against `LINT_BASELINE.json` by [`baseline`], and exposed as
//!   `cargo run --bin lint` with [`lint::run_lint`] kept as the
//!   `audit --lint` shim.
//!
//! The chaos campaign runs the full audit after every scenario as its
//! fourth invariant (A4); `cargo run --bin audit` drives it over every
//! example workload; `scripts/ci.sh --audit` gates both and
//! `scripts/ci.sh --lint` gates the static analyses. See `AUDIT.md` for
//! the model schema, the invariant catalogue and the lint rule catalog.

pub mod baseline;
pub mod engine;
pub mod facts;
pub mod graph;
pub mod invariants;
pub mod lex;
pub mod lint;
pub mod model;
pub mod rules;
pub mod syntax;
pub mod taint;

pub use baseline::Baseline;
pub use engine::{Report, SourceSet};
pub use invariants::{audit_system, check_model, AuditReport, Invariant, Violation};
pub use lint::{run_lint, LintFinding, LintReport};
pub use model::{IsolationModel, ShareModel};
pub use rules::{Finding, Rule, RULES};

use cronus_core::CronusSystem;

/// Installs a counting audit hook: the five invariants are re-checked at
/// every reconfiguration point, violations are tallied in
/// [`CronusSystem::audit_violations`] and the `audit.violations` metric,
/// and execution continues (so a campaign can finish and report).
pub fn install_hooks(sys: &mut CronusSystem) {
    sys.set_audit_hook(Box::new(|sys| audit_system(sys).violations.len()));
}

/// Installs a failing-fast audit hook: panics with the rendered report at
/// the first reconfiguration point where an invariant breaks. For tests.
///
/// # Panics
///
/// Panics when any invariant I1–I5 is violated.
pub fn install_strict_hooks(sys: &mut CronusSystem) {
    sys.set_audit_hook(Box::new(|sys| {
        let report = audit_system(sys);
        assert!(
            report.passed(),
            "isolation audit failed at a reconfiguration point:\n{}",
            report.render()
        );
        0
    }));
}

/// Installs the mapping-state digest hook used by the forensics black box:
/// on a proceed-trap, the snapshot records a digest of the full extracted
/// [`IsolationModel`], so a post-mortem can prove which mapping state the
/// survivor saw without dumping the mappings themselves.
pub fn install_digest_hook(sys: &mut CronusSystem) {
    sys.set_digest_hook(Box::new(|sys| {
        let model = IsolationModel::extract(sys);
        cronus_crypto::measure("mapping-state", model.render().as_bytes())
    }));
}
