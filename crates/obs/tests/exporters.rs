//! Property tests for the JSON exporters: whatever span names, track names,
//! label values, and run names the system throws at the recorder, the
//! Chrome trace and metrics snapshot must stay parseable JSON (quotes,
//! backslashes, control characters, and non-ASCII included), and the flow
//! events derived from request ids must pair up.

use std::collections::BTreeMap;

use cronus_obs::{parse, FlightRecorder, Json};
use cronus_sim::SimNs;
use proptest::prelude::*;
use proptest::Strategy;

/// Strings drawn from an alphabet of JSON-hostile characters: quotes,
/// backslashes, slashes, controls, and non-ASCII (including an astral-plane
/// emoji, which needs a surrogate pair in `\u` escapes).
fn nasty_string() -> impl Strategy<Value = String> {
    const ALPHABET: &[char] = &[
        'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{8}', '\u{c}', '\u{1}', 'é', 'к',
        '漢', '🚀', '\u{2028}',
    ];
    proptest::collection::vec(any::<u8>(), 0..12).prop_map(|bytes| {
        bytes
            .iter()
            .map(|b| ALPHABET[*b as usize % ALPHABET.len()])
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chrome_trace_stays_parseable(
        spans in proptest::collection::vec(
            (nasty_string(), nasty_string(), any::<u16>(), any::<bool>()),
            1..24,
        ),
    ) {
        let rec = FlightRecorder::new();
        let mut now = 0u64;
        for (name, track, len, tracked) in &spans {
            if *tracked {
                let req = rec.alloc_req();
                rec.set_current_req(Some(req));
            } else {
                rec.set_current_req(None);
            }
            let t = rec.track(track);
            let start = SimNs::from_nanos(now);
            let end = SimNs::from_nanos(now + u64::from(*len) + 1);
            rec.complete_span(t, name.clone(), "srpc", start, end);
            now += u64::from(*len) + 2;
        }
        let json = rec.chrome_trace_json();
        let doc = parse(&json);
        prop_assert!(doc.is_ok(), "trace not parseable: {:?}", doc.err());
        let doc = doc.expect("checked");
        let events = doc.get("traceEvents").and_then(Json::as_arr);
        prop_assert!(events.is_some(), "traceEvents missing");
    }

    #[test]
    fn metrics_snapshot_stays_parseable(
        entries in proptest::collection::vec(
            (nasty_string(), nasty_string(), nasty_string(), any::<u16>()),
            0..24,
        ),
        run in nasty_string(),
    ) {
        let rec = FlightRecorder::new();
        for (name, key, value, v) in &entries {
            rec.counter_add(name, &[(key.as_str(), value.as_str())], u64::from(*v));
            rec.gauge_set(name, &[(key.as_str(), value.as_str())], -i64::from(*v));
            rec.observe(name, &[(key.as_str(), value.as_str())], SimNs::from_nanos(u64::from(*v)));
        }
        let json = rec.metrics_snapshot_json(&run);
        let doc = parse(&json);
        prop_assert!(doc.is_ok(), "snapshot not parseable: {:?}", doc.err());
    }

    #[test]
    fn flow_ids_pair_up(chains in proptest::collection::vec(1usize..6, 1..12)) {
        let rec = FlightRecorder::new();
        let mut now = 0u64;
        for (ri, n) in chains.iter().enumerate() {
            let req = rec.alloc_req();
            rec.set_current_req(Some(req));
            for k in 0..*n {
                let t = rec.track(&format!("track:{}", k % 3));
                rec.complete_span(
                    t,
                    format!("step{ri}.{k}"),
                    "srpc",
                    SimNs::from_nanos(now),
                    SimNs::from_nanos(now + 10),
                );
                now += 20;
            }
        }
        rec.set_current_req(None);
        let doc = parse(&rec.chrome_trace_json()).expect("trace parses");
        let mut counts: BTreeMap<u64, (u64, u64, u64)> = BTreeMap::new();
        for e in doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents") {
            let (Some(ph), Some(id)) = (
                e.get("ph").and_then(Json::as_str),
                e.get("id").and_then(Json::as_u64),
            ) else {
                continue;
            };
            let c = counts.entry(id).or_insert((0, 0, 0));
            match ph {
                "s" => c.0 += 1,
                "t" => c.1 += 1,
                "f" => c.2 += 1,
                _ => {}
            }
        }
        // ReqIds are allocated 1, 2, ... in chain order; chains of one span
        // emit no flow events at all.
        for (ri, n) in chains.iter().enumerate() {
            let id = ri as u64 + 1;
            if *n < 2 {
                prop_assert!(!counts.contains_key(&id), "flow {id} for 1-span request");
            } else {
                let (s, t, f) = counts.get(&id).copied().unwrap_or((0, 0, 0));
                prop_assert_eq!(s, 1, "flow {} starts", id);
                prop_assert_eq!(f, 1, "flow {} finishes", id);
                prop_assert_eq!(t, *n as u64 - 2, "flow {} steps", id);
            }
        }
    }
}
