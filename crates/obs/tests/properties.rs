//! Property-based tests for the queue observatory's Little's-law self-test.
//!
//! The full generated suite lives in the gated `full` module (enable with the
//! non-default `proptest` feature, e.g. `cargo test --all-features`); the
//! `smoke` module keeps a deterministic subset always on.
//!
//! The property under test: for an *honestly* instrumented FIFO single-server
//! queue — enqueue/dequeue timestamps and caller-reported wait/service splits
//! that describe the same physical history — the timestamp-derived mean depth
//! `(Σ deq_at − Σ enq_at) / window` and the sojourn-derived `λW` agree within
//! tolerance, for any arrival/service pattern. Corrupting the reported waits
//! (while leaving the timestamps honest) must be flagged.

/// Drives a FIFO single-server queue through a station honestly: item `i`
/// arrives at the cumulative sum of `gaps[..i]`, starts service when both it
/// and the server are ready, and reports its true wait/service split at its
/// true completion instant. Returns the final virtual time.
fn drive_honest(
    st: &mut cronus_obs::queue::QueueStation,
    gaps: &[u64],
    svcs: &[u64],
    wait_scale: u64,
) -> u64 {
    let ns = cronus_sim::SimNs::from_nanos;
    let mut arrive = 0u64;
    let mut server_free = 0u64;
    let mut pending: Vec<(u64, u64)> = Vec::new(); // (arrive, svc)
    let n = gaps.len().min(svcs.len());
    for i in 0..n {
        arrive += gaps[i];
        st.enqueue(ns(arrive));
        pending.push((arrive, svcs[i]));
        // Complete everything the server finishes before the next arrival.
        let horizon = if i + 1 < n {
            arrive + gaps[i + 1]
        } else {
            u64::MAX
        };
        while let Some(&(a, s)) = pending.first() {
            let start = server_free.max(a);
            if start >= horizon {
                break;
            }
            pending.remove(0);
            let done = start + s;
            server_free = done;
            st.dequeue(ns(done), ns((start - a) * wait_scale), ns(s));
        }
    }
    while let Some((a, s)) = pending.first().copied() {
        pending.remove(0);
        let start = server_free.max(a);
        let done = start + s;
        server_free = done;
        st.dequeue(ns(done), ns((start - a) * wait_scale), ns(s));
    }
    server_free
}

#[cfg(feature = "proptest")]
mod full {
    use proptest::prelude::*;

    use cronus_obs::queue::{
        QueueKind, QueueStation, DEFAULT_LITTLE_TOLERANCE, MIN_LITTLE_DEQUEUES,
    };
    use cronus_sim::SimNs;

    use super::drive_honest;

    proptest! {
        /// Any honest FIFO trace passes the cross-check: arrivals with
        /// arbitrary gaps, arbitrary per-item service times (sub-critical,
        /// critical, or saturated — the property does not depend on load).
        #[test]
        fn honest_traces_always_pass(
            gaps in proptest::collection::vec(1u64..5_000, 8..80),
            svcs in proptest::collection::vec(1u64..8_000, 8..80),
        ) {
            let mut st = QueueStation::new("q", QueueKind::Ring, 64);
            drive_honest(&mut st, &gaps, &svcs, 1);
            let n = gaps.len().min(svcs.len()) as u64;
            prop_assume!(n >= MIN_LITTLE_DEQUEUES);
            let u = st.use_metrics(DEFAULT_LITTLE_TOLERANCE);
            prop_assert!(u.little.checked, "drained queue must be checkable");
            prop_assert!(
                u.little.within,
                "honest trace flagged: rel_err {} L_obs {} L_pred {}",
                u.little.rel_err, u.little.l_observed, u.little.l_predicted
            );
        }

        /// Over-reporting waits by 4x on a *saturated* queue (service always
        /// exceeds the arrival gap, so real waiting accumulates) must push the
        /// predicted λW far enough from the observed L to be flagged.
        #[test]
        fn corrupted_waits_are_flagged(
            gaps in proptest::collection::vec(50u64..500, 16..64),
            extra in proptest::collection::vec(1u64..2_000, 16..64),
        ) {
            let n = gaps.len().min(extra.len());
            // svc = 2*gap + extra guarantees a growing backlog, hence
            // substantial genuine waits for the corruption to inflate.
            let svcs: Vec<u64> = (0..n).map(|i| gaps[i] * 2 + extra[i]).collect();
            let mut st = QueueStation::new("q", QueueKind::Ring, 64);
            drive_honest(&mut st, &gaps[..n], &svcs, 4);
            let u = st.use_metrics(DEFAULT_LITTLE_TOLERANCE);
            prop_assert!(u.little.checked);
            prop_assert!(
                !u.little.within,
                "4x wait inflation slipped through: rel_err {} L_obs {} L_pred {}",
                u.little.rel_err, u.little.l_observed, u.little.l_predicted
            );
        }

        /// The observed-L sum form is invariant under the order completions
        /// are *reported* in: replaying the same physical history with the
        /// dequeue calls arbitrarily permuted (as a lazily-drained ring does
        /// at `sync`) yields the identical l_observed.
        #[test]
        fn observed_l_is_reporting_order_invariant(
            gaps in proptest::collection::vec(1u64..1_000, 8..40),
            svcs in proptest::collection::vec(1u64..2_000, 8..40),
            rot in 1usize..16,
        ) {
            let n = gaps.len().min(svcs.len());
            prop_assume!(n as u64 >= MIN_LITTLE_DEQUEUES);
            // Compute the true completion schedule once.
            let mut arrive = 0u64;
            let mut server_free = 0u64;
            let mut events: Vec<(u64, u64, u64)> = Vec::new(); // (enq, deq, wait)
            for i in 0..n {
                arrive += gaps[i];
                let start = server_free.max(arrive);
                let done = start + svcs[i];
                server_free = done;
                events.push((arrive, done, start - arrive));
            }
            let run = |order: &[usize]| {
                let mut st = QueueStation::new("q", QueueKind::Ring, 64);
                for &(enq, _, _) in &events {
                    st.enqueue(SimNs::from_nanos(enq));
                }
                for &i in order {
                    let (_, deq, wait) = events[i];
                    st.dequeue(
                        SimNs::from_nanos(deq),
                        SimNs::from_nanos(wait),
                        SimNs::from_nanos(svcs[i]),
                    );
                }
                st.use_metrics(DEFAULT_LITTLE_TOLERANCE)
            };
            let fifo: Vec<usize> = (0..n).collect();
            let mut rotated = fifo.clone();
            rotated.rotate_left(rot % n);
            let a = run(&fifo);
            let b = run(&rotated);
            prop_assert_eq!(a.little.l_observed.to_bits(), b.little.l_observed.to_bits());
            prop_assert!(a.little.checked && b.little.checked);
            prop_assert!(a.little.within && b.little.within);
        }
    }
}

mod smoke {
    use cronus_obs::queue::{QueueKind, QueueStation, DEFAULT_LITTLE_TOLERANCE};

    use super::drive_honest;

    #[test]
    fn honest_trace_passes_fixed() {
        // Deterministic mixed-load trace: bursty gaps, varied service.
        let gaps: Vec<u64> = (0..40u64).map(|i| 100 + (i * 37) % 900).collect();
        let svcs: Vec<u64> = (0..40u64).map(|i| 50 + (i * 113) % 1_500).collect();
        let mut st = QueueStation::new("q", QueueKind::Ring, 64);
        drive_honest(&mut st, &gaps, &svcs, 1);
        let u = st.use_metrics(DEFAULT_LITTLE_TOLERANCE);
        assert!(u.little.checked);
        assert!(
            u.little.within,
            "rel_err {} L_obs {} L_pred {}",
            u.little.rel_err, u.little.l_observed, u.little.l_predicted
        );
    }

    #[test]
    fn corrupted_trace_flagged_fixed() {
        let gaps = vec![100u64; 32];
        let svcs = vec![250u64; 32]; // saturated: real waits accumulate
        let mut st = QueueStation::new("q", QueueKind::Ring, 64);
        drive_honest(&mut st, &gaps, &svcs, 4);
        let u = st.use_metrics(DEFAULT_LITTLE_TOLERANCE);
        assert!(u.little.checked);
        assert!(!u.little.within, "rel_err {}", u.little.rel_err);
    }
}
