//! Hand-rolled JSON emission and a small recursive-descent parser.
//!
//! The workspace builds offline with no serde, so the observability exports
//! build their documents from this value type. Integers are emitted
//! losslessly (no f64 round-trip for `u64` nanosecond timestamps). The
//! parser ([`parse`]) is what the bench baseline compare and the exporter
//! tests use to read documents back.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::I64(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a field of an object by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as `f64` (covers `U64`, `I64` and `F64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Unsigned integer value, if the token was one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object fields.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Always keep a decimal point so the token stays a JSON
                    // number even for integral values.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Schema tag of the uniform CLI report envelope: every `--json` report the
/// observability binaries emit (`obs-report`, `obs-diff`, `obs-meter`) wraps
/// its body in [`report_document`] under this tag, so CI consumers parse one
/// shape regardless of which tool produced the artifact.
pub const REPORT_SCHEMA: &str = "cronus-report/v1";

/// Wraps a report body in the shared CLI envelope:
/// `{"schema": "cronus-report/v1", "kind": <kind>, "body": <body>}`.
/// `kind` names the report type (`"queue"`, `"slo"`, `"diff"`, `"meter"`).
pub fn report_document(kind: &str, body: Json) -> Json {
    Json::Obj(vec![
        ("schema".to_string(), Json::Str(REPORT_SCHEMA.to_string())),
        ("kind".to_string(), Json::Str(kind.to_string())),
        ("body".to_string(), body),
    ])
}

/// Validates that `input` is a single well-formed JSON document. Used by the
/// export tests; intentionally strict (no trailing garbage, no NaN tokens).
pub fn is_well_formed(input: &str) -> bool {
    parse(input).is_ok()
}

/// Parses a single well-formed JSON document into a [`Json`] value.
///
/// Strict like [`is_well_formed`] (it is the same parser): no trailing
/// garbage, no NaN/Infinity tokens. Numbers parse to `U64` when they are
/// unsigned integers in range, `I64` for in-range negatives, `F64` otherwise.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p
        .value()
        .map_err(|()| format!("invalid JSON at byte {}", p.pos))?;
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Ok(v)
    } else {
        Err(format!("trailing garbage at byte {}", p.pos))
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, tok: &str) -> Result<(), ()> {
        if self.bytes[self.pos..].starts_with(tok.as_bytes()) {
            self.pos += tok.len();
            Ok(())
        } else {
            Err(())
        }
    }

    fn value(&mut self) -> Result<Json, ()> {
        self.skip_ws();
        match self.peek().ok_or(())? {
            b'n' => self.eat("null").map(|()| Json::Null),
            b't' => self.eat("true").map(|()| Json::Bool(true)),
            b'f' => self.eat("false").map(|()| Json::Bool(false)),
            b'"' => self.string().map(Json::Str),
            b'[' => {
                self.pos += 1;
                self.skip_ws();
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bump().ok_or(())? {
                        b',' => continue,
                        b']' => return Ok(Json::Arr(items)),
                        _ => return Err(()),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                self.skip_ws();
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    if self.bump() != Some(b':') {
                        return Err(());
                    }
                    fields.push((key, self.value()?));
                    self.skip_ws();
                    match self.bump().ok_or(())? {
                        b',' => continue,
                        b'}' => return Ok(Json::Obj(fields)),
                        _ => return Err(()),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(()),
        }
    }

    fn string(&mut self) -> Result<String, ()> {
        if self.bump() != Some(b'"') {
            return Err(());
        }
        let mut out = Vec::new();
        loop {
            match self.bump().ok_or(())? {
                b'"' => {
                    return String::from_utf8(out).map_err(|_| ());
                }
                b'\\' => match self.bump().ok_or(())? {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'u' => {
                        let unit = self.hex4()?;
                        // Combine a high surrogate with a following \uXXXX
                        // low surrogate; lone surrogates become U+FFFD.
                        let cp = if (0xd800..0xdc00).contains(&unit) {
                            let save = self.pos;
                            if self.bump() == Some(b'\\') && self.bump() == Some(b'u') {
                                let lo = self.hex4()?;
                                if (0xdc00..0xe000).contains(&lo) {
                                    0x10000 + ((unit - 0xd800) << 10) + (lo - 0xdc00)
                                } else {
                                    self.pos = save;
                                    0xfffd
                                }
                            } else {
                                self.pos = save;
                                0xfffd
                            }
                        } else if (0xdc00..0xe000).contains(&unit) {
                            0xfffd
                        } else {
                            unit
                        };
                        let c = char::from_u32(cp).unwrap_or('\u{fffd}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    _ => return Err(()),
                },
                b if b < 0x20 => return Err(()),
                b => out.push(b),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ()> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or(())?;
            let d = (b as char).to_digit(16).ok_or(())?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ()> {
        let start = self.pos;
        let mut float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(());
        }
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(());
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(());
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| ())?;
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>().map(Json::F64).map_err(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_documents() {
        let doc = Json::obj([
            ("name", Json::from("sRPC \"fast\"\npath")),
            ("count", Json::from(18_446_744_073_709_551_615u64)),
            ("delta", Json::from(-3i64)),
            ("ratio", Json::from(0.5)),
            ("whole", Json::from(2.0)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        let s = doc.render();
        assert!(s.contains("\"sRPC \\\"fast\\\"\\npath\""));
        assert!(s.contains("18446744073709551615"));
        assert!(s.contains("\"whole\":2.0"));
        assert!(is_well_formed(&s), "rendered JSON must parse: {s}");
    }

    #[test]
    fn nan_becomes_null() {
        let s = Json::F64(f64::NAN).render();
        assert_eq!(s, "null");
        assert!(is_well_formed(&s));
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "[1,2.5,-3,1e9,\"x\",null,true,{\"k\":[false]}]",
            "  {\"a\" : \"b\\u0041\"} ",
        ] {
            assert!(is_well_formed(good), "{good}");
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "nul",
            "[1] trailing",
            "\"unterminated",
            "01e",
            "NaN",
        ] {
            assert!(!is_well_formed(bad), "{bad}");
        }
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Json::obj([
            ("name", Json::from("квант \"q\" \\ path")),
            ("big", Json::U64(u64::MAX)),
            ("neg", Json::I64(-42)),
            ("ratio", Json::F64(1.5)),
            ("items", Json::Arr(vec![Json::Null, Json::Bool(true)])),
        ]);
        let parsed = parse(&doc.render()).expect("round trip");
        assert_eq!(parsed, doc);
        assert_eq!(parsed.get("big").and_then(Json::as_u64), Some(u64::MAX));
        assert_eq!(parsed.get("ratio").and_then(Json::as_f64), Some(1.5));
        assert_eq!(
            parsed.get("name").and_then(Json::as_str),
            Some("квант \"q\" \\ path")
        );
        assert_eq!(
            parsed.get("items").and_then(Json::as_arr).map(|a| a.len()),
            Some(2)
        );
    }

    #[test]
    fn parse_decodes_unicode_escapes() {
        assert_eq!(parse("\"\\u0041\""), Ok(Json::Str("A".to_string())));
        // Surrogate pair → astral code point.
        assert_eq!(parse("\"\\ud83d\\ude00\""), Ok(Json::Str("😀".to_string())));
        // Lone surrogate degrades to the replacement character.
        assert_eq!(
            parse("\"\\ud800x\""),
            Ok(Json::Str("\u{fffd}x".to_string()))
        );
    }
}
