//! Hand-rolled JSON emission (and a small validating parser for tests).
//!
//! The workspace builds offline with no serde, so the observability exports
//! build their documents from this value type. Integers are emitted
//! losslessly (no f64 round-trip for `u64` nanosecond timestamps).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::I64(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Always keep a decimal point so the token stays a JSON
                    // number even for integral values.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Validates that `input` is a single well-formed JSON document. Used by the
/// export tests; intentionally strict (no trailing garbage, no NaN tokens).
pub fn is_well_formed(input: &str) -> bool {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    if p.value().is_err() {
        return false;
    }
    p.skip_ws();
    p.pos == p.bytes.len()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, tok: &str) -> Result<(), ()> {
        if self.bytes[self.pos..].starts_with(tok.as_bytes()) {
            self.pos += tok.len();
            Ok(())
        } else {
            Err(())
        }
    }

    fn value(&mut self) -> Result<(), ()> {
        self.skip_ws();
        match self.peek().ok_or(())? {
            b'n' => self.eat("null"),
            b't' => self.eat("true"),
            b'f' => self.eat("false"),
            b'"' => self.string(),
            b'[' => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.value()?;
                    self.skip_ws();
                    match self.bump().ok_or(())? {
                        b',' => continue,
                        b']' => return Ok(()),
                        _ => return Err(()),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.skip_ws();
                    self.string()?;
                    self.skip_ws();
                    if self.bump() != Some(b':') {
                        return Err(());
                    }
                    self.value()?;
                    self.skip_ws();
                    match self.bump().ok_or(())? {
                        b',' => continue,
                        b'}' => return Ok(()),
                        _ => return Err(()),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(()),
        }
    }

    fn string(&mut self) -> Result<(), ()> {
        if self.bump() != Some(b'"') {
            return Err(());
        }
        loop {
            match self.bump().ok_or(())? {
                b'"' => return Ok(()),
                b'\\' => match self.bump().ok_or(())? {
                    b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                    b'u' => {
                        for _ in 0..4 {
                            if !self.bump().ok_or(())?.is_ascii_hexdigit() {
                                return Err(());
                            }
                        }
                    }
                    _ => return Err(()),
                },
                b if b < 0x20 => return Err(()),
                _ => {}
            }
        }
    }

    fn number(&mut self) -> Result<(), ()> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(());
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(());
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_documents() {
        let doc = Json::obj([
            ("name", Json::from("sRPC \"fast\"\npath")),
            ("count", Json::from(18_446_744_073_709_551_615u64)),
            ("delta", Json::from(-3i64)),
            ("ratio", Json::from(0.5)),
            ("whole", Json::from(2.0)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        let s = doc.render();
        assert!(s.contains("\"sRPC \\\"fast\\\"\\npath\""));
        assert!(s.contains("18446744073709551615"));
        assert!(s.contains("\"whole\":2.0"));
        assert!(is_well_formed(&s), "rendered JSON must parse: {s}");
    }

    #[test]
    fn nan_becomes_null() {
        let s = Json::F64(f64::NAN).render();
        assert_eq!(s, "null");
        assert!(is_well_formed(&s));
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "[1,2.5,-3,1e9,\"x\",null,true,{\"k\":[false]}]",
            "  {\"a\" : \"b\\u0041\"} ",
        ] {
            assert!(is_well_formed(good), "{good}");
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "nul",
            "[1] trailing",
            "\"unterminated",
            "01e",
            "NaN",
        ] {
            assert!(!is_well_formed(bad), "{bad}");
        }
    }
}
