//! Schema-versioned telemetry bundles: the per-figure archive that makes a
//! bench run comparable to another bench run.
//!
//! A [`TelemetryBundle`] snapshots everything the differential forensics
//! engine ([`crate::diff`]) needs to explain a regression: headline metrics,
//! the per-category critical-path split, per-queue USE statistics with
//! worst-N wait exemplars, folded flamegraph stacks, and the exemplar
//! request timelines joined by `ReqId`. Bundles are captured from a
//! [`FlightRecorder`] at the end of a recorded figure run and committed as
//! `BUNDLE_<name>.json` baselines alongside `BENCH_<name>.json`
//! (`scripts/rebaseline.sh` refreshes both together).
//!
//! Everything here is derived from the virtual clock, so a bundle is
//! byte-identical across runs of the same (figure, seed) pair. This file is
//! on the audit lint's `STRICT_OBS_FILES` list: no wall-clock reads, and
//! all fallible public functions return the typed [`BundleError`].

use std::collections::BTreeMap;
use std::fmt;

use crate::json::{self, Json};
use crate::queue::DEFAULT_LITTLE_TOLERANCE;
use crate::recorder::FlightRecorder;

/// Bundle document schema version. Bump on any layout change; the loader
/// refuses mismatched documents instead of partially comparing them.
pub const BUNDLE_SCHEMA: u64 = 1;

/// Upper bound on exemplar request timelines kept per bundle (worst waits
/// across all stations). Keeps committed baselines compact.
pub const MAX_BUNDLE_EXEMPLARS: usize = 16;

/// Which direction of change is an improvement for a headline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (latency, overhead).
    Lower,
    /// Larger is better (throughput, hit rates).
    Higher,
}

impl Direction {
    /// Wire name used in the JSON document.
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::Lower => "lower",
            Direction::Higher => "higher",
        }
    }

    fn parse(s: &str) -> Option<Direction> {
        match s {
            "lower" => Some(Direction::Lower),
            "higher" => Some(Direction::Higher),
            _ => None,
        }
    }
}

/// A headline metric as archived in a bundle.
#[derive(Clone, Debug, PartialEq)]
pub struct BundleHeadline {
    /// Stable metric key (e.g. `total_wall_ms`).
    pub key: String,
    /// Metric value.
    pub value: f64,
    /// Human unit label (e.g. `ms`, `calls/s`).
    pub unit: String,
    /// Improvement direction.
    pub better: Direction,
}

/// Per-queue USE snapshot archived in a bundle.
#[derive(Clone, Debug, PartialEq)]
pub struct BundleQueue {
    /// Station name (e.g. `srpc.ring:1`).
    pub name: String,
    /// Station kind wire name (e.g. `ring`, `dma`).
    pub kind: String,
    /// Declared capacity.
    pub capacity: u64,
    /// High-water depth over the run.
    pub max_depth: u64,
    /// Busy fraction of the observation window (0.0..=1.0).
    pub utilization: f64,
    /// Time-averaged depth.
    pub mean_depth: f64,
    /// Median wait.
    pub p50_wait_ns: u64,
    /// Tail wait.
    pub p99_wait_ns: u64,
    /// Worst wait.
    pub max_wait_ns: u64,
    /// Mean service time.
    pub mean_service_ns: u64,
    /// Total wait accumulated across all items (saturated to u64).
    pub wait_total_ns: u64,
    /// Error edges (full-ring stalls, drops).
    pub errors: u64,
    /// Worst-N `(req, wait_ns)` exemplars, worst-first.
    pub exemplars: Vec<(u64, u64)>,
    /// Exemplar candidates discarded because the ring was full.
    pub exemplars_dropped: u64,
}

/// An exemplar request timeline: one of the worst waiters, joined with its
/// causal phase breakdown so a diff can explain *where* the p99 request
/// spent its life.
#[derive(Clone, Debug, PartialEq)]
pub struct BundleExemplar {
    /// Request id within the run.
    pub req: u64,
    /// Request name (root span), empty when the span tracer lost it.
    pub name: String,
    /// Stream the request ran on, when known.
    pub stream: Option<u64>,
    /// Station where the exemplar wait was observed.
    pub queue: String,
    /// The observed wait at that station.
    pub wait_ns: u64,
    /// End-to-end request duration.
    pub total_ns: u64,
    /// Canonical phase breakdown, summing to `total_ns`.
    pub phases: Vec<(String, u64)>,
}

/// The per-figure telemetry archive.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetryBundle {
    /// Document schema version ([`BUNDLE_SCHEMA`]).
    pub schema: u64,
    /// Figure name (e.g. `fig7`).
    pub name: String,
    /// Free-form run metadata (seed, scale, bounding queue, ...).
    pub meta: Vec<(String, String)>,
    /// Headline metrics, in emission order.
    pub headlines: Vec<BundleHeadline>,
    /// Per-category critical-path split, dominant first.
    pub critical_path: Vec<(String, u64)>,
    /// Per-queue USE snapshots, ranked by total wait (bounding queue first).
    pub queues: Vec<BundleQueue>,
    /// Folded flamegraph stacks (`stack -> ns`), lexicographically sorted.
    pub folded: Vec<(String, u64)>,
    /// Worst-N exemplar request timelines across all stations.
    pub exemplars: Vec<BundleExemplar>,
}

/// Typed error for bundle (de)serialisation.
#[derive(Clone, Debug, PartialEq)]
pub enum BundleError {
    /// The document is not well-formed JSON.
    Json {
        /// Parser diagnostic.
        detail: String,
    },
    /// The document carries a different schema version.
    SchemaMismatch {
        /// Version found in the document.
        found: u64,
        /// Version this binary understands.
        expected: u64,
    },
    /// A required field is absent or has the wrong type.
    MissingField {
        /// Dotted path of the offending field.
        field: &'static str,
    },
}

impl fmt::Display for BundleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BundleError::Json { detail } => write!(f, "malformed bundle JSON: {detail}"),
            BundleError::SchemaMismatch { found, expected } => write!(
                f,
                "bundle schema {found} does not match this binary's schema {expected}; \
                 re-run scripts/rebaseline.sh to regenerate the committed baselines"
            ),
            BundleError::MissingField { field } => {
                write!(f, "bundle document is missing required field `{field}`")
            }
        }
    }
}

impl std::error::Error for BundleError {}

fn field<'a>(obj: &'a Json, key: &'static str) -> Result<&'a Json, BundleError> {
    obj.get(key).ok_or(BundleError::MissingField { field: key })
}

fn u64_field(obj: &Json, key: &'static str) -> Result<u64, BundleError> {
    field(obj, key)?
        .as_u64()
        .ok_or(BundleError::MissingField { field: key })
}

fn f64_field(obj: &Json, key: &'static str) -> Result<f64, BundleError> {
    field(obj, key)?
        .as_f64()
        .ok_or(BundleError::MissingField { field: key })
}

fn str_field<'a>(obj: &'a Json, key: &'static str) -> Result<&'a str, BundleError> {
    field(obj, key)?
        .as_str()
        .ok_or(BundleError::MissingField { field: key })
}

fn arr_field<'a>(obj: &'a Json, key: &'static str) -> Result<&'a [Json], BundleError> {
    field(obj, key)?
        .as_arr()
        .ok_or(BundleError::MissingField { field: key })
}

/// Reads a `[["label", ns], ...]` pair list.
fn pairs_field(obj: &Json, key: &'static str) -> Result<Vec<(String, u64)>, BundleError> {
    let mut out = Vec::new();
    for item in arr_field(obj, key)? {
        let pair = item
            .as_arr()
            .ok_or(BundleError::MissingField { field: key })?;
        let (label, ns) = match pair {
            [l, n] => (l, n),
            _ => return Err(BundleError::MissingField { field: key }),
        };
        let label = label
            .as_str()
            .ok_or(BundleError::MissingField { field: key })?;
        let ns = ns
            .as_u64()
            .ok_or(BundleError::MissingField { field: key })?;
        out.push((label.to_string(), ns));
    }
    Ok(out)
}

fn pairs_json(pairs: &[(String, u64)]) -> Json {
    Json::Arr(
        pairs
            .iter()
            .map(|(label, ns)| Json::Arr(vec![Json::Str(label.clone()), Json::U64(*ns)]))
            .collect(),
    )
}

impl TelemetryBundle {
    /// Captures a bundle from a finished recorded run. All content is
    /// derived from the recorder's virtual-clock state, so the result is
    /// byte-identical across runs of the same (figure, seed) pair.
    pub fn capture(
        name: &str,
        headlines: Vec<BundleHeadline>,
        meta: Vec<(String, String)>,
        rec: &FlightRecorder,
    ) -> TelemetryBundle {
        let causal = rec.causal_report();
        let queue_report = rec.queue_report(DEFAULT_LITTLE_TOLERANCE);

        let mut folded: Vec<(String, u64)> = rec
            .folded_stacks()
            .lines()
            .filter_map(|line| {
                let (stack, ns) = line.rsplit_once(' ')?;
                Some((stack.to_string(), ns.parse().ok()?))
            })
            .collect();
        folded.sort();

        let queues: Vec<BundleQueue> = queue_report
            .queues
            .iter()
            .map(|q| BundleQueue {
                name: q.name.clone(),
                kind: q.kind.as_str().to_string(),
                capacity: q.capacity,
                max_depth: q.max_depth,
                utilization: q.utilization,
                mean_depth: q.mean_depth,
                p50_wait_ns: q.p50_wait_ns,
                p99_wait_ns: q.p99_wait_ns,
                max_wait_ns: q.max_wait_ns,
                mean_service_ns: q.mean_service_ns,
                wait_total_ns: u64::try_from(q.wait_total_ns).unwrap_or(u64::MAX),
                errors: q.errors,
                exemplars: q
                    .exemplars
                    .iter()
                    .map(|e| (e.req.0, e.wait.as_nanos()))
                    .collect(),
                exemplars_dropped: q.exemplars_dropped,
            })
            .collect();

        // Join station exemplars with the causal timelines so the bundle
        // carries a phase breakdown for each worst waiter.
        let timelines: BTreeMap<u64, &crate::causal::RequestTimeline> =
            causal.requests.iter().map(|t| (t.req.0, t)).collect();
        let mut exemplars: Vec<BundleExemplar> = Vec::new();
        for q in &queue_report.queues {
            for e in &q.exemplars {
                let mut ex = BundleExemplar {
                    req: e.req.0,
                    name: String::new(),
                    stream: None,
                    queue: q.name.clone(),
                    wait_ns: e.wait.as_nanos(),
                    total_ns: 0,
                    phases: Vec::new(),
                };
                if let Some(t) = timelines.get(&e.req.0) {
                    ex.name = t.name.clone();
                    ex.stream = t.stream;
                    ex.total_ns = t.total_ns();
                    ex.phases = t.phases.clone();
                }
                exemplars.push(ex);
            }
        }
        exemplars.sort_by(|a, b| {
            b.wait_ns
                .cmp(&a.wait_ns)
                .then(a.req.cmp(&b.req))
                .then(a.queue.cmp(&b.queue))
        });
        exemplars.truncate(MAX_BUNDLE_EXEMPLARS);

        TelemetryBundle {
            schema: BUNDLE_SCHEMA,
            name: name.to_string(),
            meta,
            headlines,
            critical_path: causal.overall.clone(),
            queues,
            folded,
            exemplars,
        }
    }

    /// Critical-path nanoseconds for one canonical category.
    pub fn category_ns(&self, cat: &str) -> u64 {
        self.critical_path
            .iter()
            .find(|(c, _)| c == cat)
            .map(|(_, ns)| *ns)
            .unwrap_or(0)
    }

    /// The bounding queue: queues are archived ranked by total wait.
    pub fn bounding_queue(&self) -> Option<&BundleQueue> {
        self.queues.first()
    }

    /// Renders the compact JSON document committed as `BUNDLE_<name>.json`.
    pub fn to_json(&self) -> String {
        let meta = Json::Obj(
            self.meta
                .iter()
                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                .collect(),
        );
        let headlines = Json::Arr(
            self.headlines
                .iter()
                .map(|h| {
                    Json::obj([
                        ("key", Json::Str(h.key.clone())),
                        ("value", Json::F64(h.value)),
                        ("unit", Json::Str(h.unit.clone())),
                        ("better", Json::Str(h.better.as_str().to_string())),
                    ])
                })
                .collect(),
        );
        let queues = Json::Arr(
            self.queues
                .iter()
                .map(|q| {
                    Json::obj([
                        ("name", Json::Str(q.name.clone())),
                        ("kind", Json::Str(q.kind.clone())),
                        ("capacity", Json::U64(q.capacity)),
                        ("max_depth", Json::U64(q.max_depth)),
                        ("utilization", Json::F64(q.utilization)),
                        ("mean_depth", Json::F64(q.mean_depth)),
                        ("p50_wait_ns", Json::U64(q.p50_wait_ns)),
                        ("p99_wait_ns", Json::U64(q.p99_wait_ns)),
                        ("max_wait_ns", Json::U64(q.max_wait_ns)),
                        ("mean_service_ns", Json::U64(q.mean_service_ns)),
                        ("wait_total_ns", Json::U64(q.wait_total_ns)),
                        ("errors", Json::U64(q.errors)),
                        (
                            "exemplars",
                            Json::Arr(
                                q.exemplars
                                    .iter()
                                    .map(|(req, wait)| {
                                        Json::Arr(vec![Json::U64(*req), Json::U64(*wait)])
                                    })
                                    .collect(),
                            ),
                        ),
                        ("exemplars_dropped", Json::U64(q.exemplars_dropped)),
                    ])
                })
                .collect(),
        );
        let exemplars = Json::Arr(
            self.exemplars
                .iter()
                .map(|e| {
                    Json::obj([
                        ("req", Json::U64(e.req)),
                        ("name", Json::Str(e.name.clone())),
                        ("stream", e.stream.map(Json::U64).unwrap_or(Json::Null)),
                        ("queue", Json::Str(e.queue.clone())),
                        ("wait_ns", Json::U64(e.wait_ns)),
                        ("total_ns", Json::U64(e.total_ns)),
                        ("phases", pairs_json(&e.phases)),
                    ])
                })
                .collect(),
        );
        Json::obj([
            ("schema", Json::U64(self.schema)),
            ("name", Json::Str(self.name.clone())),
            ("meta", meta),
            ("headlines", headlines),
            ("critical_path", pairs_json(&self.critical_path)),
            ("queues", queues),
            ("folded", pairs_json(&self.folded)),
            ("exemplars", exemplars),
        ])
        .render()
    }

    /// Parses a bundle document, refusing schema mismatches outright so an
    /// old baseline never silently part-compares against a new binary.
    pub fn from_json(input: &str) -> Result<TelemetryBundle, BundleError> {
        let doc = json::parse(input).map_err(|detail| BundleError::Json { detail })?;
        let schema = u64_field(&doc, "schema")?;
        if schema != BUNDLE_SCHEMA {
            return Err(BundleError::SchemaMismatch {
                found: schema,
                expected: BUNDLE_SCHEMA,
            });
        }
        let name = str_field(&doc, "name")?.to_string();

        let meta_obj = field(&doc, "meta")?
            .as_obj()
            .ok_or(BundleError::MissingField { field: "meta" })?;
        let meta: Vec<(String, String)> = meta_obj
            .iter()
            .filter_map(|(k, v)| Some((k.clone(), v.as_str()?.to_string())))
            .collect();

        let mut headlines = Vec::new();
        for h in arr_field(&doc, "headlines")? {
            let better =
                Direction::parse(str_field(h, "better")?).ok_or(BundleError::MissingField {
                    field: "headlines.better",
                })?;
            headlines.push(BundleHeadline {
                key: str_field(h, "key")?.to_string(),
                value: f64_field(h, "value")?,
                unit: str_field(h, "unit")?.to_string(),
                better,
            });
        }

        let critical_path = pairs_field(&doc, "critical_path")?;

        let mut queues = Vec::new();
        for q in arr_field(&doc, "queues")? {
            let mut exemplars = Vec::new();
            for e in arr_field(q, "exemplars")? {
                let pair = e.as_arr().ok_or(BundleError::MissingField {
                    field: "queues.exemplars",
                })?;
                let (req, wait) = match pair {
                    [r, w] => (r.as_u64(), w.as_u64()),
                    _ => (None, None),
                };
                match (req, wait) {
                    (Some(req), Some(wait)) => exemplars.push((req, wait)),
                    _ => {
                        return Err(BundleError::MissingField {
                            field: "queues.exemplars",
                        });
                    }
                }
            }
            queues.push(BundleQueue {
                name: str_field(q, "name")?.to_string(),
                kind: str_field(q, "kind")?.to_string(),
                capacity: u64_field(q, "capacity")?,
                max_depth: u64_field(q, "max_depth")?,
                utilization: f64_field(q, "utilization")?,
                mean_depth: f64_field(q, "mean_depth")?,
                p50_wait_ns: u64_field(q, "p50_wait_ns")?,
                p99_wait_ns: u64_field(q, "p99_wait_ns")?,
                max_wait_ns: u64_field(q, "max_wait_ns")?,
                mean_service_ns: u64_field(q, "mean_service_ns")?,
                wait_total_ns: u64_field(q, "wait_total_ns")?,
                errors: u64_field(q, "errors")?,
                exemplars,
                exemplars_dropped: u64_field(q, "exemplars_dropped")?,
            });
        }

        let folded = pairs_field(&doc, "folded")?;

        let mut exemplars = Vec::new();
        for e in arr_field(&doc, "exemplars")? {
            let stream = match field(e, "stream")? {
                Json::Null => None,
                other => Some(other.as_u64().ok_or(BundleError::MissingField {
                    field: "exemplars.stream",
                })?),
            };
            exemplars.push(BundleExemplar {
                req: u64_field(e, "req")?,
                name: str_field(e, "name")?.to_string(),
                stream,
                queue: str_field(e, "queue")?.to_string(),
                wait_ns: u64_field(e, "wait_ns")?,
                total_ns: u64_field(e, "total_ns")?,
                phases: pairs_field(e, "phases")?,
            });
        }

        Ok(TelemetryBundle {
            schema,
            name,
            meta,
            headlines,
            critical_path,
            queues,
            folded,
            exemplars,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cronus_sim::SimNs;

    fn sample_bundle() -> TelemetryBundle {
        TelemetryBundle {
            schema: BUNDLE_SCHEMA,
            name: "fig7".to_string(),
            meta: vec![("seed".to_string(), "42".to_string())],
            headlines: vec![BundleHeadline {
                key: "total_wall_ms".to_string(),
                value: 412.5,
                unit: "ms".to_string(),
                better: Direction::Lower,
            }],
            critical_path: vec![("queue".to_string(), 402), ("kernel".to_string(), 7)],
            queues: vec![BundleQueue {
                name: "srpc.ring:1".to_string(),
                kind: "ring".to_string(),
                capacity: 64,
                max_depth: 12,
                utilization: 0.93,
                mean_depth: 4.2,
                p50_wait_ns: 1_000,
                p99_wait_ns: 90_000,
                max_wait_ns: 120_000,
                mean_service_ns: 700,
                wait_total_ns: 402_000_000,
                errors: 0,
                exemplars: vec![(17, 120_000), (3, 90_000)],
                exemplars_dropped: 5,
            }],
            folded: vec![
                ("cronus;queue".to_string(), 402),
                ("cronus;idle".to_string(), 1),
            ],
            exemplars: vec![BundleExemplar {
                req: 17,
                name: "gpu.launch".to_string(),
                stream: Some(1),
                queue: "srpc.ring:1".to_string(),
                wait_ns: 120_000,
                total_ns: 130_000,
                phases: vec![
                    ("queue".to_string(), 120_000),
                    ("kernel".to_string(), 10_000),
                ],
            }],
        }
    }

    #[test]
    fn round_trips_through_json() {
        let b = sample_bundle();
        let doc = b.to_json();
        let back = TelemetryBundle::from_json(&doc).expect("round trip");
        assert_eq!(b, back);
        // Re-rendering is byte-identical (determinism surface).
        assert_eq!(doc, back.to_json());
    }

    #[test]
    fn schema_mismatch_points_at_rebaseline() {
        let mut b = sample_bundle();
        b.schema = BUNDLE_SCHEMA + 1;
        let err = TelemetryBundle::from_json(&b.to_json()).expect_err("must refuse");
        assert!(matches!(err, BundleError::SchemaMismatch { .. }));
        let msg = err.to_string();
        assert!(msg.contains("scripts/rebaseline.sh"), "{msg}");
    }

    #[test]
    fn missing_field_is_a_typed_error() {
        let err = TelemetryBundle::from_json(r#"{"schema":1,"name":"x"}"#).expect_err("typed");
        assert_eq!(err, BundleError::MissingField { field: "meta" });
        assert!(err.to_string().contains("meta"));
    }

    #[test]
    fn malformed_json_is_reported() {
        let err = TelemetryBundle::from_json("{not json").expect_err("parse error");
        assert!(matches!(err, BundleError::Json { .. }));
    }

    #[test]
    fn capture_from_empty_recorder_is_valid_and_stable() {
        let rec = FlightRecorder::default();
        let a = TelemetryBundle::capture("empty", Vec::new(), Vec::new(), &rec);
        let b = TelemetryBundle::capture("empty", Vec::new(), Vec::new(), &rec);
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.queues.is_empty());
        assert!(TelemetryBundle::from_json(&a.to_json()).is_ok());
    }

    #[test]
    fn capture_joins_exemplars_with_timelines() {
        let rec = FlightRecorder::default();
        let req = rec.alloc_req();
        rec.set_current_req(Some(req));
        let t = rec.track("exec");
        rec.complete_span(
            t,
            "gpu.launch",
            "srpc",
            SimNs::from_nanos(0),
            SimNs::from_nanos(1_000),
        );
        rec.set_current_req(None);
        rec.queue_declare("srpc.ring:1", crate::queue::QueueKind::Ring, 64);
        rec.queue_enqueue("srpc.ring:1", SimNs::from_nanos(0));
        rec.with(|r| {
            r.queues.dequeue_req(
                "srpc.ring:1",
                SimNs::from_nanos(500),
                SimNs::from_nanos(400),
                SimNs::from_nanos(100),
                Some(req),
            )
        });
        let b = TelemetryBundle::capture("t", Vec::new(), Vec::new(), &rec);
        assert_eq!(b.queues.len(), 1);
        assert_eq!(b.queues[0].exemplars, vec![(req.0, 400)]);
        assert_eq!(b.exemplars.len(), 1);
        assert_eq!(b.exemplars[0].queue, "srpc.ring:1");
        assert_eq!(b.exemplars[0].name, "gpu.launch");
        assert_eq!(b.exemplars[0].wait_ns, 400);
    }
}
