//! Simulated-time attribution: charge every nanosecond to a category.
//!
//! Instrumented sites call [`TimeProfiler::charge`] with the same `CostModel`
//! durations they feed into their `SimClock`s, so the profiler's busy total
//! is an exact decomposition of the simulated work. Whatever part of the
//! run's elapsed span was *not* charged shows up as [`TimeCategory::Idle`],
//! making the attribution sum exactly equal to total elapsed time — the
//! invariant the figure harnesses assert.
//!
//! Output is folded-stack lines (`cronus;ring;enqueue 1234`) consumable by
//! standard flamegraph tooling.

use std::collections::BTreeMap;

use cronus_sim::SimNs;

/// Where a nanosecond of simulated time went.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TimeCategory {
    /// Normal ↔ secure world switches.
    WorldSwitch,
    /// S-EL2 partition context switches.
    ContextSwitch,
    /// Crypto: attestation, key exchange, signing, encrypted RPC.
    Crypto,
    /// CPU/PCIe data movement.
    Memcpy,
    /// sRPC ring operations (enqueue, dequeue, sync wakeups, stream setup).
    Ring,
    /// Device/compute kernel execution.
    Kernel,
    /// Failover: invalidate, clear, reload, trap handling.
    Recovery,
    /// Partition/enclave management (boot, create, page mapping).
    Mgmt,
    /// Elapsed time not charged to any busy category.
    Idle,
}

impl TimeCategory {
    /// The folded-stack frame name.
    pub fn name(self) -> &'static str {
        match self {
            TimeCategory::WorldSwitch => "world-switch",
            TimeCategory::ContextSwitch => "context-switch",
            TimeCategory::Crypto => "crypto",
            TimeCategory::Memcpy => "memcpy",
            TimeCategory::Ring => "ring",
            TimeCategory::Kernel => "kernel",
            TimeCategory::Recovery => "recovery",
            TimeCategory::Mgmt => "mgmt",
            TimeCategory::Idle => "idle",
        }
    }

    /// All busy categories (everything except [`TimeCategory::Idle`]).
    pub const BUSY: [TimeCategory; 8] = [
        TimeCategory::WorldSwitch,
        TimeCategory::ContextSwitch,
        TimeCategory::Crypto,
        TimeCategory::Memcpy,
        TimeCategory::Ring,
        TimeCategory::Kernel,
        TimeCategory::Recovery,
        TimeCategory::Mgmt,
    ];
}

/// Accumulates charged time per `(category, detail)` pair.
#[derive(Clone, Debug, Default)]
pub struct TimeProfiler {
    busy: BTreeMap<(TimeCategory, Option<String>), u64>,
    /// High-water mark of observed simulated instants.
    watermark: SimNs,
}

impl TimeProfiler {
    /// Creates an empty profiler starting at simulated time zero.
    pub fn new() -> Self {
        TimeProfiler::default()
    }

    /// Charges `d` to `cat` with no detail frame.
    pub fn charge(&mut self, cat: TimeCategory, d: SimNs) {
        debug_assert!(cat != TimeCategory::Idle, "idle is derived, not charged");
        *self.busy.entry((cat, None)).or_insert(0) += d.as_nanos();
    }

    /// Charges `d` to `cat` under a named detail frame (e.g. the kernel or
    /// mcall name), producing a deeper folded stack.
    pub fn charge_detail(&mut self, cat: TimeCategory, detail: &str, d: SimNs) {
        debug_assert!(cat != TimeCategory::Idle, "idle is derived, not charged");
        *self
            .busy
            .entry((cat, Some(detail.to_string())))
            .or_insert(0) += d.as_nanos();
    }

    /// Advances the elapsed-time watermark to at least `at` (monotone).
    pub fn observe_instant(&mut self, at: SimNs) {
        self.watermark = self.watermark.max(at);
    }

    /// Total busy time across all categories.
    pub fn total_busy(&self) -> SimNs {
        SimNs::from_nanos(self.busy.values().sum())
    }

    /// Busy time charged to one category (all detail frames included).
    pub fn busy_in(&self, cat: TimeCategory) -> SimNs {
        SimNs::from_nanos(
            self.busy
                .iter()
                .filter(|((c, _), _)| *c == cat)
                .map(|(_, v)| v)
                .sum(),
        )
    }

    /// Total elapsed simulated time: the later of the watermark and the busy
    /// total (concurrent actors can accumulate busy time faster than the
    /// frontier advances; a mostly-idle run has a frontier past its work).
    pub fn total_elapsed(&self) -> SimNs {
        self.watermark.max(self.total_busy())
    }

    /// Derived idle time: elapsed minus busy.
    pub fn idle(&self) -> SimNs {
        self.total_elapsed() - self.total_busy()
    }

    /// Per-category attribution including the derived idle slice. The
    /// returned values sum to exactly [`TimeProfiler::total_elapsed`].
    pub fn attribution(&self) -> Vec<(TimeCategory, SimNs)> {
        let mut rows: Vec<(TimeCategory, SimNs)> = TimeCategory::BUSY
            .iter()
            .map(|&c| (c, self.busy_in(c)))
            .filter(|(_, d)| *d > SimNs::ZERO)
            .collect();
        if self.idle() > SimNs::ZERO {
            rows.push((TimeCategory::Idle, self.idle()));
        }
        rows
    }

    /// Folded-stack lines (`flamegraph.pl` / speedscope "folded" format):
    /// one line per stack, `cronus;<category>[;<detail>] <nanoseconds>`.
    pub fn folded_stacks(&self) -> String {
        let mut out = String::new();
        for ((cat, detail), ns) in &self.busy {
            if *ns == 0 {
                continue;
            }
            match detail {
                Some(d) => out.push_str(&format!("cronus;{};{} {}\n", cat.name(), d, ns)),
                None => out.push_str(&format!("cronus;{} {}\n", cat.name(), ns)),
            }
        }
        let idle = self.idle();
        if idle > SimNs::ZERO {
            out.push_str(&format!("cronus;idle {}\n", idle.as_nanos()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> SimNs {
        SimNs::from_nanos(v)
    }

    #[test]
    fn attribution_sums_to_elapsed_with_idle() {
        let mut p = TimeProfiler::new();
        p.charge(TimeCategory::Ring, ns(100));
        p.charge_detail(TimeCategory::Kernel, "gemm", ns(900));
        p.observe_instant(ns(5_000));
        assert_eq!(p.total_busy(), ns(1_000));
        assert_eq!(p.total_elapsed(), ns(5_000));
        assert_eq!(p.idle(), ns(4_000));
        let total: u64 = p.attribution().iter().map(|(_, d)| d.as_nanos()).sum();
        assert_eq!(total, p.total_elapsed().as_nanos());
    }

    #[test]
    fn attribution_sums_to_elapsed_when_busy_exceeds_watermark() {
        let mut p = TimeProfiler::new();
        // Two concurrent actors each charge 1ms while the frontier only
        // reaches 1.5ms: busy (2ms) > watermark, idle must be zero.
        p.charge(TimeCategory::Kernel, ns(1_000_000));
        p.charge(TimeCategory::Kernel, ns(1_000_000));
        p.observe_instant(ns(1_500_000));
        assert_eq!(p.total_elapsed(), ns(2_000_000));
        assert_eq!(p.idle(), SimNs::ZERO);
        let total: u64 = p.attribution().iter().map(|(_, d)| d.as_nanos()).sum();
        assert_eq!(total, p.total_elapsed().as_nanos());
    }

    #[test]
    fn per_category_accounting() {
        let mut p = TimeProfiler::new();
        p.charge(TimeCategory::WorldSwitch, ns(40));
        p.charge(TimeCategory::WorldSwitch, ns(40));
        p.charge_detail(TimeCategory::Ring, "enqueue", ns(120));
        p.charge_detail(TimeCategory::Ring, "dequeue", ns(150));
        assert_eq!(p.busy_in(TimeCategory::WorldSwitch), ns(80));
        assert_eq!(p.busy_in(TimeCategory::Ring), ns(270));
        assert_eq!(p.busy_in(TimeCategory::Crypto), SimNs::ZERO);
    }

    #[test]
    fn folded_stacks_format() {
        let mut p = TimeProfiler::new();
        p.charge_detail(TimeCategory::Kernel, "gaussian", ns(500));
        p.charge(TimeCategory::ContextSwitch, ns(70));
        p.observe_instant(ns(1_000));
        let folded = p.folded_stacks();
        assert!(folded.contains("cronus;kernel;gaussian 500\n"));
        assert!(folded.contains("cronus;context-switch 70\n"));
        assert!(folded.contains("cronus;idle 430\n"));
        // Every line is `stack space count`.
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').unwrap();
            assert!(stack.starts_with("cronus;"));
            assert!(count.parse::<u64>().is_ok());
        }
    }

    #[test]
    fn empty_profiler_is_all_zero() {
        let p = TimeProfiler::new();
        assert_eq!(p.total_elapsed(), SimNs::ZERO);
        assert!(p.attribution().is_empty());
        assert!(p.folded_stacks().is_empty());
    }
}
