//! Queueing & saturation observatory.
//!
//! Every bounded queue in the system — sRPC rings, the dispatcher's routing
//! queue, device DMA/completion queues, the SPM trap/recovery queue — reports
//! its enqueue/dequeue edges to a [`QueueStation`] here. Each station keeps,
//! entirely on the virtual clock (deterministic per seed):
//!
//! - instantaneous and maximum **depth**, plus a depth-time integral so the
//!   time-averaged queue length `L` is exact, not sampled;
//! - a decimating **sample stream** (depth at fixed virtual-time ticks) whose
//!   byte-identical rendering is the determinism regression surface;
//! - **wait vs service** split per request (log-bucketed histograms), busy
//!   time for utilization, and error/flush counters.
//!
//! The analyzer turns stations into per-queue **USE** rows (utilization /
//! saturation / errors), cross-validates the timestamp-derived mean depth
//! (`(Σ deq_at − Σ enq_at) / window`) against Little's law (`L = λW`)
//! computed from the *independently reported* per-request sojourns — a
//! built-in self-test that the instrumentation is consistent — and ranks
//! queues by total wait to name the **bounding queue**, replacing the
//! coarse `bounding_category` string with evidence.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use cronus_sim::SimNs;

use crate::json::Json;
use crate::metrics::Histogram;
use crate::span::ReqId;

/// Default relative-error tolerance for the Little's-law cross-check.
pub const DEFAULT_LITTLE_TOLERANCE: f64 = 0.15;

/// Cap on retained worst-wait exemplars per station. Small on purpose: the
/// exemplars exist to de-anonymize the p99 tail of the wait histogram, not
/// to archive every request.
pub const MAX_EXEMPLARS: usize = 8;

/// Minimum completed requests before the Little's-law check is meaningful.
pub const MIN_LITTLE_DEQUEUES: u64 = 8;

/// Initial virtual-time distance between depth samples.
pub const SAMPLE_PERIOD: SimNs = SimNs::from_micros(64);

/// Cap on retained samples per station; reaching it halves the resolution
/// (every other sample dropped, period doubled) so memory stays bounded and
/// the stream stays deterministic regardless of run length.
pub const MAX_SAMPLES: usize = 512;

/// What kind of queue a station instruments (the USE "resource" class).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum QueueKind {
    /// An sRPC shared-memory request ring.
    Ring,
    /// The runtime dispatcher's routing/admission queue.
    Dispatch,
    /// A device completion (IRQ) queue.
    Completion,
    /// The PCIe DMA transfer queue.
    Dma,
    /// The SPM trap/recovery work queue.
    Recovery,
}

impl QueueKind {
    /// Stable lower-case label used in reports and SLO policies.
    pub fn as_str(self) -> &'static str {
        match self {
            QueueKind::Ring => "ring",
            QueueKind::Dispatch => "dispatch",
            QueueKind::Completion => "completion",
            QueueKind::Dma => "dma",
            QueueKind::Recovery => "recovery",
        }
    }
}

/// One worst-wait exemplar: a request id attached to the wait it suffered,
/// so the p99 tail of a station's wait histogram is no longer anonymous.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitExemplar {
    /// How long the request waited before service.
    pub wait: SimNs,
    /// The request that suffered it.
    pub req: ReqId,
}

/// One depth sample on the virtual clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueSample {
    /// Virtual instant the sample was taken.
    pub at: SimNs,
    /// Queue depth at that instant.
    pub depth: u64,
    /// Cumulative enqueues up to that instant.
    pub enqueues: u64,
    /// Cumulative dequeues up to that instant.
    pub dequeues: u64,
}

/// Continuous telemetry for one instrumented queue.
#[derive(Clone, Debug)]
pub struct QueueStation {
    name: String,
    kind: QueueKind,
    capacity: u64,
    depth: u64,
    max_depth: u64,
    enqueues: u64,
    dequeues: u64,
    flushed: u64,
    errors: u64,
    wait: Histogram,
    service: Histogram,
    busy_ns: u128,
    sojourn_ns: u128,
    depth_integral: u128,
    enq_at_sum: u128,
    deq_at_sum: u128,
    unmatched: u64,
    first_at: Option<SimNs>,
    watermark: SimNs,
    samples: Vec<QueueSample>,
    sample_period: SimNs,
    next_sample_at: SimNs,
    /// Worst-N waits with their request ids, descending by wait; equal
    /// waits keep first-captured order so the ring is deterministic.
    exemplars: Vec<WaitExemplar>,
    exemplars_dropped: u64,
}

impl QueueStation {
    /// Creates a standalone station (most callers go through
    /// [`QueueObservatory::declare`]; direct construction is for analysis
    /// tooling and tests).
    pub fn new(name: &str, kind: QueueKind, capacity: u64) -> Self {
        QueueStation {
            name: name.to_string(),
            kind,
            capacity,
            depth: 0,
            max_depth: 0,
            enqueues: 0,
            dequeues: 0,
            flushed: 0,
            errors: 0,
            wait: Histogram::default(),
            service: Histogram::default(),
            busy_ns: 0,
            sojourn_ns: 0,
            depth_integral: 0,
            enq_at_sum: 0,
            deq_at_sum: 0,
            unmatched: 0,
            first_at: None,
            watermark: SimNs::ZERO,
            samples: Vec::new(),
            sample_period: SAMPLE_PERIOD,
            next_sample_at: SimNs::ZERO,
            exemplars: Vec::new(),
            exemplars_dropped: 0,
        }
    }

    /// Advances the station's monotonic watermark to `at` (clamped — actor
    /// clocks may individually lag), accumulating the depth-time integral
    /// and emitting periodic depth samples for the stretch covered.
    fn advance(&mut self, at: SimNs) {
        let at = at.max(self.watermark);
        if self.first_at.is_none() {
            self.first_at = Some(at);
            self.watermark = at;
            self.next_sample_at = at + self.sample_period;
            self.push_sample(at);
            return;
        }
        let dt = (at - self.watermark).as_nanos();
        self.depth_integral += self.depth as u128 * dt as u128;
        while self.next_sample_at <= at {
            let tick = self.next_sample_at;
            self.push_sample(tick);
            self.next_sample_at = tick + self.sample_period;
        }
        self.watermark = at;
    }

    fn push_sample(&mut self, at: SimNs) {
        self.samples.push(QueueSample {
            at,
            depth: self.depth,
            enqueues: self.enqueues,
            dequeues: self.dequeues,
        });
        if self.samples.len() >= MAX_SAMPLES {
            // Decimate deterministically: keep every other sample and halve
            // the resolution so long runs stay bounded.
            let mut keep = 0usize;
            for i in (0..self.samples.len()).step_by(2) {
                self.samples[keep] = self.samples[i];
                keep += 1;
            }
            self.samples.truncate(keep);
            self.sample_period = self.sample_period * 2;
        }
    }

    /// One item entered the queue at virtual instant `at`.
    pub fn enqueue(&mut self, at: SimNs) {
        self.advance(at);
        // The *raw* timestamp feeds the residence sum: lazily-drained queues
        // (e.g. an sRPC ring drained at `sync`) report completions whose
        // timestamps interleave into the past relative to later enqueues,
        // and Σdeq − Σenq is exact under any reporting order while the
        // watermark-clamped integral is not.
        self.enq_at_sum += at.as_nanos() as u128;
        self.depth += 1;
        self.max_depth = self.max_depth.max(self.depth);
        self.enqueues += 1;
    }

    /// One item left the queue at `at` after waiting `wait` and being served
    /// for `service`. The wait/service split is reported by the caller from
    /// its own clocks — deliberately an *independent* path from the
    /// enqueue/dequeue timestamps, which is what gives the Little's-law
    /// cross-check its teeth.
    pub fn dequeue(&mut self, at: SimNs, wait: SimNs, service: SimNs) {
        self.dequeue_req(at, wait, service, None);
    }

    /// [`QueueStation::dequeue`], additionally attributing the wait to a
    /// request id when the caller knows one. Identified waits feed the
    /// bounded worst-N exemplar ring, which is what lets the telemetry
    /// bundle name the exact requests in the p99 tail.
    pub fn dequeue_req(&mut self, at: SimNs, wait: SimNs, service: SimNs, req: Option<ReqId>) {
        self.advance(at);
        self.deq_at_sum += at.as_nanos() as u128;
        if self.depth == 0 {
            // A dequeue without a matching enqueue is itself an
            // instrumentation error worth surfacing; it also taints the
            // residence sum, so it disqualifies the Little's-law check.
            self.errors += 1;
            self.unmatched += 1;
        } else {
            self.depth -= 1;
        }
        self.dequeues += 1;
        self.wait.observe(wait);
        self.service.observe(service);
        self.busy_ns += service.as_nanos() as u128;
        self.sojourn_ns += (wait + service).as_nanos() as u128;
        if let Some(req) = req {
            self.capture_exemplar(wait, req);
        }
    }

    /// Inserts into the worst-N ring: strictly longer waits rank first,
    /// equal waits keep first-captured order (stable, hence deterministic
    /// per seed). Whatever does not fit bumps `exemplars_dropped`.
    fn capture_exemplar(&mut self, wait: SimNs, req: ReqId) {
        let pos = self.exemplars.partition_point(|e| e.wait >= wait);
        if pos >= MAX_EXEMPLARS {
            self.exemplars_dropped += 1;
            return;
        }
        self.exemplars.insert(pos, WaitExemplar { wait, req });
        if self.exemplars.len() > MAX_EXEMPLARS {
            self.exemplars.pop();
            self.exemplars_dropped += 1;
        }
    }

    /// Records a queue error (a full-ring stall, a dropped item) at `at`.
    pub fn error(&mut self, at: SimNs) {
        self.advance(at);
        self.errors += 1;
    }

    /// Empties the queue at `at` (quarantine teardown), returning how many
    /// items were discarded. Flushed items never complete, so a station with
    /// flushes is excluded from the Little's-law check.
    pub fn flush(&mut self, at: SimNs) -> u64 {
        self.advance(at);
        let n = self.depth;
        self.flushed += n;
        self.depth = 0;
        n
    }

    /// Station name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Queue kind.
    pub fn kind(&self) -> QueueKind {
        self.kind
    }

    /// Declared capacity (slots).
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Current depth.
    pub fn depth(&self) -> u64 {
        self.depth
    }

    /// High-water depth.
    pub fn max_depth(&self) -> u64 {
        self.max_depth
    }

    /// Total enqueues.
    pub fn enqueues(&self) -> u64 {
        self.enqueues
    }

    /// Total dequeues.
    pub fn dequeues(&self) -> u64 {
        self.dequeues
    }

    /// Items discarded by [`QueueStation::flush`].
    pub fn flushed(&self) -> u64 {
        self.flushed
    }

    /// Errors (stalls, drops, unmatched dequeues).
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Per-request wait-time histogram.
    pub fn wait_histogram(&self) -> &Histogram {
        &self.wait
    }

    /// Per-request service-time histogram.
    pub fn service_histogram(&self) -> &Histogram {
        &self.service
    }

    /// The retained depth-sample stream.
    pub fn samples(&self) -> &[QueueSample] {
        &self.samples
    }

    /// Worst-N identified waits, descending by wait.
    pub fn exemplars(&self) -> &[WaitExemplar] {
        &self.exemplars
    }

    /// Identified waits that did not fit the worst-N ring (the
    /// `exemplars.dropped` counter of the bundle format).
    pub fn exemplars_dropped(&self) -> u64 {
        self.exemplars_dropped
    }

    /// Observation window: first activity to last activity.
    pub fn window(&self) -> SimNs {
        match self.first_at {
            Some(first) => self.watermark - first,
            None => SimNs::ZERO,
        }
    }

    /// Computes this station's USE row, with the Little's-law verdict at
    /// relative tolerance `tolerance`.
    pub fn use_metrics(&self, tolerance: f64) -> QueueUse {
        let window = self.window().as_nanos();
        let wf = window as f64;
        let (utilization, mean_depth, arrival_rate_hz, completion_rate_hz) = if window == 0 {
            (0.0, 0.0, 0.0, 0.0)
        } else {
            (
                self.busy_ns as f64 / wf,
                self.depth_integral as f64 / wf,
                self.enqueues as f64 / wf * 1e9,
                self.dequeues as f64 / wf * 1e9,
            )
        };
        let occupancy_pct = if self.capacity == 0 {
            0.0
        } else {
            self.max_depth as f64 * 100.0 / self.capacity as f64
        };
        // Little's law, two independent ways. Observed L comes from the
        // enqueue/dequeue *timestamps*: once the queue has fully drained,
        // Σ residence = Σ deq_at − Σ enq_at, and the sum form is exact even
        // when lazily-processed completions are reported out of timestamp
        // order (where a streaming depth-time integral would not be).
        // Predicted λW = Σ sojourn / window comes from the caller-reported
        // wait+service durations — a fully independent measurement path.
        let l_observed = if window == 0 {
            0.0
        } else {
            self.deq_at_sum.saturating_sub(self.enq_at_sum) as f64 / wf
        };
        let l_predicted = if window == 0 {
            0.0
        } else {
            self.sojourn_ns as f64 / wf
        };
        let checked = self.dequeues >= MIN_LITTLE_DEQUEUES
            && self.flushed == 0
            && self.depth == 0
            && self.unmatched == 0;
        let denom = l_predicted.max(l_observed);
        let rel_err = if denom < 1e-3 {
            0.0
        } else {
            (l_observed - l_predicted).abs() / denom
        };
        let within = !checked || rel_err <= tolerance;
        QueueUse {
            name: self.name.clone(),
            kind: self.kind,
            capacity: self.capacity,
            window_ns: window,
            utilization,
            mean_depth,
            max_depth: self.max_depth,
            occupancy_pct,
            arrival_rate_hz,
            completion_rate_hz,
            errors: self.errors,
            flushed: self.flushed,
            mean_wait_ns: self.wait.mean().as_nanos(),
            p50_wait_ns: self.wait.p50().as_nanos(),
            p99_wait_ns: self.wait.p99().as_nanos(),
            p999_wait_ns: self.wait.p999().as_nanos(),
            max_wait_ns: self.wait.max().as_nanos(),
            mean_service_ns: self.service.mean().as_nanos(),
            wait_total_ns: self.wait.sum_ns(),
            exemplars: self.exemplars.clone(),
            exemplars_dropped: self.exemplars_dropped,
            little: LittleCheck {
                l_observed,
                l_predicted,
                rel_err,
                checked,
                within,
            },
        }
    }
}

/// Verdict of the Little's-law cross-check for one queue.
#[derive(Clone, Copy, Debug)]
pub struct LittleCheck {
    /// Time-averaged depth from the enqueue/dequeue timestamps
    /// (`(Σ deq_at − Σ enq_at) / window`, exact once drained).
    pub l_observed: f64,
    /// `λW` from the independently reported per-request sojourns.
    pub l_predicted: f64,
    /// Relative disagreement between the two.
    pub rel_err: f64,
    /// Whether the check was applicable (enough completions, no flushes,
    /// queue fully drained).
    pub checked: bool,
    /// `true` when not applicable or within tolerance.
    pub within: bool,
}

/// One queue's USE (utilization / saturation / errors) row.
#[derive(Clone, Debug)]
pub struct QueueUse {
    /// Station name, e.g. `srpc.ring:3`.
    pub name: String,
    /// Queue kind.
    pub kind: QueueKind,
    /// Declared capacity (slots); 0 when unbounded.
    pub capacity: u64,
    /// Observation window in nanoseconds.
    pub window_ns: u64,
    /// U: fraction of the window the server was busy (may exceed 1 for
    /// multi-server stations).
    pub utilization: f64,
    /// S: time-averaged depth.
    pub mean_depth: f64,
    /// S: high-water depth.
    pub max_depth: u64,
    /// S: high-water depth as % of capacity.
    pub occupancy_pct: f64,
    /// Arrival rate λ in events/second.
    pub arrival_rate_hz: f64,
    /// Completion rate in events/second.
    pub completion_rate_hz: f64,
    /// E: stalls, drops, unmatched dequeues.
    pub errors: u64,
    /// Items discarded on flush (quarantine teardown).
    pub flushed: u64,
    /// Mean wait before service.
    pub mean_wait_ns: u64,
    /// Median wait.
    pub p50_wait_ns: u64,
    /// 99th-percentile wait.
    pub p99_wait_ns: u64,
    /// 99.9th-percentile wait.
    pub p999_wait_ns: u64,
    /// Worst wait.
    pub max_wait_ns: u64,
    /// Mean service time.
    pub mean_service_ns: u64,
    /// Total wait across all requests — the bottleneck-ranking evidence.
    pub wait_total_ns: u128,
    /// Worst-N identified waits (wait, request), descending by wait.
    pub exemplars: Vec<WaitExemplar>,
    /// Identified waits evicted from (or rejected by) the worst-N ring.
    pub exemplars_dropped: u64,
    /// Little's-law cross-check verdict.
    pub little: LittleCheck,
}

impl QueueUse {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("kind", Json::from(self.kind.as_str())),
            ("capacity", Json::U64(self.capacity)),
            ("window_ns", Json::U64(self.window_ns)),
            ("utilization", Json::F64(self.utilization)),
            ("mean_depth", Json::F64(self.mean_depth)),
            ("max_depth", Json::U64(self.max_depth)),
            ("occupancy_pct", Json::F64(self.occupancy_pct)),
            ("arrival_rate_hz", Json::F64(self.arrival_rate_hz)),
            ("completion_rate_hz", Json::F64(self.completion_rate_hz)),
            ("errors", Json::U64(self.errors)),
            ("flushed", Json::U64(self.flushed)),
            ("mean_wait_ns", Json::U64(self.mean_wait_ns)),
            ("p50_wait_ns", Json::U64(self.p50_wait_ns)),
            ("p99_wait_ns", Json::U64(self.p99_wait_ns)),
            ("p999_wait_ns", Json::U64(self.p999_wait_ns)),
            ("max_wait_ns", Json::U64(self.max_wait_ns)),
            ("mean_service_ns", Json::U64(self.mean_service_ns)),
            ("wait_total_ns", Json::F64(self.wait_total_ns as f64)),
            (
                "exemplars",
                Json::Arr(
                    self.exemplars
                        .iter()
                        .map(|e| {
                            Json::obj([
                                ("req", Json::U64(e.req.0)),
                                ("wait_ns", Json::U64(e.wait.as_nanos())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("exemplars_dropped", Json::U64(self.exemplars_dropped)),
            ("little_observed", Json::F64(self.little.l_observed)),
            ("little_predicted", Json::F64(self.little.l_predicted)),
            ("little_rel_err", Json::F64(self.little.rel_err)),
            ("little_checked", Json::Bool(self.little.checked)),
            ("little_within", Json::Bool(self.little.within)),
        ])
    }
}

/// The registry of every instrumented queue in one run.
#[derive(Clone, Debug, Default)]
pub struct QueueObservatory {
    stations: BTreeMap<String, QueueStation>,
}

impl QueueObservatory {
    /// Creates an empty observatory.
    pub fn new() -> Self {
        QueueObservatory::default()
    }

    /// Registers (or re-registers, keeping history) a queue.
    pub fn declare(&mut self, name: &str, kind: QueueKind, capacity: u64) {
        self.stations
            .entry(name.to_string())
            .or_insert_with(|| QueueStation::new(name, kind, capacity));
    }

    fn station_mut(&mut self, name: &str) -> Option<&mut QueueStation> {
        self.stations.get_mut(name)
    }

    /// Records an enqueue on `name` (ignored when undeclared — call sites in
    /// instrumented code never want to panic the workload).
    pub fn enqueue(&mut self, name: &str, at: SimNs) {
        if let Some(s) = self.station_mut(name) {
            s.enqueue(at);
        }
    }

    /// Records a dequeue on `name`.
    pub fn dequeue(&mut self, name: &str, at: SimNs, wait: SimNs, service: SimNs) {
        self.dequeue_req(name, at, wait, service, None);
    }

    /// Records a dequeue on `name`, attributing the wait to `req` when the
    /// caller knows which request suffered it (exemplar capture).
    pub fn dequeue_req(
        &mut self,
        name: &str,
        at: SimNs,
        wait: SimNs,
        service: SimNs,
        req: Option<ReqId>,
    ) {
        if let Some(s) = self.station_mut(name) {
            s.dequeue_req(at, wait, service, req);
        }
    }

    /// Records an error on `name`.
    pub fn error(&mut self, name: &str, at: SimNs) {
        if let Some(s) = self.station_mut(name) {
            s.error(at);
        }
    }

    /// Flushes `name`, returning the number of discarded items.
    pub fn flush(&mut self, name: &str, at: SimNs) -> u64 {
        self.station_mut(name).map_or(0, |s| s.flush(at))
    }

    /// Looks up a station.
    pub fn station(&self, name: &str) -> Option<&QueueStation> {
        self.stations.get(name)
    }

    /// All stations, sorted by name.
    pub fn stations(&self) -> impl Iterator<Item = &QueueStation> {
        self.stations.values()
    }

    /// Whether any queue has been declared.
    pub fn is_empty(&self) -> bool {
        self.stations.is_empty()
    }

    /// Highest current depth across stations matching `prefix` (empty prefix
    /// matches everything). Chaos uses this to assert drained-after-recovery.
    pub fn max_current_depth(&self, prefix: &str) -> u64 {
        self.stations
            .values()
            .filter(|s| s.name.starts_with(prefix))
            .map(|s| s.depth)
            .max()
            .unwrap_or(0)
    }

    /// Highest high-water depth across stations matching `prefix`.
    pub fn high_water_depth(&self, prefix: &str) -> u64 {
        self.stations
            .values()
            .filter(|s| s.name.starts_with(prefix))
            .map(|s| s.max_depth)
            .max()
            .unwrap_or(0)
    }

    /// Renders every station's sample stream, one line per sample, in a
    /// stable text form — the byte-identity surface for determinism tests.
    pub fn samples_text(&self) -> String {
        let mut out = String::new();
        for s in self.stations.values() {
            for q in &s.samples {
                let _ = writeln!(
                    out,
                    "{} at={} depth={} enq={} deq={}",
                    s.name,
                    q.at.as_nanos(),
                    q.depth,
                    q.enqueues,
                    q.dequeues
                );
            }
        }
        out
    }

    /// Builds the analysis report at the given Little's-law tolerance.
    pub fn report(&self, tolerance: f64) -> QueueReport {
        let mut queues: Vec<QueueUse> = self
            .stations
            .values()
            .filter(|s| s.enqueues > 0 || s.errors > 0)
            .map(|s| s.use_metrics(tolerance))
            .collect();
        queues.sort_by(|a, b| {
            b.wait_total_ns
                .cmp(&a.wait_total_ns)
                .then_with(|| a.name.cmp(&b.name))
        });
        QueueReport { queues, tolerance }
    }
}

/// Aggregated view of one stream's ring lanes (`srpc.ring:<stream>.*`).
#[derive(Clone, Debug)]
pub struct StreamUse {
    /// The stream's station prefix, e.g. `srpc.ring:1`.
    pub stream: String,
    /// Number of active lane stations.
    pub lanes: usize,
    /// Total wait summed across the lanes.
    pub wait_total_ns: u128,
    /// Worst per-lane p99 wait.
    pub max_p99_wait_ns: u64,
    /// Sum of per-lane utilizations (can exceed 1: the lanes are
    /// independent servers).
    pub utilization_sum: f64,
}

/// Ranked bottleneck-attribution report over every active queue.
#[derive(Clone, Debug)]
pub struct QueueReport {
    /// USE rows, ranked by total wait (descending) — the first row is the
    /// bounding queue.
    pub queues: Vec<QueueUse>,
    /// Little's-law tolerance the verdicts were computed at.
    pub tolerance: f64,
}

impl QueueReport {
    /// The queue responsible for the most total waiting, if any was active.
    pub fn bounding_queue(&self) -> Option<&QueueUse> {
        self.queues.first()
    }

    /// Per-stream aggregates of the multi-lane ring stations
    /// (`srpc.ring:<stream>.<lane>`), ranked like the stations: total wait
    /// first, then aggregate utilization, then name. Streams whose waits
    /// all collapsed to zero still rank by how busy their lanes were, so
    /// the report can name the stream that bounds a run even when nothing
    /// queued on it.
    pub fn streams(&self) -> Vec<StreamUse> {
        let mut by_stream: std::collections::BTreeMap<String, StreamUse> =
            std::collections::BTreeMap::new();
        for q in &self.queues {
            if q.kind != QueueKind::Ring {
                continue;
            }
            let Some((stream, lane)) = q.name.rsplit_once('.') else {
                continue;
            };
            if lane.parse::<usize>().is_err() || !stream.contains(':') {
                continue;
            }
            let e = by_stream
                .entry(stream.to_string())
                .or_insert_with(|| StreamUse {
                    stream: stream.to_string(),
                    lanes: 0,
                    wait_total_ns: 0,
                    max_p99_wait_ns: 0,
                    utilization_sum: 0.0,
                });
            e.lanes += 1;
            e.wait_total_ns += q.wait_total_ns;
            e.max_p99_wait_ns = e.max_p99_wait_ns.max(q.p99_wait_ns);
            e.utilization_sum += q.utilization;
        }
        let mut out: Vec<StreamUse> = by_stream.into_values().collect();
        out.sort_by(|a, b| {
            b.wait_total_ns
                .cmp(&a.wait_total_ns)
                .then_with(|| b.utilization_sum.total_cmp(&a.utilization_sum))
                .then_with(|| a.stream.cmp(&b.stream))
        });
        out
    }

    /// The stream whose ring lanes bound the run (most total wait, busiest
    /// lanes on a tie), if any stream station was active.
    pub fn bounding_stream(&self) -> Option<StreamUse> {
        self.streams().into_iter().next()
    }

    /// Whether every applicable Little's-law check passed.
    pub fn little_all_within(&self) -> bool {
        self.queues.iter().all(|q| q.little.within)
    }

    /// Queues whose Little's-law check was applicable and failed.
    pub fn little_violations(&self) -> Vec<&QueueUse> {
        self.queues
            .iter()
            .filter(|q| q.little.checked && !q.little.within)
            .collect()
    }

    /// Renders the ranked report as a deterministic text table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "queue observatory — bottleneck attribution");
        let _ = writeln!(
            out,
            "rank  queue                      kind        util  meanL    maxD  occ%    p50 wait    p99 wait   total wait  err  little"
        );
        for (i, q) in self.queues.iter().enumerate() {
            let little = if !q.little.checked {
                "n/a".to_string()
            } else if q.little.within {
                format!("ok {:.3}", q.little.rel_err)
            } else {
                format!("FAIL {:.3}", q.little.rel_err)
            };
            let _ = writeln!(
                out,
                "{:>4}  {:<25}  {:<10}  {:>4.0}%  {:>5.2}  {:>6}  {:>4.0}  {:>10}  {:>10}  {:>11}  {:>3}  {}",
                i + 1,
                q.name,
                q.kind.as_str(),
                q.utilization * 100.0,
                q.mean_depth,
                q.max_depth,
                q.occupancy_pct,
                SimNs::from_nanos(q.p50_wait_ns).to_string(),
                SimNs::from_nanos(q.p99_wait_ns).to_string(),
                SimNs::from_nanos(q.wait_total_ns.min(u64::MAX as u128) as u64).to_string(),
                q.errors,
                little,
            );
        }
        match self.bounding_queue() {
            Some(b) => {
                let _ = writeln!(
                    out,
                    "bounding queue: {} ({}) — {} total wait, mean depth {:.2}, max depth {}, {:.0}% utilized",
                    b.name,
                    b.kind.as_str(),
                    SimNs::from_nanos(b.wait_total_ns.min(u64::MAX as u128) as u64),
                    b.mean_depth,
                    b.max_depth,
                    b.utilization * 100.0,
                );
            }
            None => {
                let _ = writeln!(out, "bounding queue: none (no queue activity recorded)");
            }
        }
        if let Some(s) = self.bounding_stream() {
            let _ = writeln!(
                out,
                "bounding stream: {} — {} lane(s), {} total wait, p99 lane wait {}, aggregate lane utilization {:.0}%",
                s.stream,
                s.lanes,
                SimNs::from_nanos(s.wait_total_ns.min(u64::MAX as u128) as u64),
                SimNs::from_nanos(s.max_p99_wait_ns),
                s.utilization_sum * 100.0,
            );
        }
        let _ = writeln!(
            out,
            "little's-law cross-check: {} (tolerance {:.0}%)",
            if self.little_all_within() {
                "all within tolerance"
            } else {
                "VIOLATIONS — instrumentation disagrees with queueing theory"
            },
            self.tolerance * 100.0,
        );
        out
    }

    /// Serializes the report (same ranking) as JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("tolerance", Json::F64(self.tolerance)),
            (
                "bounding_queue",
                match self.bounding_queue() {
                    Some(b) => Json::Str(b.name.clone()),
                    None => Json::Str(String::new()),
                },
            ),
            ("little_all_within", Json::Bool(self.little_all_within())),
            (
                "queues",
                Json::Arr(self.queues.iter().map(|q| q.to_json()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> SimNs {
        SimNs::from_nanos(v)
    }

    /// Drives a deterministic single-server queue: `n` arrivals spaced
    /// `gap` apart, each with service time `svc`, FIFO.
    fn drive_mm1(st: &mut QueueStation, n: u64, gap: u64, svc: u64) {
        let mut server_free = 0u64;
        let mut backlog: Vec<u64> = Vec::new();
        for i in 0..n {
            let arrive = i * gap;
            st.enqueue(ns(arrive));
            backlog.push(arrive);
            // Drain everything the server can finish before the next arrival.
            let horizon = if i + 1 < n { (i + 1) * gap } else { u64::MAX };
            while let Some(&a) = backlog.first() {
                let start = server_free.max(a);
                if start >= horizon {
                    break;
                }
                backlog.remove(0);
                let done = start + svc;
                server_free = done;
                st.dequeue(ns(done), ns(start - a), ns(svc));
            }
        }
        // Final drain.
        while let Some(a) = backlog.first().copied() {
            backlog.remove(0);
            let start = server_free.max(a);
            let done = start + svc;
            server_free = done;
            st.dequeue(ns(done), ns(start - a), ns(svc));
        }
    }

    #[test]
    fn little_check_passes_on_consistent_queue() {
        let mut st = QueueStation::new("q", QueueKind::Ring, 64);
        // Saturated: arrivals every 100ns, service 150ns -> backlog grows.
        drive_mm1(&mut st, 200, 100, 150);
        assert_eq!(st.dequeues(), 200);
        assert_eq!(st.depth(), 0);
        let u = st.use_metrics(DEFAULT_LITTLE_TOLERANCE);
        assert!(u.little.checked);
        assert!(
            u.little.within,
            "rel_err {} L_obs {} L_pred {}",
            u.little.rel_err, u.little.l_observed, u.little.l_predicted
        );
        assert!(u.mean_depth > 1.0, "backlog should accumulate");
        assert!(u.utilization > 0.9, "server nearly always busy");
    }

    #[test]
    fn little_check_flags_corrupted_waits() {
        let mut st = QueueStation::new("q", QueueKind::Ring, 64);
        let mut server_free = 0u64;
        for i in 0..100u64 {
            let arrive = i * 100;
            st.enqueue(ns(arrive));
            let start = server_free.max(arrive);
            let done = start + 150;
            server_free = done;
            // Corrupted instrumentation: waits over-reported 4x.
            st.dequeue(ns(done), ns((start - arrive) * 4), ns(150));
        }
        let u = st.use_metrics(DEFAULT_LITTLE_TOLERANCE);
        assert!(u.little.checked);
        assert!(!u.little.within, "4x wait inflation must be flagged");
    }

    #[test]
    fn little_check_skips_flushed_and_tiny_queues() {
        let mut st = QueueStation::new("q", QueueKind::Ring, 8);
        st.enqueue(ns(0));
        st.enqueue(ns(10));
        assert_eq!(st.flush(ns(20)), 2);
        let u = st.use_metrics(DEFAULT_LITTLE_TOLERANCE);
        assert!(!u.little.checked, "flushed queues are not checkable");
        assert!(u.little.within, "unchecked never fails");
        assert_eq!(u.flushed, 2);
    }

    #[test]
    fn depth_and_errors_track_edges() {
        let mut st = QueueStation::new("q", QueueKind::Dma, 4);
        st.enqueue(ns(0));
        st.enqueue(ns(5));
        st.enqueue(ns(10));
        assert_eq!(st.depth(), 3);
        assert_eq!(st.max_depth(), 3);
        st.dequeue(ns(20), ns(20), ns(0));
        assert_eq!(st.depth(), 2);
        st.error(ns(25));
        assert_eq!(st.errors(), 1);
        // Unmatched dequeue counts as an error, not an underflow panic.
        st.flush(ns(30));
        st.dequeue(ns(40), ns(0), ns(0));
        assert_eq!(st.errors(), 2);
        assert_eq!(st.depth(), 0);
    }

    #[test]
    fn watermark_clamps_non_monotonic_clocks() {
        let mut st = QueueStation::new("q", QueueKind::Ring, 8);
        st.enqueue(ns(1_000));
        // A lagging actor clock reports an earlier instant; the integral
        // must not go backwards.
        st.enqueue(ns(500));
        st.dequeue(ns(2_000), ns(100), ns(50));
        st.dequeue(ns(2_000), ns(100), ns(50));
        assert_eq!(st.depth(), 0);
        assert_eq!(st.window(), ns(1_000));
    }

    #[test]
    fn sampler_decimates_deterministically() {
        let mut st = QueueStation::new("q", QueueKind::Ring, 8);
        let period = SAMPLE_PERIOD.as_nanos();
        for i in 0..(MAX_SAMPLES as u64 * 3) {
            st.enqueue(ns(i * period));
            st.dequeue(ns(i * period + 10), ns(0), ns(10));
        }
        assert!(st.samples().len() < MAX_SAMPLES);
        assert!(st.sample_period > SAMPLE_PERIOD, "period doubled at cap");
        // Samples stay strictly ordered after decimation.
        for w in st.samples().windows(2) {
            assert!(w[0].at < w[1].at);
        }
    }

    #[test]
    fn report_ranks_by_total_wait() {
        let mut obs = QueueObservatory::new();
        obs.declare("a.ring", QueueKind::Ring, 64);
        obs.declare("b.dma", QueueKind::Dma, 16);
        // a.ring: small waits; b.dma: one huge wait.
        for i in 0..10u64 {
            obs.enqueue("a.ring", ns(i * 100));
            obs.dequeue("a.ring", ns(i * 100 + 50), ns(10), ns(40));
        }
        obs.enqueue("b.dma", ns(0));
        obs.dequeue("b.dma", ns(1_000_000), ns(999_000), ns(1_000));
        let report = obs.report(DEFAULT_LITTLE_TOLERANCE);
        assert_eq!(report.queues.len(), 2);
        assert_eq!(report.bounding_queue().unwrap().name, "b.dma");
        let text = report.render_text();
        assert!(text.contains("bounding queue: b.dma"), "{text}");
        assert!(crate::json::is_well_formed(&report.to_json().render()));
    }

    #[test]
    fn samples_text_is_stable_across_identical_runs() {
        let run = || {
            let mut obs = QueueObservatory::new();
            obs.declare("q", QueueKind::Ring, 8);
            for i in 0..100u64 {
                obs.enqueue("q", ns(i * 70_000));
                obs.dequeue("q", ns(i * 70_000 + 500), ns(100), ns(400));
            }
            (obs.samples_text(), obs.report(0.15).render_text())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn exemplar_ring_keeps_worst_n_and_counts_drops() {
        let mut st = QueueStation::new("q", QueueKind::Ring, 8);
        // Feed 3x the capacity with distinct waits; worst MAX_EXEMPLARS must
        // survive, everything else must tick the dropped counter.
        let total = MAX_EXEMPLARS as u64 * 3;
        for i in 0..total {
            st.enqueue(ns(i * 100));
            st.dequeue_req(ns(i * 100 + 1), ns(i + 1), ns(1), Some(ReqId(i)));
        }
        let ex = st.exemplars();
        assert_eq!(ex.len(), MAX_EXEMPLARS);
        assert_eq!(st.exemplars_dropped(), total - MAX_EXEMPLARS as u64);
        // Sorted worst-first, and exactly the largest waits survived.
        for w in ex.windows(2) {
            assert!(w[0].wait >= w[1].wait);
        }
        assert_eq!(ex[0].wait, ns(total));
        assert_eq!(ex[0].req, ReqId(total - 1));
        assert_eq!(
            ex[MAX_EXEMPLARS - 1].wait,
            ns(total - MAX_EXEMPLARS as u64 + 1)
        );
    }

    #[test]
    fn exemplars_without_req_are_not_captured() {
        let mut st = QueueStation::new("q", QueueKind::Ring, 8);
        st.enqueue(ns(0));
        st.dequeue(ns(10), ns(10), ns(0));
        assert!(st.exemplars().is_empty());
        assert_eq!(st.exemplars_dropped(), 0);
    }

    #[test]
    fn exemplar_capture_is_deterministic() {
        let run = || {
            let mut obs = QueueObservatory::new();
            obs.declare("q", QueueKind::Ring, 8);
            for i in 0..40u64 {
                obs.enqueue("q", ns(i * 50));
                // Repeating wait pattern exercises tie-breaking.
                let wait = ns((i % 7) * 13);
                obs.dequeue_req("q", ns(i * 50 + 5), wait, ns(5), Some(ReqId(i)));
            }
            let report = obs.report(DEFAULT_LITTLE_TOLERANCE);
            (report.render_text(), report.to_json().render())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn exemplar_ties_keep_first_seen_order() {
        let mut st = QueueStation::new("q", QueueKind::Ring, 8);
        for i in 0..4u64 {
            st.enqueue(ns(i));
            st.dequeue_req(ns(i + 1), ns(500), ns(1), Some(ReqId(i)));
        }
        let reqs: Vec<u64> = st.exemplars().iter().map(|e| e.req.0).collect();
        assert_eq!(reqs, vec![0, 1, 2, 3], "equal waits keep arrival order");
    }

    #[test]
    fn undeclared_queue_edges_are_ignored() {
        let mut obs = QueueObservatory::new();
        obs.enqueue("ghost", ns(0));
        obs.dequeue("ghost", ns(1), ns(0), ns(1));
        assert_eq!(obs.flush("ghost", ns(2)), 0);
        assert!(obs.is_empty());
        assert!(obs.report(0.15).bounding_queue().is_none());
    }
}
