//! Fairness metrics and the noisy-neighbor interference matrix.
//!
//! Built entirely on the [`crate::meter`] ledgers: Jain's fairness index
//! and dominant-resource shares summarize *who* is consuming the machine,
//! while the interference matrix explains *who is hurting whom* — each
//! request's executor-backlog wait is attributed to the principals whose
//! requests actually occupied the contended worker during that wait, with
//! exemplar [`ReqId`]s so a report can say "partition A's p99 is worse
//! because of partition B's SM hogging, e.g. req 812 waited behind req
//! 805". All inputs are virtual-clock intervals, so the matrix is
//! deterministic: byte-identical per seed.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::meter::{Principal, ResourceMeter};
use crate::span::ReqId;

/// Jain's fairness index over per-principal allocations: `(Σx)² / (n·Σx²)`.
/// 1.0 = perfectly fair, 1/n = one principal holds everything. An empty or
/// all-zero allocation is vacuously fair (1.0).
pub fn jain_index(allocations: &[u64]) -> f64 {
    let n = allocations.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = allocations.iter().map(|&x| x as f64).sum();
    let sq_sum: f64 = allocations.iter().map(|&x| (x as f64) * (x as f64)).sum();
    if sq_sum == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sq_sum)
}

/// One principal's dominant resource: the resource where its share of the
/// machine-wide total is largest (the DRF notion of "dominant share").
#[derive(Clone, Debug, PartialEq)]
pub struct DominantShare {
    /// The principal.
    pub principal: Principal,
    /// Resource key the principal dominates in (e.g. `sm_ns`).
    pub resource: String,
    /// Its fraction of the machine-wide total for that resource, in [0, 1].
    pub share: f64,
}

/// Per-resource fairness summary across all principals.
#[derive(Clone, Debug, PartialEq)]
pub struct FairnessReport {
    /// `(resource key, Jain index over per-principal allocations)`.
    pub jain: Vec<(String, f64)>,
    /// Each principal's dominant-resource share, sorted by principal.
    pub dominant: Vec<DominantShare>,
}

impl FairnessReport {
    /// Computes fairness over every resource the meter has charges for.
    /// The `system` principal is excluded: platform overhead is nobody's
    /// allocation.
    pub fn compute(meter: &ResourceMeter) -> FairnessReport {
        let principals: Vec<Principal> = meter
            .principals()
            .into_iter()
            .filter(|p| *p != Principal::SYSTEM)
            .collect();
        let usages: Vec<BTreeMap<String, u64>> =
            principals.iter().map(|p| meter.usage_of(*p)).collect();
        let keys = meter.resource_keys();

        let mut jain = Vec::new();
        let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
        for key in &keys {
            let xs: Vec<u64> = usages
                .iter()
                .map(|u| u.get(key).copied().unwrap_or(0))
                .collect();
            totals.insert(key, xs.iter().sum());
            jain.push((key.clone(), jain_index(&xs)));
        }

        let mut dominant = Vec::new();
        for (p, usage) in principals.iter().zip(&usages) {
            let mut best: Option<(&str, f64)> = None;
            for key in &keys {
                let total = totals.get(key.as_str()).copied().unwrap_or(0);
                if total == 0 {
                    continue;
                }
                let share = usage.get(key).copied().unwrap_or(0) as f64 / total as f64;
                // Ties break toward the first key in sorted order, so the
                // report is deterministic.
                if best.is_none_or(|(_, s)| share > s) {
                    best = Some((key, share));
                }
            }
            if let Some((resource, share)) = best {
                dominant.push(DominantShare {
                    principal: *p,
                    resource: resource.to_string(),
                    share,
                });
            }
        }
        FairnessReport { jain, dominant }
    }

    /// Jain index for one resource key, if present.
    pub fn jain_of(&self, resource: &str) -> Option<f64> {
        self.jain
            .iter()
            .find(|(k, _)| k == resource)
            .map(|(_, j)| *j)
    }

    /// JSON form: `{"jain": {key: idx}, "dominant": [...]}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "jain",
                Json::Obj(
                    self.jain
                        .iter()
                        .map(|(k, j)| (k.clone(), Json::F64(*j)))
                        .collect(),
                ),
            ),
            (
                "dominant",
                Json::Arr(
                    self.dominant
                        .iter()
                        .map(|d| {
                            Json::obj([
                                ("principal", Json::Str(d.principal.to_string())),
                                ("resource", Json::Str(d.resource.clone())),
                                ("share", Json::F64(d.share)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// An exemplar interference: one concrete wait that the interferer's
/// occupancy prolonged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InterferenceExemplar {
    /// The request that waited.
    pub victim_req: ReqId,
    /// The occupying request it waited behind.
    pub interferer_req: ReqId,
    /// Overlap between the wait window and the occupancy slice, ns.
    pub overlap_ns: u64,
}

/// One cell of the interference matrix: how much of `victim`'s backlog
/// wait overlapped `interferer`'s executor occupancy.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct InterferenceCell {
    /// Total attributed wait, ns.
    pub ns: u64,
    /// Number of (wait, occupancy) overlapping pairs.
    pub overlaps: u64,
    /// The largest-overlap exemplar pair seen.
    pub exemplar: Option<InterferenceExemplar>,
}

/// The deterministic interference matrix: `(victim, interferer) -> cell`.
///
/// Diagonal cells (victim == interferer) are *self-queueing* — a partition
/// waiting behind its own earlier requests. They are kept in the matrix
/// (self-inflicted backlog is a real diagnosis) but excluded from
/// [`InterferenceMatrix::top_interferer_of`]: a partition cannot be its own
/// noisy neighbor.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct InterferenceMatrix {
    /// Cells, keyed `(victim, interferer)`, deterministic order.
    pub cells: BTreeMap<(Principal, Principal), InterferenceCell>,
    /// Total backlog wait per victim, ns (attributed or not).
    pub waited: BTreeMap<Principal, u64>,
}

impl InterferenceMatrix {
    /// Builds the matrix from the meter's wait windows and occupancy
    /// slices. For each wait `[enqueued, started)` on a worker, every
    /// occupancy slice on the *same* worker contributes its overlap to the
    /// `(victim, occupier)` cell.
    pub fn build(meter: &ResourceMeter) -> InterferenceMatrix {
        let mut m = InterferenceMatrix::default();
        for w in meter.waits() {
            let wait_ns = w.started.as_nanos() - w.enqueued.as_nanos();
            *m.waited.entry(w.principal).or_insert(0) += wait_ns;
            for slice in meter.occupancy_of(w.worker) {
                let lo = w.enqueued.as_nanos().max(slice.start.as_nanos());
                let hi = w.started.as_nanos().min(slice.end.as_nanos());
                if hi <= lo {
                    continue;
                }
                // The victim's own execution slice for this very request is
                // not interference (it starts when the wait ends, so it
                // never overlaps; this guards zero-width edge cases).
                if slice.req.is_some() && slice.req == w.req {
                    continue;
                }
                let overlap = hi - lo;
                let cell = m.cells.entry((w.principal, slice.principal)).or_default();
                cell.ns += overlap;
                cell.overlaps += 1;
                if let (Some(victim_req), Some(interferer_req)) = (w.req, slice.req) {
                    let better = cell.exemplar.is_none_or(|e| overlap > e.overlap_ns);
                    if better {
                        cell.exemplar = Some(InterferenceExemplar {
                            victim_req,
                            interferer_req,
                            overlap_ns: overlap,
                        });
                    }
                }
            }
        }
        m
    }

    /// Victims present in the matrix, sorted.
    pub fn victims(&self) -> Vec<Principal> {
        let mut out: Vec<Principal> = self.cells.keys().map(|(v, _)| *v).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The principal that cost `victim` the most attributed wait, with the
    /// amount — excluding `victim` itself (self-queueing is not
    /// interference). Ties break toward the lower principal id.
    pub fn top_interferer_of(&self, victim: Principal) -> Option<(Principal, u64)> {
        self.cells
            .iter()
            .filter(|((v, i), _)| *v == victim && *i != victim)
            .map(|((_, i), cell)| (*i, cell.ns))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
    }

    /// Machine-wide top interferer: the principal with the largest total
    /// attributed interference on *other* principals.
    pub fn top_interferer(&self) -> Option<(Principal, u64)> {
        let mut totals: BTreeMap<Principal, u64> = BTreeMap::new();
        for ((victim, interferer), cell) in &self.cells {
            if victim != interferer {
                *totals.entry(*interferer).or_insert(0) += cell.ns;
            }
        }
        totals
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
    }

    /// JSON form: `{"cells": [...], "waited": {...}}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "cells",
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|((v, i), cell)| {
                            let mut fields = vec![
                                ("victim".to_string(), Json::Str(v.to_string())),
                                ("interferer".to_string(), Json::Str(i.to_string())),
                                ("ns".to_string(), Json::U64(cell.ns)),
                                ("overlaps".to_string(), Json::U64(cell.overlaps)),
                            ];
                            if let Some(e) = cell.exemplar {
                                fields.push((
                                    "exemplar".to_string(),
                                    Json::obj([
                                        ("victim_req", Json::U64(e.victim_req.0)),
                                        ("interferer_req", Json::U64(e.interferer_req.0)),
                                        ("overlap_ns", Json::U64(e.overlap_ns)),
                                    ]),
                                ));
                            }
                            Json::Obj(fields)
                        })
                        .collect(),
                ),
            ),
            (
                "waited",
                Json::Obj(
                    self.waited
                        .iter()
                        .map(|(p, ns)| (p.to_string(), Json::U64(*ns)))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::{CountResource, ExecClass, MeterScope, WorkerId};
    use crate::profile::TimeCategory;
    use cronus_sim::SimNs;

    fn ns(v: u64) -> SimNs {
        SimNs::from_nanos(v)
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0, 0]), 1.0);
        assert_eq!(jain_index(&[5, 5, 5]), 1.0);
        let skewed = jain_index(&[100, 0, 0, 0]);
        assert!((skewed - 0.25).abs() < 1e-12, "{skewed}");
        let mild = jain_index(&[3, 1]);
        assert!(mild > 0.25 && mild < 1.0);
    }

    #[test]
    fn fairness_report_finds_dominant_resource() {
        let mut m = ResourceMeter::new();
        m.set_scope(MeterScope::principal(Principal(1)).with_class(ExecClass::Gpu));
        m.charge_time(TimeCategory::Kernel, ns(900));
        m.add_count(CountResource::DmaBytes, 100);
        m.set_scope(MeterScope::principal(Principal(2)));
        m.charge_time(TimeCategory::Kernel, ns(100));
        m.add_count(CountResource::DmaBytes, 900);

        let f = FairnessReport::compute(&m);
        // sm_ns: [900, 0], cpu_ns: [0, 100], dma: [100, 900] — all skewed.
        let j = f.jain_of("dma_bytes").expect("dma metered");
        assert!((j - jain_index(&[100, 900])).abs() < 1e-12);
        let d1 = f.dominant.iter().find(|d| d.principal == Principal(1));
        assert_eq!(d1.map(|d| d.resource.as_str()), Some("sm_ns"));
        assert_eq!(d1.map(|d| d.share), Some(1.0));
        let d2 = f.dominant.iter().find(|d| d.principal == Principal(2));
        assert_eq!(d2.map(|d| d.resource.as_str()), Some("cpu_ns"));
        assert!(f.to_json().render().contains("dominant"));
    }

    #[test]
    fn interference_attributes_overlap_to_occupier() {
        let mut m = ResourceMeter::new();
        let w = WorkerId::pool(3, 0);
        // Noisy principal 2 occupies [0, 1000).
        m.set_scope(MeterScope::principal(Principal(2)).with_stream(9));
        m.record_occupancy(w, Some(ReqId(5)), ns(0), ns(1000));
        // Victim principal 1 waits [200, 1000) on the same worker.
        m.set_scope(MeterScope::principal(Principal(1)).with_stream(4));
        m.record_wait(w, Some(ReqId(6)), ns(200), ns(1000));
        // A wait on a different worker attributes nothing.
        m.record_wait(WorkerId::pool(3, 1), Some(ReqId(7)), ns(0), ns(50));

        let x = InterferenceMatrix::build(&m);
        let cell = x
            .cells
            .get(&(Principal(1), Principal(2)))
            .expect("attributed");
        assert_eq!(cell.ns, 800);
        assert_eq!(cell.overlaps, 1);
        assert_eq!(
            cell.exemplar,
            Some(InterferenceExemplar {
                victim_req: ReqId(6),
                interferer_req: ReqId(5),
                overlap_ns: 800,
            })
        );
        assert_eq!(x.top_interferer_of(Principal(1)), Some((Principal(2), 800)));
        assert_eq!(x.top_interferer(), Some((Principal(2), 800)));
        assert_eq!(x.waited.get(&Principal(1)), Some(&850));
    }

    #[test]
    fn self_queueing_stays_on_the_diagonal() {
        let mut m = ResourceMeter::new();
        let w = WorkerId::lane(7, 0);
        m.set_scope(MeterScope::principal(Principal(1)).with_stream(7));
        m.record_occupancy(w, Some(ReqId(1)), ns(0), ns(500));
        m.record_wait(w, Some(ReqId(2)), ns(100), ns(500));

        let x = InterferenceMatrix::build(&m);
        let diag = x
            .cells
            .get(&(Principal(1), Principal(1)))
            .expect("self-queueing recorded");
        assert_eq!(diag.ns, 400);
        // But a partition is never its own top interferer.
        assert_eq!(x.top_interferer_of(Principal(1)), None);
        assert_eq!(x.top_interferer(), None);
    }

    #[test]
    fn own_request_slice_is_not_interference() {
        let mut m = ResourceMeter::new();
        let w = WorkerId::pool(2, 0);
        m.set_scope(MeterScope::principal(Principal(1)));
        // Same req on both sides: guard kicks in even if windows touch.
        m.record_occupancy(w, Some(ReqId(3)), ns(100), ns(300));
        m.record_wait(w, Some(ReqId(3)), ns(0), ns(300));
        let x = InterferenceMatrix::build(&m);
        assert!(x.cells.is_empty());
    }
}
