//! Hierarchical spans over simulated time, exportable as Chrome trace events.
//!
//! A [`SpanTracer`] owns a set of *tracks* (rendered as threads in
//! Perfetto/`chrome://tracing`) and a flat list of spans. Spans on one track
//! nest: `begin` pushes onto the track's stack, `end` pops (auto-closing any
//! children still open above the span being ended), so app → mEnclave →
//! sRPC call → device kernel hierarchies come out for free.

use std::collections::HashMap;

use cronus_sim::SimNs;

use crate::json::Json;

/// Identifies a span within one tracer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// Identifies one request end-to-end across the whole system.
///
/// Allocated by [`crate::FlightRecorder::alloc_req`] at sRPC enqueue time and
/// carried through dispatch, DMA, kernel execution and completion, so every
/// span a request causes — on any track — can be stitched back together.
/// `ReqId(0)` is never allocated and acts as the "untracked" sentinel for
/// systems running without a recorder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(pub u64);

impl std::fmt::Display for ReqId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req:{}", self.0)
    }
}

/// Identifies a track (a Perfetto "thread row") within one tracer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TrackId(pub usize);

/// One span: a named interval on a track, with an optional parent.
#[derive(Clone, Debug)]
pub struct Span {
    /// Unique id within the tracer.
    pub id: SpanId,
    /// Enclosing span on the same track, if any.
    pub parent: Option<SpanId>,
    /// Track the span lives on.
    pub track: TrackId,
    /// Display name (e.g. the mcall name).
    pub name: String,
    /// Category (e.g. `"srpc"`, `"kernel"`, `"recovery"`).
    pub cat: &'static str,
    /// Start instant.
    pub start: SimNs,
    /// End instant; `None` while the span is still open.
    pub end: Option<SimNs>,
    /// Request this span is causally attributed to, if any.
    pub req: Option<ReqId>,
}

/// An instant marker (Chrome trace phase `"I"`), e.g. an experiment phase.
#[derive(Clone, Debug)]
pub struct Instant {
    /// When the marker fired.
    pub at: SimNs,
    /// Marker label.
    pub name: String,
}

/// The span store. See the module docs for the nesting model.
#[derive(Default, Debug)]
pub struct SpanTracer {
    track_names: Vec<String>,
    track_index: HashMap<String, TrackId>,
    spans: Vec<Span>,
    instants: Vec<Instant>,
    /// Per-track stack of open span indices into `spans`.
    open: HashMap<TrackId, Vec<usize>>,
    next_id: u64,
    /// Ambient request: stamped into every span opened while set, so deep
    /// instrumentation sites (device HALs, recovery) need no plumbing.
    current_req: Option<ReqId>,
}

impl SpanTracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        SpanTracer::default()
    }

    /// Returns the track named `name`, creating it on first use.
    pub fn track(&mut self, name: &str) -> TrackId {
        if let Some(&id) = self.track_index.get(name) {
            return id;
        }
        let id = TrackId(self.track_names.len());
        self.track_names.push(name.to_string());
        self.track_index.insert(name.to_string(), id);
        id
    }

    /// Sets (or clears) the ambient request stamped into new spans.
    pub fn set_current_req(&mut self, req: Option<ReqId>) {
        self.current_req = req;
    }

    /// The ambient request, if one is set.
    pub fn current_req(&self) -> Option<ReqId> {
        self.current_req
    }

    /// Opens a span at `at` on `track`, nested under the track's current top.
    pub fn begin(
        &mut self,
        track: TrackId,
        name: impl Into<String>,
        cat: &'static str,
        at: SimNs,
    ) -> SpanId {
        let stack = self.open.entry(track).or_default();
        let parent = stack.last().map(|&i| self.spans[i].id);
        let id = SpanId(self.next_id);
        self.next_id += 1;
        stack.push(self.spans.len());
        self.spans.push(Span {
            id,
            parent,
            track,
            name: name.into(),
            cat,
            start: at,
            end: None,
            req: self.current_req,
        });
        id
    }

    /// Closes span `id` at `at`. Any children still open above it on the
    /// same track are closed at the same instant (a parent cannot outlive
    /// its enclosing scope in the simulated call structure).
    pub fn end(&mut self, track: TrackId, id: SpanId, at: SimNs) {
        let stack = self.open.entry(track).or_default();
        while let Some(&idx) = stack.last() {
            let span = &mut self.spans[idx];
            let done = span.id == id;
            span.end = Some(at.max(span.start));
            stack.pop();
            if done {
                return;
            }
        }
    }

    /// Records an already-measured interval as a closed span (nested under
    /// whatever is currently open on the track, but not pushed on the stack).
    pub fn complete(
        &mut self,
        track: TrackId,
        name: impl Into<String>,
        cat: &'static str,
        start: SimNs,
        end: SimNs,
    ) -> SpanId {
        let parent = self
            .open
            .get(&track)
            .and_then(|s| s.last())
            .map(|&i| self.spans[i].id);
        let id = SpanId(self.next_id);
        self.next_id += 1;
        self.spans.push(Span {
            id,
            parent,
            track,
            name: name.into(),
            cat,
            start,
            end: Some(end.max(start)),
            req: self.current_req,
        });
        id
    }

    /// Records an instant marker.
    pub fn instant(&mut self, name: impl Into<String>, at: SimNs) {
        self.instants.push(Instant {
            at,
            name: name.into(),
        });
    }

    /// Closes every still-open span at `at`.
    pub fn finish_all(&mut self, at: SimNs) {
        for stack in self.open.values_mut() {
            while let Some(idx) = stack.pop() {
                let span = &mut self.spans[idx];
                span.end = Some(at.max(span.start));
            }
        }
    }

    /// All spans, in creation order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All instant markers, in creation order.
    pub fn instants(&self) -> &[Instant] {
        &self.instants
    }

    /// Number of spans currently open on `track`.
    pub fn open_depth(&self, track: TrackId) -> usize {
        self.open.get(&track).map_or(0, Vec::len)
    }

    /// Name of a track.
    pub fn track_name(&self, track: TrackId) -> &str {
        &self.track_names[track.0]
    }

    /// Checks the structural invariants the trace format relies on:
    /// every closed span has `end >= start`, every child lies within its
    /// parent's interval, and a child's parent precedes it in creation
    /// order on the same track.
    pub fn validate(&self) -> Result<(), String> {
        let by_id: HashMap<SpanId, &Span> = self.spans.iter().map(|s| (s.id, s)).collect();
        for span in &self.spans {
            if let Some(end) = span.end {
                if end < span.start {
                    return Err(format!("span {:?} ends before it starts", span.name));
                }
            }
            if let Some(pid) = span.parent {
                let parent = by_id
                    .get(&pid)
                    .ok_or_else(|| format!("span {:?} has unknown parent", span.name))?;
                if parent.track != span.track {
                    return Err(format!("span {:?} crosses tracks", span.name));
                }
                if span.start < parent.start {
                    return Err(format!(
                        "child {:?} starts before parent {:?}",
                        span.name, parent.name
                    ));
                }
                if let (Some(ce), Some(pe)) = (span.end, parent.end) {
                    if ce > pe {
                        return Err(format!(
                            "child {:?} outlives parent {:?}",
                            span.name, parent.name
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Exports the closed spans and instants as a Chrome trace-event JSON
    /// document (loadable in Perfetto / `chrome://tracing`). Timestamps are
    /// microseconds as floats, preserving nanosecond precision in the
    /// fraction. Still-open spans are skipped; call [`SpanTracer::finish_all`]
    /// first if they should appear.
    pub fn chrome_trace_json(&self) -> String {
        let mut events = Vec::new();
        for (i, name) in self.track_names.iter().enumerate() {
            events.push(Json::obj([
                ("name", Json::from("thread_name")),
                ("ph", Json::from("M")),
                ("pid", Json::U64(1)),
                ("tid", Json::U64(i as u64 + 1)),
                ("args", Json::obj([("name", Json::from(name.as_str()))])),
            ]));
        }
        for span in &self.spans {
            let Some(end) = span.end else { continue };
            events.push(Json::obj([
                ("name", Json::from(span.name.as_str())),
                ("cat", Json::from(span.cat)),
                ("ph", Json::from("X")),
                ("ts", Json::F64(span.start.as_nanos() as f64 / 1e3)),
                ("dur", Json::F64((end - span.start).as_nanos() as f64 / 1e3)),
                ("pid", Json::U64(1)),
                ("tid", Json::U64(span.track.0 as u64 + 1)),
                (
                    "args",
                    Json::obj([
                        ("span_id", Json::U64(span.id.0)),
                        ("parent", span.parent.map_or(Json::Null, |p| Json::U64(p.0))),
                        ("req", span.req.map_or(Json::Null, |r| Json::U64(r.0))),
                    ]),
                ),
            ]));
        }
        events.extend(self.flow_events());
        for m in &self.instants {
            events.push(Json::obj([
                ("name", Json::from(m.name.as_str())),
                ("cat", Json::from("marker")),
                ("ph", Json::from("I")),
                ("s", Json::from("g")),
                ("ts", Json::F64(m.at.as_nanos() as f64 / 1e3)),
                ("pid", Json::U64(1)),
                ("tid", Json::U64(0)),
            ]));
        }
        Json::obj([
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::from("ns")),
        ])
        .render()
    }

    /// Derives Chrome flow events (`ph` `"s"`/`"t"`/`"f"`) from request ids:
    /// for every request that produced two or more closed spans, one flow
    /// chain — start at the earliest span, steps through the middle ones,
    /// finish at the latest — so Perfetto draws arrows connecting
    /// enqueue → dispatch → kernel → completion across tracks. Requests with
    /// a single span get no flow events (nothing to connect), which keeps the
    /// start/finish pairing exact.
    fn flow_events(&self) -> Vec<Json> {
        let mut by_req: HashMap<ReqId, Vec<&Span>> = HashMap::new();
        for span in &self.spans {
            if span.end.is_none() {
                continue;
            }
            if let Some(req) = span.req {
                by_req.entry(req).or_default().push(span);
            }
        }
        let mut reqs: Vec<_> = by_req.into_iter().collect();
        reqs.sort_by_key(|(req, _)| *req);
        let mut events = Vec::new();
        for (req, mut spans) in reqs {
            if spans.len() < 2 {
                continue;
            }
            spans.sort_by_key(|s| (s.start, s.id.0));
            let last = spans.len() - 1;
            for (i, span) in spans.iter().enumerate() {
                let ph = if i == 0 {
                    "s"
                } else if i == last {
                    "f"
                } else {
                    "t"
                };
                let ts = if i == last {
                    span.end.unwrap_or(span.start)
                } else {
                    span.start
                };
                let mut ev = vec![
                    ("name".to_string(), Json::from("req")),
                    ("cat".to_string(), Json::from("req")),
                    ("ph".to_string(), Json::from(ph)),
                    ("id".to_string(), Json::U64(req.0)),
                    ("ts".to_string(), Json::F64(ts.as_nanos() as f64 / 1e3)),
                    ("pid".to_string(), Json::U64(1)),
                    ("tid".to_string(), Json::U64(span.track.0 as u64 + 1)),
                ];
                if i == last {
                    // Bind the finish to the enclosing slice rather than the
                    // next slice on the track.
                    ev.push(("bp".to_string(), Json::from("e")));
                }
                events.push(Json::Obj(ev));
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::is_well_formed;

    fn ns(v: u64) -> SimNs {
        SimNs::from_nanos(v)
    }

    #[test]
    fn nesting_links_parents() {
        let mut t = SpanTracer::new();
        let track = t.track("executor");
        let outer = t.begin(track, "call", "srpc", ns(10));
        let inner = t.begin(track, "kernel", "kernel", ns(20));
        assert_eq!(t.open_depth(track), 2);
        t.end(track, inner, ns(30));
        t.end(track, outer, ns(40));
        assert_eq!(t.open_depth(track), 0);
        let spans = t.spans();
        assert_eq!(spans[1].parent, Some(outer));
        assert_eq!(spans[0].parent, None);
        t.validate().unwrap();
    }

    #[test]
    fn ending_parent_auto_closes_children() {
        let mut t = SpanTracer::new();
        let track = t.track("executor");
        let outer = t.begin(track, "call", "srpc", ns(10));
        let _inner = t.begin(track, "kernel", "kernel", ns(20));
        t.end(track, outer, ns(50));
        assert_eq!(t.open_depth(track), 0);
        assert!(t.spans().iter().all(|s| s.end == Some(ns(50))));
        t.validate().unwrap();
    }

    #[test]
    fn tracks_are_deduplicated_and_independent() {
        let mut t = SpanTracer::new();
        let a = t.track("gpu:1");
        let b = t.track("npu:2");
        assert_eq!(t.track("gpu:1"), a);
        assert_ne!(a, b);
        let sa = t.begin(a, "k1", "kernel", ns(0));
        let _sb = t.begin(b, "k2", "kernel", ns(5));
        t.end(a, sa, ns(10));
        assert_eq!(t.open_depth(a), 0);
        assert_eq!(t.open_depth(b), 1);
        t.finish_all(ns(20));
        assert_eq!(t.open_depth(b), 0);
        t.validate().unwrap();
    }

    #[test]
    fn complete_spans_nest_under_open_parent() {
        let mut t = SpanTracer::new();
        let track = t.track("recovery:p2");
        let outer = t.begin(track, "failover", "recovery", ns(0));
        let child = t.complete(track, "invalidate", "recovery", ns(1), ns(4));
        t.end(track, outer, ns(10));
        let spans = t.spans();
        let c = spans.iter().find(|s| s.id == child).unwrap();
        assert_eq!(c.parent, Some(outer));
        t.validate().unwrap();
    }

    #[test]
    fn chrome_trace_is_well_formed_json() {
        let mut t = SpanTracer::new();
        let track = t.track("spm");
        let s = t.begin(track, "boot \"quoted\"", "boot", ns(0));
        t.end(track, s, ns(1_000_000));
        t.instant("phase:crash", ns(500));
        let json = t.chrome_trace_json();
        assert!(is_well_formed(&json), "trace must parse: {json}");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"I\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("traceEvents"));
    }

    #[test]
    fn current_req_stamps_spans_and_emits_flow_chain() {
        let mut t = SpanTracer::new();
        let caller = t.track("enclave:e1");
        let stream = t.track("stream:1");
        t.set_current_req(Some(ReqId(7)));
        t.complete(caller, "enqueue:echo", "ring", ns(0), ns(10));
        let call = t.begin(stream, "echo", "srpc", ns(10));
        t.end(stream, call, ns(50));
        t.set_current_req(None);
        t.complete(caller, "unrelated", "mgmt", ns(60), ns(70));
        assert!(t.spans()[0].req == Some(ReqId(7)) && t.spans()[1].req == Some(ReqId(7)));
        assert_eq!(t.spans()[2].req, None);
        let json = t.chrome_trace_json();
        assert!(is_well_formed(&json));
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 1, "{json}");
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 1, "{json}");
        assert!(json.contains("\"bp\":\"e\""));
    }

    #[test]
    fn single_span_requests_emit_no_flow_events() {
        let mut t = SpanTracer::new();
        let track = t.track("x");
        t.set_current_req(Some(ReqId(3)));
        t.complete(track, "lonely", "ring", ns(0), ns(5));
        t.set_current_req(None);
        let json = t.chrome_trace_json();
        assert!(!json.contains("\"ph\":\"s\""));
        assert!(!json.contains("\"ph\":\"f\""));
    }

    #[test]
    fn zero_length_spans_are_legal() {
        let mut t = SpanTracer::new();
        let track = t.track("x");
        t.complete(track, "instant-ish", "misc", ns(5), ns(5));
        t.validate().unwrap();
        assert!(is_well_formed(&t.chrome_trace_json()));
    }
}
