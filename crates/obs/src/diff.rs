//! Differential performance forensics: compares two [`TelemetryBundle`]s
//! and produces a ranked attribution verdict.
//!
//! The diff answers the question a red bench gate raises: *which span,
//! queue, or phase moved the headline?* It computes per-category and
//! per-queue deltas with tolerance-aware significance, a frame-level
//! flamegraph diff (grown / shrunk / new / vanished stacks), bounding-queue
//! and bounding-category transitions, and a phase-by-phase breakdown of the
//! worst exemplar request on each side. Output is fully deterministic:
//! byte-identical for the same (bundle, bundle, config) triple.
//!
//! This file is on the audit lint's `STRICT_OBS_FILES` list: no wall-clock
//! reads, and fallible public functions return the typed [`DiffError`].

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use crate::bundle::{BundleError, Direction, TelemetryBundle};
use crate::json::Json;

/// Default minimum absolute delta (ns) considered significant. Filters out
/// sub-microsecond jitter that a percentage threshold alone would flag on
/// tiny denominators.
pub const DEFAULT_MIN_DELTA_NS: u64 = 1_000;

/// Significance thresholds for the diff.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiffConfig {
    /// Relative threshold: deltas under this percentage are noise.
    pub tolerance_pct: f64,
    /// Absolute floor: deltas under this many nanoseconds are noise.
    pub min_delta_ns: u64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            tolerance_pct: 10.0,
            min_delta_ns: DEFAULT_MIN_DELTA_NS,
        }
    }
}

impl DiffConfig {
    /// Whether a `base -> cand` nanosecond move clears both thresholds.
    pub fn significant(&self, base: u64, cand: u64) -> bool {
        let delta = base.abs_diff(cand);
        if delta < self.min_delta_ns {
            return false;
        }
        if base == 0 {
            return true;
        }
        (delta as f64 / base as f64) * 100.0 >= self.tolerance_pct
    }
}

/// Typed error for the load-and-diff path: names which side failed.
#[derive(Clone, Debug, PartialEq)]
pub enum DiffError {
    /// The baseline bundle failed to parse.
    Baseline(BundleError),
    /// The candidate bundle failed to parse.
    Candidate(BundleError),
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffError::Baseline(e) => write!(f, "baseline bundle: {e}"),
            DiffError::Candidate(e) => write!(f, "candidate bundle: {e}"),
        }
    }
}

impl std::error::Error for DiffError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiffError::Baseline(e) | DiffError::Candidate(e) => Some(e),
        }
    }
}

/// Headline movement between two bundles.
#[derive(Clone, Debug, PartialEq)]
pub struct HeadlineDelta {
    /// Metric key.
    pub key: String,
    /// Unit label.
    pub unit: String,
    /// Improvement direction.
    pub better: Direction,
    /// Baseline value.
    pub base: f64,
    /// Candidate value.
    pub cand: f64,
    /// Relative change in percent (positive = grew).
    pub delta_pct: f64,
    /// The change moved against the improvement direction past tolerance.
    pub regressed: bool,
    /// The change moved with the improvement direction past tolerance.
    pub improved: bool,
}

/// What happened to a flamegraph frame between two bundles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameStatus {
    /// Present only in the candidate.
    New,
    /// Present only in the baseline.
    Vanished,
    /// Significantly more nanoseconds in the candidate.
    Grown,
    /// Significantly fewer nanoseconds in the candidate.
    Shrunk,
}

impl FrameStatus {
    /// Wire/report label.
    pub fn as_str(self) -> &'static str {
        match self {
            FrameStatus::New => "new",
            FrameStatus::Vanished => "vanished",
            FrameStatus::Grown => "grown",
            FrameStatus::Shrunk => "shrunk",
        }
    }
}

/// One significantly-moved folded stack.
#[derive(Clone, Debug, PartialEq)]
pub struct FrameDelta {
    /// Folded stack (`cronus;queue;...`).
    pub stack: String,
    /// Baseline nanoseconds (0 when new).
    pub base_ns: u64,
    /// Candidate nanoseconds (0 when vanished).
    pub cand_ns: u64,
    /// Classification.
    pub status: FrameStatus,
}

/// What kind of subject an attribution names.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AttributionKind {
    /// A queue station (ranked by total-wait delta).
    Queue,
    /// A critical-path category (ranked by attributed-ns delta).
    Category,
}

impl AttributionKind {
    /// Report label.
    pub fn as_str(self) -> &'static str {
        match self {
            AttributionKind::Queue => "queue",
            AttributionKind::Category => "category",
        }
    }
}

/// One ranked suspect in the verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct Attribution {
    /// Queue or category.
    pub kind: AttributionKind,
    /// Station name or canonical category.
    pub subject: String,
    /// Baseline nanoseconds.
    pub base_ns: u64,
    /// Candidate nanoseconds.
    pub cand_ns: u64,
    /// Signed move (positive = regression pressure).
    pub delta_ns: i64,
    /// Relative move in percent; infinite when the baseline was zero.
    pub delta_pct: f64,
    /// Supporting detail rendered alongside the ranking.
    pub evidence: String,
}

/// Phase-by-phase comparison of the worst exemplar request on each side.
#[derive(Clone, Debug, PartialEq)]
pub struct ExemplarDiff {
    /// Baseline exemplar's request id.
    pub base_req: u64,
    /// Candidate exemplar's request id.
    pub cand_req: u64,
    /// Station where the baseline exemplar waited.
    pub base_queue: String,
    /// Station where the candidate exemplar waited.
    pub cand_queue: String,
    /// Per-phase `(phase, base_ns, cand_ns)`, union of both breakdowns.
    pub phases: Vec<(String, u64, u64)>,
}

/// The full diff of two bundles.
#[derive(Clone, Debug, PartialEq)]
pub struct BundleDiff {
    /// Baseline figure name.
    pub base_name: String,
    /// Candidate figure name.
    pub cand_name: String,
    /// Thresholds the diff was computed at.
    pub config: DiffConfig,
    /// Every shared headline's movement.
    pub headlines: Vec<HeadlineDelta>,
    /// Ranked suspects (significant movements only), worst first.
    pub attributions: Vec<Attribution>,
    /// Significantly-moved folded stacks, by |delta| descending.
    pub frames: Vec<FrameDelta>,
    /// Bounding queue on each side.
    pub bounding_queue: (Option<String>, Option<String>),
    /// Bounding critical-path category on each side.
    pub bounding_category: (Option<String>, Option<String>),
    /// Worst-exemplar comparison, when both sides captured one.
    pub exemplar: Option<ExemplarDiff>,
}

fn signed_delta(base: u64, cand: u64) -> i64 {
    i64::try_from(cand as i128 - base as i128).unwrap_or(i64::MAX)
}

fn delta_pct(base: u64, cand: u64) -> f64 {
    if base == 0 {
        if cand == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (cand as f64 - base as f64) / base as f64 * 100.0
    }
}

fn pct_str(p: f64) -> String {
    // Normalize -0.0 (a zero delta over a negative base) to +0.0.
    let p = if p == 0.0 { 0.0 } else { p };
    if p.is_finite() {
        format!("{p:+.1}%")
    } else {
        "new".to_string()
    }
}

/// Parses and diffs two bundle documents, attributing parse failures to the
/// side that produced them.
pub fn diff_documents(
    base_doc: &str,
    cand_doc: &str,
    config: DiffConfig,
) -> Result<BundleDiff, DiffError> {
    let base = TelemetryBundle::from_json(base_doc).map_err(DiffError::Baseline)?;
    let cand = TelemetryBundle::from_json(cand_doc).map_err(DiffError::Candidate)?;
    Ok(diff(&base, &cand, config))
}

/// Diffs two already-parsed bundles. Infallible and deterministic.
pub fn diff(base: &TelemetryBundle, cand: &TelemetryBundle, config: DiffConfig) -> BundleDiff {
    // Headlines: match by key, tolerance-aware, direction-aware.
    let mut headlines = Vec::new();
    for b in &base.headlines {
        let Some(c) = cand.headlines.iter().find(|c| c.key == b.key) else {
            continue;
        };
        let pct = if b.value == 0.0 {
            if c.value == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (c.value - b.value) / b.value * 100.0
        };
        let past_tol = pct.abs() >= config.tolerance_pct;
        let worse = match b.better {
            Direction::Lower => c.value > b.value,
            Direction::Higher => c.value < b.value,
        };
        headlines.push(HeadlineDelta {
            key: b.key.clone(),
            unit: b.unit.clone(),
            better: b.better,
            base: b.value,
            cand: c.value,
            delta_pct: pct,
            regressed: past_tol && worse,
            improved: past_tol && !worse,
        });
    }

    // Per-category critical-path deltas.
    let mut cats: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for (cat, ns) in &base.critical_path {
        cats.entry(cat).or_default().0 = *ns;
    }
    for (cat, ns) in &cand.critical_path {
        cats.entry(cat).or_default().1 = *ns;
    }
    let mut attributions = Vec::new();
    for (cat, (b, c)) in &cats {
        if !config.significant(*b, *c) {
            continue;
        }
        attributions.push(Attribution {
            kind: AttributionKind::Category,
            subject: cat.to_string(),
            base_ns: *b,
            cand_ns: *c,
            delta_ns: signed_delta(*b, *c),
            delta_pct: delta_pct(*b, *c),
            evidence: format!("critical path {b}ns -> {c}ns"),
        });
    }

    // Per-queue total-wait deltas, with USE evidence.
    let mut stations: BTreeMap<
        &str,
        (
            Option<&crate::bundle::BundleQueue>,
            Option<&crate::bundle::BundleQueue>,
        ),
    > = BTreeMap::new();
    for q in &base.queues {
        stations.entry(&q.name).or_default().0 = Some(q);
    }
    for q in &cand.queues {
        stations.entry(&q.name).or_default().1 = Some(q);
    }
    for (name, (b, c)) in &stations {
        let b_wait = b.map(|q| q.wait_total_ns).unwrap_or(0);
        let c_wait = c.map(|q| q.wait_total_ns).unwrap_or(0);
        if !config.significant(b_wait, c_wait) {
            continue;
        }
        let evidence = match (b, c) {
            (Some(b), Some(c)) => format!(
                "wait_total {}ns -> {}ns, p99 {}ns -> {}ns, util {:.2} -> {:.2}, depth {} -> {}",
                b.wait_total_ns,
                c.wait_total_ns,
                b.p99_wait_ns,
                c.p99_wait_ns,
                b.utilization,
                c.utilization,
                b.max_depth,
                c.max_depth,
            ),
            (None, Some(c)) => format!("station appeared, wait_total {}ns", c.wait_total_ns),
            (Some(b), None) => format!("station vanished, had wait_total {}ns", b.wait_total_ns),
            (None, None) => String::new(),
        };
        attributions.push(Attribution {
            kind: AttributionKind::Queue,
            subject: name.to_string(),
            base_ns: b_wait,
            cand_ns: c_wait,
            delta_ns: signed_delta(b_wait, c_wait),
            delta_pct: delta_pct(b_wait, c_wait),
            evidence,
        });
    }

    // Rank: largest absolute movement first; queue beats category on ties
    // (a station is more actionable than a phase); then subject for a total
    // deterministic order.
    attributions.sort_by(|a, b| {
        b.delta_ns
            .unsigned_abs()
            .cmp(&a.delta_ns.unsigned_abs())
            .then(a.kind.cmp(&b.kind))
            .then(a.subject.cmp(&b.subject))
    });

    // Frame-level flamegraph diff.
    let mut stacks: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for (stack, ns) in &base.folded {
        stacks.entry(stack).or_default().0 = *ns;
    }
    for (stack, ns) in &cand.folded {
        stacks.entry(stack).or_default().1 = *ns;
    }
    let mut frames = Vec::new();
    for (stack, (b, c)) in &stacks {
        if !config.significant(*b, *c) {
            continue;
        }
        let status = match (*b, *c) {
            (0, _) => FrameStatus::New,
            (_, 0) => FrameStatus::Vanished,
            (b, c) if c > b => FrameStatus::Grown,
            _ => FrameStatus::Shrunk,
        };
        frames.push(FrameDelta {
            stack: stack.to_string(),
            base_ns: *b,
            cand_ns: *c,
            status,
        });
    }
    frames.sort_by(|a, b| {
        b.base_ns
            .abs_diff(b.cand_ns)
            .cmp(&a.base_ns.abs_diff(a.cand_ns))
            .then(a.stack.cmp(&b.stack))
    });

    // Worst-exemplar phase breakdown (both sides archive worst-first).
    let exemplar = match (base.exemplars.first(), cand.exemplars.first()) {
        (Some(b), Some(c)) => {
            let mut phases: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
            for (phase, ns) in &b.phases {
                phases.entry(phase).or_default().0 = *ns;
            }
            for (phase, ns) in &c.phases {
                phases.entry(phase).or_default().1 = *ns;
            }
            Some(ExemplarDiff {
                base_req: b.req,
                cand_req: c.req,
                base_queue: b.queue.clone(),
                cand_queue: c.queue.clone(),
                phases: phases
                    .into_iter()
                    .map(|(p, (b, c))| (p.to_string(), b, c))
                    .collect(),
            })
        }
        _ => None,
    };

    BundleDiff {
        base_name: base.name.clone(),
        cand_name: cand.name.clone(),
        config,
        headlines,
        attributions,
        frames,
        bounding_queue: (
            base.bounding_queue().map(|q| q.name.clone()),
            cand.bounding_queue().map(|q| q.name.clone()),
        ),
        bounding_category: (
            base.critical_path.first().map(|(c, _)| c.clone()),
            cand.critical_path.first().map(|(c, _)| c.clone()),
        ),
        exemplar,
    }
}

impl BundleDiff {
    /// Whether anything cleared the significance thresholds.
    pub fn has_significant_deltas(&self) -> bool {
        !self.attributions.is_empty()
            || !self.frames.is_empty()
            || self.headlines.iter().any(|h| h.regressed || h.improved)
    }

    /// The top-ranked suspect, when any.
    pub fn top_attribution(&self) -> Option<&Attribution> {
        self.attributions.first()
    }

    /// The top-ranked suspect of one kind, when any.
    pub fn top_of_kind(&self, kind: AttributionKind) -> Option<&Attribution> {
        self.attributions.iter().find(|a| a.kind == kind)
    }

    /// The ranked attribution verdict — the part bench_gate prints when a
    /// headline regresses. Deterministic; contains the literal phrase
    /// `no significant deltas` when the diff is clean.
    pub fn verdict_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "attribution verdict: {} vs {} (tolerance {:.1}%, min {}ns)",
            self.base_name, self.cand_name, self.config.tolerance_pct, self.config.min_delta_ns
        );
        if !self.has_significant_deltas() {
            let _ = writeln!(out, "  no significant deltas");
            return out;
        }
        for (i, a) in self.attributions.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {}. {} {}: {:+}ns ({})  [{}]",
                i + 1,
                a.kind.as_str(),
                a.subject,
                a.delta_ns,
                pct_str(a.delta_pct),
                a.evidence
            );
        }
        let (bq_base, bq_cand) = &self.bounding_queue;
        if let (Some(b), Some(c)) = (bq_base, bq_cand) {
            if b == c {
                let _ = writeln!(out, "  bounding queue: {b} (unchanged)");
            } else {
                let _ = writeln!(out, "  bounding queue: {b} -> {c}");
            }
        }
        let (bc_base, bc_cand) = &self.bounding_category;
        if let (Some(b), Some(c)) = (bc_base, bc_cand) {
            if b == c {
                let _ = writeln!(out, "  bounding category: {b} (unchanged)");
            } else {
                let _ = writeln!(out, "  bounding category: {b} -> {c}");
            }
        }
        if let Some(ex) = &self.exemplar {
            let _ = writeln!(
                out,
                "  p99 exemplar: req {} @ {} (base) vs req {} @ {} (cand)",
                ex.base_req, ex.base_queue, ex.cand_req, ex.cand_queue
            );
            for (phase, b, c) in &ex.phases {
                if b == c {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "    {phase}: {b}ns -> {c}ns ({})",
                    pct_str(delta_pct(*b, *c))
                );
            }
        }
        out
    }

    /// The full human report: headline movements, frame diff, then the
    /// verdict. Deterministic.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "bundle diff: {} vs {}", self.base_name, self.cand_name);
        for h in &self.headlines {
            let marker = if h.regressed {
                " REGRESSED"
            } else if h.improved {
                " improved"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  {}: {} -> {} {} ({}){}",
                h.key,
                h.base,
                h.cand,
                h.unit,
                pct_str(h.delta_pct),
                marker
            );
        }
        if !self.frames.is_empty() {
            let count = |s: FrameStatus| self.frames.iter().filter(|f| f.status == s).count();
            let _ = writeln!(
                out,
                "  frames: {} grown, {} shrunk, {} new, {} vanished",
                count(FrameStatus::Grown),
                count(FrameStatus::Shrunk),
                count(FrameStatus::New),
                count(FrameStatus::Vanished)
            );
            for f in &self.frames {
                let _ = writeln!(
                    out,
                    "    [{}] {} {:+}ns ({} -> {})",
                    f.status.as_str(),
                    f.stack,
                    signed_delta(f.base_ns, f.cand_ns),
                    f.base_ns,
                    f.cand_ns
                );
            }
        }
        out.push_str(&self.verdict_text());
        out
    }

    /// Machine-readable form of the full diff, for the shared
    /// [`crate::json::report_document`] envelope behind `obs-diff --json`.
    /// Field order (and therefore rendered bytes) is deterministic.
    pub fn to_json(&self) -> Json {
        let pair = |(b, c): &(Option<String>, Option<String>)| {
            Json::obj([
                ("base", b.as_deref().map_or(Json::Null, Json::from)),
                ("cand", c.as_deref().map_or(Json::Null, Json::from)),
            ])
        };
        Json::obj([
            ("base_name", Json::from(self.base_name.as_str())),
            ("cand_name", Json::from(self.cand_name.as_str())),
            (
                "config",
                Json::obj([
                    ("tolerance_pct", Json::from(self.config.tolerance_pct)),
                    ("min_delta_ns", Json::from(self.config.min_delta_ns)),
                ]),
            ),
            ("significant", Json::from(self.has_significant_deltas())),
            (
                "headlines",
                Json::Arr(
                    self.headlines
                        .iter()
                        .map(|h| {
                            Json::obj([
                                ("key", Json::from(h.key.as_str())),
                                ("unit", Json::from(h.unit.as_str())),
                                ("base", Json::from(h.base)),
                                ("cand", Json::from(h.cand)),
                                ("delta_pct", Json::from(h.delta_pct)),
                                ("regressed", Json::from(h.regressed)),
                                ("improved", Json::from(h.improved)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "attributions",
                Json::Arr(
                    self.attributions
                        .iter()
                        .map(|a| {
                            Json::obj([
                                ("kind", Json::from(a.kind.as_str())),
                                ("subject", Json::from(a.subject.as_str())),
                                ("base_ns", Json::from(a.base_ns)),
                                ("cand_ns", Json::from(a.cand_ns)),
                                ("delta_ns", Json::from(a.delta_ns)),
                                ("delta_pct", Json::from(a.delta_pct)),
                                ("evidence", Json::from(a.evidence.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "frames",
                Json::Arr(
                    self.frames
                        .iter()
                        .map(|f| {
                            Json::obj([
                                ("stack", Json::from(f.stack.as_str())),
                                ("base_ns", Json::from(f.base_ns)),
                                ("cand_ns", Json::from(f.cand_ns)),
                                ("status", Json::from(f.status.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("bounding_queue", pair(&self.bounding_queue)),
            ("bounding_category", pair(&self.bounding_category)),
            (
                "exemplar",
                self.exemplar.as_ref().map_or(Json::Null, |ex| {
                    Json::obj([
                        ("base_req", Json::from(ex.base_req)),
                        ("cand_req", Json::from(ex.cand_req)),
                        ("base_queue", Json::from(ex.base_queue.as_str())),
                        ("cand_queue", Json::from(ex.cand_queue.as_str())),
                        (
                            "phases",
                            Json::Arr(
                                ex.phases
                                    .iter()
                                    .map(|(p, b, c)| {
                                        Json::obj([
                                            ("phase", Json::from(p.as_str())),
                                            ("base_ns", Json::from(*b)),
                                            ("cand_ns", Json::from(*c)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                }),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{BundleExemplar, BundleHeadline, BundleQueue, BUNDLE_SCHEMA};

    fn queue(name: &str, wait_total_ns: u64, p99: u64) -> BundleQueue {
        BundleQueue {
            name: name.to_string(),
            kind: "ring".to_string(),
            capacity: 64,
            max_depth: 4,
            utilization: 0.5,
            mean_depth: 1.0,
            p50_wait_ns: p99 / 10,
            p99_wait_ns: p99,
            max_wait_ns: p99,
            mean_service_ns: 100,
            wait_total_ns,
            errors: 0,
            exemplars: vec![(1, p99)],
            exemplars_dropped: 0,
        }
    }

    fn bundle(name: &str, queue_wait: u64, queue_cat: u64) -> TelemetryBundle {
        TelemetryBundle {
            schema: BUNDLE_SCHEMA,
            name: name.to_string(),
            meta: Vec::new(),
            headlines: vec![BundleHeadline {
                key: "total_wall_ms".to_string(),
                value: (queue_cat / 1_000_000) as f64,
                unit: "ms".to_string(),
                better: Direction::Lower,
            }],
            critical_path: vec![
                ("queue".to_string(), queue_cat),
                ("kernel".to_string(), 7_000_000),
            ],
            queues: vec![
                queue("srpc.ring:1", queue_wait, queue_wait / 100),
                queue("bus.dma", 5_000_000, 40_000),
            ],
            folded: vec![
                ("cronus;queue".to_string(), queue_cat),
                ("cronus;kernel".to_string(), 7_000_000),
            ],
            exemplars: vec![BundleExemplar {
                req: 9,
                name: "gpu.launch".to_string(),
                stream: Some(1),
                queue: "srpc.ring:1".to_string(),
                wait_ns: queue_wait / 100,
                total_ns: queue_wait / 90,
                phases: vec![("queue".to_string(), queue_wait / 100)],
            }],
        }
    }

    #[test]
    fn self_diff_has_no_significant_deltas() {
        let b = bundle("fig7", 400_000_000, 402_000_000);
        let d = diff(&b, &b, DiffConfig::default());
        assert!(!d.has_significant_deltas());
        assert!(d.verdict_text().contains("no significant deltas"));
    }

    #[test]
    fn slowed_queue_is_top_ranked_with_right_sign() {
        let base = bundle("fig7", 400_000_000, 402_000_000);
        let cand = bundle("fig7", 900_000_000, 902_000_000);
        let d = diff(&base, &cand, DiffConfig::default());
        assert!(d.has_significant_deltas());
        let top_q = d
            .top_of_kind(AttributionKind::Queue)
            .expect("queue suspect");
        assert_eq!(top_q.subject, "srpc.ring:1");
        assert!(top_q.delta_ns > 0, "regression must be positive");
        let top_c = d
            .top_of_kind(AttributionKind::Category)
            .expect("cat suspect");
        assert_eq!(top_c.subject, "queue");
        // bus.dma did not move, so it must not appear.
        assert!(d.attributions.iter().all(|a| a.subject != "bus.dma"));
        // Headline regressed in the Lower direction.
        assert!(d.headlines[0].regressed);
        let verdict = d.verdict_text();
        assert!(verdict.contains("queue srpc.ring:1"), "{verdict}");
    }

    #[test]
    fn improvement_has_negative_sign_and_improved_flag() {
        let base = bundle("fig7", 900_000_000, 902_000_000);
        let cand = bundle("fig7", 400_000_000, 402_000_000);
        let d = diff(&base, &cand, DiffConfig::default());
        let top = d.top_attribution().expect("suspect");
        assert!(top.delta_ns < 0);
        assert!(d.headlines[0].improved);
        assert!(!d.headlines[0].regressed);
    }

    #[test]
    fn frame_diff_classifies_new_and_vanished() {
        let mut base = bundle("fig7", 400_000_000, 402_000_000);
        let mut cand = base.clone();
        base.folded.push(("cronus;old".to_string(), 50_000_000));
        cand.folded.push(("cronus;fresh".to_string(), 60_000_000));
        let d = diff(&base, &cand, DiffConfig::default());
        let status = |s: &str| {
            d.frames
                .iter()
                .find(|f| f.stack == s)
                .map(|f| f.status)
                .expect("frame present")
        };
        assert_eq!(status("cronus;fresh"), FrameStatus::New);
        assert_eq!(status("cronus;old"), FrameStatus::Vanished);
    }

    #[test]
    fn diff_output_is_byte_identical_per_pair() {
        let base = bundle("fig7", 400_000_000, 402_000_000);
        let cand = bundle("fig7", 900_000_000, 902_000_000);
        let a = diff(&base, &cand, DiffConfig::default()).render_text();
        let b = diff(&base, &cand, DiffConfig::default()).render_text();
        assert_eq!(a, b);
    }

    #[test]
    fn diff_documents_names_the_failing_side() {
        let good = bundle("fig7", 400_000_000, 402_000_000).to_json();
        let err = diff_documents("nope", &good, DiffConfig::default()).expect_err("bad base");
        assert!(matches!(err, DiffError::Baseline(_)));
        let err = diff_documents(&good, "nope", DiffConfig::default()).expect_err("bad cand");
        assert!(matches!(err, DiffError::Candidate(_)));
        assert!(err.to_string().contains("candidate"));
    }

    #[test]
    fn min_delta_floor_suppresses_tiny_percentage_moves() {
        let cfg = DiffConfig::default();
        // 100% move but only 500ns: below the absolute floor.
        assert!(!cfg.significant(500, 1_000));
        // Large absolute move, large relative move: significant.
        assert!(cfg.significant(1_000_000, 2_000_000));
        // Large absolute move, tiny relative move: not significant.
        assert!(!cfg.significant(1_000_000_000, 1_001_000_000));
    }
}
