//! Labeled counters, gauges, and log-bucketed latency histograms.
//!
//! Every metric is keyed by name plus a sorted label set (e.g.
//! `("partition","2"), ("stream","3")`), mirroring the Prometheus data model
//! without any wire protocol. Histograms bucket by powers of two of
//! nanoseconds — 64 logical buckets cover the full `u64` range, stored
//! sparsely so high-cardinality per-queue histograms stay bounded — and
//! report interpolated p50/p95/p99/p999 plus the exact min/max. The
//! registry exposes the total populated-bucket footprint as the synthetic
//! `obs.histogram_buckets` gauge in every snapshot.

use std::collections::BTreeMap;

use cronus_sim::SimNs;

use crate::json::Json;

/// A sorted `key=value` label set.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelSet(Vec<(String, String)>);

impl LabelSet {
    /// An empty label set.
    pub fn empty() -> Self {
        LabelSet(Vec::new())
    }

    /// Builds a label set from `key=value` pairs (order-insensitive).
    pub fn from_pairs(pairs: &[(&str, &str)]) -> Self {
        let mut v: Vec<(String, String)> = pairs
            .iter()
            .map(|(k, val)| (k.to_string(), val.to_string()))
            .collect();
        v.sort();
        LabelSet(v)
    }

    /// The pairs, sorted by key.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.0
    }

    fn to_json(&self) -> Json {
        Json::Obj(
            self.0
                .iter()
                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                .collect(),
        )
    }
}

/// Number of power-of-two buckets; covers every representable `u64` ns value.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log-bucketed histogram of simulated durations.
///
/// Logical bucket `i` holds values whose floor(log2) is `i`, i.e. the
/// interval `[2^i, 2^(i+1))`, with bucket 0 also holding the value 0. Only
/// populated buckets are stored — as `(index, count)` pairs sorted by index —
/// so a typical latency distribution costs a handful of entries instead of a
/// fixed 64-slot array per label set.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<(u8, u64)>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index for a nanosecond value: floor(log2(v)), with 0 → bucket 0.
pub fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        63 - ns.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i` (0 for bucket 0).
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, d: SimNs) {
        let ns = d.as_nanos();
        let idx = bucket_index(ns) as u8;
        match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (idx, 1)),
        }
        self.count += 1;
        self.sum += ns as u128;
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations in nanoseconds.
    pub fn sum_ns(&self) -> u128 {
        self.sum
    }

    /// Mean observation, zero if empty.
    pub fn mean(&self) -> SimNs {
        if self.count == 0 {
            SimNs::ZERO
        } else {
            SimNs::from_nanos((self.sum / self.count as u128) as u64)
        }
    }

    /// Smallest observation (exact), zero if empty.
    pub fn min(&self) -> SimNs {
        if self.count == 0 {
            SimNs::ZERO
        } else {
            SimNs::from_nanos(self.min)
        }
    }

    /// Largest observation (exact), zero if empty.
    pub fn max(&self) -> SimNs {
        SimNs::from_nanos(self.max)
    }

    /// Populated buckets as sorted `(bucket_index, count)` pairs.
    pub fn nonzero_buckets(&self) -> &[(u8, u64)] {
        &self.buckets
    }

    /// Estimated `q`-quantile (0 ≤ q ≤ 1), linearly interpolated within the
    /// containing bucket and clamped to the exact observed min/max.
    pub fn quantile(&self, q: f64) -> SimNs {
        if self.count == 0 {
            return SimNs::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            let i = idx as usize;
            if seen + n >= rank {
                let lo = bucket_lower_bound(i) as f64;
                let hi = if i >= 63 {
                    u64::MAX as f64
                } else {
                    (1u64 << (i + 1)) as f64
                };
                let frac = (rank - seen) as f64 / n as f64;
                let est = lo + (hi - lo) * frac;
                let est = est.min(self.max as f64).max(self.min as f64);
                return SimNs::from_nanos(est as u64);
            }
            seen += n;
        }
        SimNs::from_nanos(self.max)
    }

    /// Estimated number of observations strictly greater than `threshold`,
    /// counting whole buckets above it and linearly apportioning the bucket
    /// that straddles it. Used by the SLO layer's burn-rate computation.
    pub fn count_over(&self, threshold: SimNs) -> u64 {
        let t = threshold.as_nanos();
        if self.count == 0 || t >= self.max {
            return 0;
        }
        if t < self.min {
            return self.count;
        }
        let mut over = 0f64;
        for &(idx, n) in &self.buckets {
            let i = idx as usize;
            let lo = bucket_lower_bound(i);
            let hi = if i >= 63 {
                u64::MAX
            } else {
                (1u64 << (i + 1)) - 1
            };
            if lo > t {
                over += n as f64;
            } else if hi > t {
                let span = (hi - lo).max(1) as f64;
                over += n as f64 * ((hi - t) as f64 / span);
            }
        }
        (over.round() as u64).min(self.count)
    }

    /// Median.
    pub fn p50(&self) -> SimNs {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> SimNs {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> SimNs {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> SimNs {
        self.quantile(0.999)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::U64(self.count)),
            ("sum_ns", Json::F64(self.sum as f64)),
            ("mean_ns", Json::U64(self.mean().as_nanos())),
            ("min_ns", Json::U64(self.min().as_nanos())),
            ("p50_ns", Json::U64(self.p50().as_nanos())),
            ("p95_ns", Json::U64(self.p95().as_nanos())),
            ("p99_ns", Json::U64(self.p99().as_nanos())),
            ("p999_ns", Json::U64(self.p999().as_nanos())),
            ("max_ns", Json::U64(self.max().as_nanos())),
            ("buckets", Json::U64(self.buckets.len() as u64)),
        ])
    }
}

/// Default cap on distinct label sets per metric name. Request-scoped or
/// otherwise unbounded labels overflow into the [`overflow_labels`] series
/// instead of growing the registry without bound.
pub const DEFAULT_MAX_LABEL_SETS: usize = 64;

/// The label set that absorbs observations past the cardinality cap.
pub fn overflow_labels() -> LabelSet {
    LabelSet::from_pairs(&[("__overflow", "true")])
}

/// The registry: all counters, gauges and histograms for one run.
#[derive(Clone, Debug)]
pub struct MetricsRegistry {
    counters: BTreeMap<(String, LabelSet), u64>,
    gauges: BTreeMap<(String, LabelSet), GaugeCell>,
    histograms: BTreeMap<(String, LabelSet), Histogram>,
    max_label_sets: usize,
    label_overflow: u64,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            max_label_sets: DEFAULT_MAX_LABEL_SETS,
            label_overflow: 0,
        }
    }
}

#[derive(Clone, Debug, Default)]
struct GaugeCell {
    value: i64,
    max: i64,
}

/// Distinct label sets currently recorded under `name` in one store.
fn series_count<V>(map: &BTreeMap<(String, LabelSet), V>, name: &str) -> usize {
    map.range((name.to_string(), LabelSet::empty())..)
        .take_while(|((n, _), _)| n == name)
        .count()
}

/// Applies the cardinality cap: returns `labels` unchanged when the series
/// already exists or the metric is under its cap, otherwise redirects to the
/// `__overflow` series and bumps `label_overflow`.
fn admit<V>(
    map: &BTreeMap<(String, LabelSet), V>,
    name: &str,
    labels: LabelSet,
    cap: usize,
    label_overflow: &mut u64,
) -> LabelSet {
    if map.contains_key(&(name.to_string(), labels.clone())) || series_count(map, name) < cap {
        labels
    } else {
        *label_overflow += 1;
        overflow_labels()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Changes the per-metric label-set cap (mostly for tests).
    pub fn set_max_label_sets(&mut self, cap: usize) {
        self.max_label_sets = cap.max(1);
    }

    /// Observations redirected to an `__overflow` series so far.
    pub fn label_overflow(&self) -> u64 {
        self.label_overflow
    }

    /// Adds `delta` to the counter `name{labels}`.
    pub fn counter_add(&mut self, name: &str, labels: LabelSet, delta: u64) {
        let labels = admit(
            &self.counters,
            name,
            labels,
            self.max_label_sets,
            &mut self.label_overflow,
        );
        *self.counters.entry((name.to_string(), labels)).or_insert(0) += delta;
    }

    /// Current value of the counter `name{labels}` (zero if never touched).
    pub fn counter(&self, name: &str, labels: &LabelSet) -> u64 {
        self.counters
            .get(&(name.to_string(), labels.clone()))
            .copied()
            .unwrap_or(0)
    }

    /// Sum of `name` across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Sets the gauge `name{labels}`, tracking its high-water mark.
    pub fn gauge_set(&mut self, name: &str, labels: LabelSet, value: i64) {
        let labels = admit(
            &self.gauges,
            name,
            labels,
            self.max_label_sets,
            &mut self.label_overflow,
        );
        let cell = self.gauges.entry((name.to_string(), labels)).or_default();
        cell.value = value;
        cell.max = cell.max.max(value);
    }

    /// Current value of a gauge (zero if never set).
    pub fn gauge(&self, name: &str, labels: &LabelSet) -> i64 {
        self.gauges
            .get(&(name.to_string(), labels.clone()))
            .map_or(0, |c| c.value)
    }

    /// High-water mark of a gauge (zero if never set).
    pub fn gauge_max(&self, name: &str, labels: &LabelSet) -> i64 {
        self.gauges
            .get(&(name.to_string(), labels.clone()))
            .map_or(0, |c| c.max)
    }

    /// Records one duration into the histogram `name{labels}`.
    pub fn observe(&mut self, name: &str, labels: LabelSet, d: SimNs) {
        let labels = admit(
            &self.histograms,
            name,
            labels,
            self.max_label_sets,
            &mut self.label_overflow,
        );
        self.histograms
            .entry((name.to_string(), labels))
            .or_default()
            .observe(d);
    }

    /// The histogram `name{labels}`, if any observation was recorded.
    pub fn histogram(&self, name: &str, labels: &LabelSet) -> Option<&Histogram> {
        self.histograms.get(&(name.to_string(), labels.clone()))
    }

    /// Iterates all histograms (name, labels, histogram).
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LabelSet, &Histogram)> {
        self.histograms.iter().map(|((n, l), h)| (n.as_str(), l, h))
    }

    /// Total populated (non-zero) buckets across every histogram series —
    /// the registry's histogram memory footprint, surfaced in snapshots as
    /// the synthetic `obs.histogram_buckets` gauge.
    pub fn histogram_buckets(&self) -> u64 {
        self.histograms
            .values()
            .map(|h| h.nonzero_buckets().len() as u64)
            .sum()
    }

    /// Serializes the whole registry as a JSON snapshot. `meta` fields are
    /// placed at the top of the document (run name, simulated elapsed, …).
    pub fn snapshot_json(&self, meta: &[(&'static str, Json)]) -> String {
        let counters = self
            .counters
            .iter()
            .map(|((n, l), v)| {
                Json::obj([
                    ("name", Json::from(n.as_str())),
                    ("labels", l.to_json()),
                    ("value", Json::U64(*v)),
                ])
            })
            .collect();
        let mut gauges: Vec<Json> = self
            .gauges
            .iter()
            .map(|((n, l), c)| {
                Json::obj([
                    ("name", Json::from(n.as_str())),
                    ("labels", l.to_json()),
                    ("value", Json::I64(c.value)),
                    ("max", Json::I64(c.max)),
                ])
            })
            .collect();
        let bucket_footprint = self.histogram_buckets() as i64;
        gauges.push(Json::obj([
            ("name", Json::from("obs.histogram_buckets")),
            ("labels", LabelSet::empty().to_json()),
            ("value", Json::I64(bucket_footprint)),
            ("max", Json::I64(bucket_footprint)),
        ]));
        let histograms = self
            .histograms
            .iter()
            .map(|((n, l), h)| {
                let mut fields = vec![
                    ("name".to_string(), Json::Str(n.clone())),
                    ("labels".to_string(), l.to_json()),
                ];
                if let Json::Obj(stat_fields) = h.to_json() {
                    fields.extend(stat_fields);
                }
                Json::Obj(fields)
            })
            .collect();
        let mut doc: Vec<(String, Json)> = meta
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        doc.push(("label_overflow".to_string(), Json::U64(self.label_overflow)));
        doc.push(("counters".to_string(), Json::Arr(counters)));
        doc.push(("gauges".to_string(), Json::Arr(gauges)));
        doc.push(("histograms".to_string(), Json::Arr(histograms)));
        Json::Obj(doc).render()
    }
}

/// Shorthand for [`LabelSet::from_pairs`].
pub fn labels(pairs: &[(&str, &str)]) -> LabelSet {
    LabelSet::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::is_well_formed;

    fn ns(v: u64) -> SimNs {
        SimNs::from_nanos(v)
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 1..HISTOGRAM_BUCKETS {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i, "lower bound lands in its bucket");
            assert_eq!(bucket_index(lo - 1), i - 1, "below the bound is previous");
        }
    }

    #[test]
    fn histogram_counts_and_extremes_are_exact() {
        let mut h = Histogram::default();
        for v in [100u64, 200, 300, 4_000, 50_000] {
            h.observe(ns(v));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), ns(100));
        assert_eq!(h.max(), ns(50_000));
        assert_eq!(h.sum_ns(), 54_600);
        assert_eq!(h.mean(), ns(54_600 / 5));
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(ns(v * 17));
        }
        let (p50, p95, p99, max) = (h.p50(), h.p95(), h.p99(), h.max());
        assert!(p50 <= p95 && p95 <= p99 && p99 <= max);
        assert!(p50 >= h.min());
        // The median of 17..=17000 is ~8500; log-bucket resolution gives a
        // factor-of-two estimate at worst.
        let p50ns = p50.as_nanos();
        assert!(
            (4_250..=17_000).contains(&p50ns),
            "p50 ≈ median, got {p50ns}"
        );
    }

    #[test]
    fn quantile_of_single_observation_is_that_value() {
        let mut h = Histogram::default();
        h.observe(ns(777));
        assert_eq!(h.p50(), ns(777));
        assert_eq!(h.p99(), ns(777));
        assert_eq!(h.quantile(0.0), ns(777));
        assert_eq!(h.quantile(1.0), ns(777));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), SimNs::ZERO);
        assert_eq!(h.min(), SimNs::ZERO);
        assert_eq!(h.max(), SimNs::ZERO);
    }

    #[test]
    fn sparse_buckets_track_only_populated_indices() {
        let mut h = Histogram::default();
        h.observe(ns(1)); // bucket 0
        h.observe(ns(1)); // bucket 0 again
        h.observe(ns(1 << 20)); // bucket 20
        h.observe(ns(u64::MAX)); // bucket 63
        assert_eq!(h.nonzero_buckets(), &[(0, 2), (20, 1), (63, 1)]);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn p999_sits_between_p99_and_max() {
        let mut h = Histogram::default();
        for v in 1..=10_000u64 {
            h.observe(ns(v));
        }
        assert!(h.p99() <= h.p999());
        assert!(h.p999() <= h.max());
        // The top permille of 1..=10000 starts near 9990.
        assert!(h.p999().as_nanos() >= 8_192, "p999 = {}", h.p999());
    }

    #[test]
    fn count_over_estimates_tail_fraction() {
        let mut h = Histogram::default();
        for v in 1..=1_000u64 {
            h.observe(ns(v));
        }
        assert_eq!(h.count_over(ns(2_000)), 0, "nothing above the max");
        assert_eq!(h.count_over(SimNs::ZERO), 1_000, "everything above zero");
        let over = h.count_over(ns(500));
        // Exactly 500 observations exceed 500ns; log-bucket apportioning is
        // approximate but must land in the right ballpark.
        assert!((300..=700).contains(&over), "count_over(500) = {over}");
    }

    #[test]
    fn registry_reports_histogram_bucket_footprint() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.histogram_buckets(), 0);
        m.observe("lat", labels(&[("q", "a")]), ns(10));
        m.observe("lat", labels(&[("q", "a")]), ns(11));
        m.observe("lat", labels(&[("q", "b")]), ns(1 << 30));
        assert_eq!(m.histogram_buckets(), 2, "one bucket per series here");
        let json = m.snapshot_json(&[]);
        assert!(json.contains("\"obs.histogram_buckets\""), "{json}");
        assert!(json.contains("\"p999_ns\""), "{json}");
    }

    #[test]
    fn counters_and_gauges_are_label_scoped() {
        let mut m = MetricsRegistry::new();
        let s1 = labels(&[("stream", "1")]);
        let s2 = labels(&[("stream", "2")]);
        m.counter_add("srpc.enqueued", s1.clone(), 3);
        m.counter_add("srpc.enqueued", s2.clone(), 4);
        assert_eq!(m.counter("srpc.enqueued", &s1), 3);
        assert_eq!(m.counter("srpc.enqueued", &s2), 4);
        assert_eq!(m.counter_total("srpc.enqueued"), 7);
        assert_eq!(m.counter("srpc.enqueued", &LabelSet::empty()), 0);

        m.gauge_set("ring.occupancy", s1.clone(), 5);
        m.gauge_set("ring.occupancy", s1.clone(), 2);
        assert_eq!(m.gauge("ring.occupancy", &s1), 2);
        assert_eq!(m.gauge_max("ring.occupancy", &s1), 5);
    }

    #[test]
    fn label_order_does_not_matter() {
        let a = labels(&[("partition", "2"), ("stream", "3")]);
        let b = labels(&[("stream", "3"), ("partition", "2")]);
        assert_eq!(a, b);
    }

    #[test]
    fn label_cardinality_overflows_into_one_series() {
        let mut m = MetricsRegistry::new();
        m.set_max_label_sets(4);
        for req in 0..100u64 {
            m.counter_add("per_req.bytes", labels(&[("req", &req.to_string())]), 1);
            m.observe("per_req.lat", labels(&[("req", &req.to_string())]), ns(req));
        }
        // Existing series keep accepting updates past the cap.
        m.counter_add("per_req.bytes", labels(&[("req", "0")]), 10);
        assert_eq!(m.counter("per_req.bytes", &labels(&[("req", "0")])), 11);
        assert_eq!(
            series_count(&m.counters, "per_req.bytes"),
            5,
            "4 + overflow"
        );
        assert_eq!(m.counter("per_req.bytes", &overflow_labels()), 96);
        assert_eq!(m.counter_total("per_req.bytes"), 110, "no observation lost");
        let h = m.histogram("per_req.lat", &overflow_labels()).unwrap();
        assert_eq!(h.count(), 96);
        assert_eq!(m.label_overflow(), 96 * 2);
        let json = m.snapshot_json(&[]);
        assert!(json.contains("\"label_overflow\":192"), "{json}");
        assert!(json.contains("__overflow"));
    }

    #[test]
    fn unlabeled_metrics_never_overflow() {
        let mut m = MetricsRegistry::new();
        m.set_max_label_sets(1);
        for _ in 0..10 {
            m.counter_add("plain", LabelSet::empty(), 1);
        }
        assert_eq!(m.counter("plain", &LabelSet::empty()), 10);
        assert_eq!(m.label_overflow(), 0);
    }

    #[test]
    fn snapshot_is_well_formed_json() {
        let mut m = MetricsRegistry::new();
        m.counter_add("faults", LabelSet::empty(), 2);
        m.gauge_set("occupancy", labels(&[("stream", "1")]), 9);
        m.observe("latency", labels(&[("device", "gpu")]), ns(12_345));
        let json = m.snapshot_json(&[
            ("run", Json::from("test")),
            ("elapsed_ns", Json::U64(1_000_000)),
        ]);
        assert!(is_well_formed(&json), "snapshot must parse: {json}");
        assert!(json.contains("\"run\":\"test\""));
        assert!(json.contains("\"p99_ns\""));
        assert!(json.contains("\"counters\""));
    }
}
