//! The flight recorder: one shared handle bundling spans, metrics and the
//! time profiler, plus the [`cronus_sim::EventSink`] bridge that keeps the
//! metrics counters in exact agreement with the simulator's [`EventLog`]
//! (both are driven by the same `Machine::record` call).
//!
//! [`EventLog`]: cronus_sim::EventLog

use std::sync::{Arc, Mutex, MutexGuard};

use cronus_sim::{EventKind, EventSink, SimNs};

use crate::causal::CausalReport;
use crate::json::Json;
use crate::meter::{
    ConservationRow, CountResource, MeterError, MeterScope, ResourceMeter, WorkerId,
};
use crate::metrics::{labels, LabelSet, MetricsRegistry};
use crate::profile::{TimeCategory, TimeProfiler};
use crate::queue::{QueueKind, QueueObservatory, QueueReport};
use crate::span::{ReqId, SpanId, SpanTracer, TrackId};

/// Everything one run records.
#[derive(Default, Debug)]
pub struct RecorderInner {
    /// Hierarchical spans.
    pub spans: SpanTracer,
    /// Counters, gauges, histograms.
    pub metrics: MetricsRegistry,
    /// Time attribution.
    pub profiler: TimeProfiler,
    /// Per-queue depth/wait/service telemetry.
    pub queues: QueueObservatory,
    /// Per-principal resource ledgers (fed in lockstep with the profiler).
    pub meter: ResourceMeter,
    /// Last allocated request id (0 = none yet; ids start at 1).
    next_req: u64,
}

/// A cheaply-cloneable handle to one run's observability state.
///
/// Clones share the same underlying store; one clone is typically boxed as
/// the machine's event sink while others live in the SPM, devices and
/// runtime shims.
#[derive(Clone, Default, Debug)]
pub struct FlightRecorder {
    inner: Arc<Mutex<RecorderInner>>,
}

impl FlightRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        FlightRecorder::default()
    }

    /// Locks the store for direct access (tests, exporters).
    pub fn lock(&self) -> MutexGuard<'_, RecorderInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Runs `f` with the locked store.
    pub fn with<R>(&self, f: impl FnOnce(&mut RecorderInner) -> R) -> R {
        f(&mut self.lock())
    }

    // --- request ids ----------------------------------------------------

    /// Allocates the next request id (monotonic per system, starting at 1).
    pub fn alloc_req(&self) -> ReqId {
        self.with(|r| {
            r.next_req += 1;
            ReqId(r.next_req)
        })
    }

    /// Sets (or clears) the ambient request: every span opened while it is
    /// set — on any track, from any layer — is attributed to that request.
    pub fn set_current_req(&self, req: Option<ReqId>) {
        self.with(|r| r.spans.set_current_req(req));
    }

    /// The ambient request, if any.
    pub fn current_req(&self) -> Option<ReqId> {
        self.with(|r| r.spans.current_req())
    }

    // --- span conveniences ---------------------------------------------

    /// Returns (creating if needed) the track named `name`.
    pub fn track(&self, name: &str) -> TrackId {
        self.with(|r| r.spans.track(name))
    }

    /// Opens a span; see [`SpanTracer::begin`].
    pub fn begin_span(
        &self,
        track: TrackId,
        name: impl Into<String>,
        cat: &'static str,
        at: SimNs,
    ) -> SpanId {
        self.with(|r| {
            r.profiler.observe_instant(at);
            r.spans.begin(track, name, cat, at)
        })
    }

    /// Closes a span; see [`SpanTracer::end`].
    pub fn end_span(&self, track: TrackId, id: SpanId, at: SimNs) {
        self.with(|r| {
            r.profiler.observe_instant(at);
            r.spans.end(track, id, at)
        })
    }

    /// Records a closed interval span; see [`SpanTracer::complete`].
    pub fn complete_span(
        &self,
        track: TrackId,
        name: impl Into<String>,
        cat: &'static str,
        start: SimNs,
        end: SimNs,
    ) -> SpanId {
        self.with(|r| {
            r.profiler.observe_instant(end);
            r.spans.complete(track, name, cat, start, end)
        })
    }

    // --- metric conveniences -------------------------------------------

    /// Adds to a counter.
    pub fn counter_add(&self, name: &str, lbls: &[(&str, &str)], delta: u64) {
        self.with(|r| r.metrics.counter_add(name, labels(lbls), delta));
    }

    /// Sets a gauge.
    pub fn gauge_set(&self, name: &str, lbls: &[(&str, &str)], value: i64) {
        self.with(|r| r.metrics.gauge_set(name, labels(lbls), value));
    }

    /// Sums a counter across all label sets (used by the forensics
    /// verifier's ledger-vs-recorder completeness check).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.with(|r| r.metrics.counter_total(name))
    }

    /// Records a histogram observation.
    pub fn observe(&self, name: &str, lbls: &[(&str, &str)], d: SimNs) {
        self.with(|r| r.metrics.observe(name, labels(lbls), d));
    }

    // --- queue observatory conveniences --------------------------------

    /// Declares a queue station (idempotent).
    pub fn queue_declare(&self, name: &str, kind: QueueKind, capacity: u64) {
        self.with(|r| r.queues.declare(name, kind, capacity));
    }

    /// Records an enqueue edge on `name` at virtual instant `at`.
    pub fn queue_enqueue(&self, name: &str, at: SimNs) {
        self.with(|r| r.queues.enqueue(name, at));
    }

    /// Records a dequeue edge on `name`: the item left at `at` after
    /// waiting `wait` and being served for `service`. When an ambient
    /// request is active its ReqId is attached as a wait exemplar, so the
    /// p99 tail of each wait histogram stays attributable.
    pub fn queue_dequeue(&self, name: &str, at: SimNs, wait: SimNs, service: SimNs) {
        self.with(|r| {
            let req = r.spans.current_req();
            r.queues.dequeue_req(name, at, wait, service, req);
        });
    }

    /// Records a queue error (full-ring stall, drop) on `name`.
    pub fn queue_error(&self, name: &str, at: SimNs) {
        self.with(|r| r.queues.error(name, at));
    }

    /// Discards everything queued on `name` (quarantine teardown),
    /// returning the number of flushed items.
    pub fn queue_flush(&self, name: &str, at: SimNs) -> u64 {
        self.with(|r| r.queues.flush(name, at))
    }

    /// Whether any queue station was declared in this run.
    pub fn has_queues(&self) -> bool {
        self.with(|r| !r.queues.is_empty())
    }

    /// Builds the ranked bottleneck-attribution report.
    pub fn queue_report(&self, tolerance: f64) -> QueueReport {
        self.with(|r| r.queues.report(tolerance))
    }

    /// Renders every station's depth-sample stream (determinism surface).
    pub fn queue_samples_text(&self) -> String {
        self.with(|r| r.queues.samples_text())
    }

    /// Evaluates an SLO policy against the queue observatory.
    pub fn slo_report(&self, policy: &crate::slo::SloPolicy) -> crate::slo::SloReport {
        self.with(|r| crate::slo::evaluate(policy, &r.queues))
    }

    /// High-water depth across queues whose name starts with `prefix`.
    pub fn queue_high_water_depth(&self, prefix: &str) -> u64 {
        self.with(|r| r.queues.high_water_depth(prefix))
    }

    /// Highest *current* depth across queues matching `prefix` — zero means
    /// every matching queue has drained.
    pub fn queue_current_depth(&self, prefix: &str) -> u64 {
        self.with(|r| r.queues.max_current_depth(prefix))
    }

    // --- profiler conveniences -----------------------------------------

    /// Charges simulated time to a category — to the profiler and, in the
    /// same locked step, to the ambient meter scope's ledger. Feeding both
    /// from one call site is what makes the meter's conservation check an
    /// exact equality.
    pub fn charge(&self, cat: TimeCategory, d: SimNs) {
        self.with(|r| {
            r.profiler.charge(cat, d);
            r.meter.charge_time(cat, d);
        });
    }

    /// Charges simulated time to a category with a detail frame.
    pub fn charge_detail(&self, cat: TimeCategory, detail: &str, d: SimNs) {
        self.with(|r| {
            r.profiler.charge_detail(cat, detail, d);
            r.meter.charge_time(cat, d);
        });
    }

    // --- resource meter conveniences ------------------------------------

    /// Replaces the ambient meter scope, returning the previous one so the
    /// caller can save/restore around nested work (the ambient-ReqId
    /// pattern, applied to ownership).
    pub fn set_meter_scope(&self, scope: MeterScope) -> MeterScope {
        self.with(|r| r.meter.set_scope(scope))
    }

    /// The ambient meter scope.
    pub fn meter_scope(&self) -> MeterScope {
        self.with(|r| r.meter.scope())
    }

    /// Adds `amount` of a count resource to the ambient scope's ledger.
    pub fn meter_count(&self, res: CountResource, amount: u64) {
        self.with(|r| r.meter.add_count(res, amount));
    }

    /// Records that the ambient scope's current request occupied `worker`
    /// for `[start, end)` (interference-matrix raw material).
    pub fn meter_occupy(&self, worker: WorkerId, start: SimNs, end: SimNs) {
        self.with(|r| {
            let req = r.spans.current_req();
            r.meter.record_occupancy(worker, req, start, end);
        });
    }

    /// Records that the ambient scope's current request waited on `worker`
    /// from `enqueued` until `started`.
    pub fn meter_wait(&self, worker: WorkerId, enqueued: SimNs, started: SimNs) {
        self.with(|r| {
            let req = r.spans.current_req();
            r.meter.record_wait(worker, req, enqueued, started);
        });
    }

    /// Runs the meter's conservation self-test against the profiler and
    /// event counters.
    ///
    /// # Errors
    ///
    /// [`MeterError::Conservation`] naming the first imbalanced resource.
    pub fn meter_conservation(&self) -> Result<Vec<ConservationRow>, MeterError> {
        self.with(|r| r.meter.check_conservation(&r.profiler, &r.metrics))
    }

    /// Fairness metrics (per-resource Jain indices, dominant shares)
    /// computed over the meter's per-principal ledgers.
    pub fn fairness_report(&self) -> crate::fairness::FairnessReport {
        self.with(|r| crate::fairness::FairnessReport::compute(&r.meter))
    }

    /// The noisy-neighbor interference matrix: each principal's backlog
    /// waits attributed to whoever occupied the contended executor.
    pub fn interference_matrix(&self) -> crate::fairness::InterferenceMatrix {
        self.with(|r| crate::fairness::InterferenceMatrix::build(&r.meter))
    }

    /// Advances the elapsed-time watermark.
    pub fn observe_instant(&self, at: SimNs) {
        self.with(|r| r.profiler.observe_instant(at));
    }

    /// Current elapsed-time watermark (used to place attribution-local
    /// spans, e.g. recovery phases, back to back).
    pub fn total_elapsed(&self) -> SimNs {
        self.with(|r| r.profiler.total_elapsed())
    }

    // --- exports --------------------------------------------------------

    /// Closes open spans and renders the Chrome trace-event JSON document.
    pub fn chrome_trace_json(&self) -> String {
        self.with(|r| {
            let at = r.profiler.total_elapsed();
            r.spans.finish_all(at);
            r.spans.chrome_trace_json()
        })
    }

    /// Renders the metrics snapshot JSON for a run named `run`.
    pub fn metrics_snapshot_json(&self, run: &str) -> String {
        self.with(|r| {
            let attribution: Vec<Json> = r
                .profiler
                .attribution()
                .iter()
                .map(|(cat, d)| {
                    Json::obj([
                        ("category", Json::from(cat.name())),
                        ("ns", Json::U64(d.as_nanos())),
                    ])
                })
                .collect();
            r.metrics.snapshot_json(&[
                ("run", Json::from(run)),
                (
                    "elapsed_ns",
                    Json::U64(r.profiler.total_elapsed().as_nanos()),
                ),
                ("busy_ns", Json::U64(r.profiler.total_busy().as_nanos())),
                ("idle_ns", Json::U64(r.profiler.idle().as_nanos())),
                ("attribution", Json::Arr(attribution)),
            ])
        })
    }

    /// Renders folded-stack lines for flamegraph tooling.
    pub fn folded_stacks(&self) -> String {
        self.with(|r| r.profiler.folded_stacks())
    }

    /// Builds the causal critical-path report from the recorded spans.
    pub fn causal_report(&self) -> CausalReport {
        self.with(|r| CausalReport::from_tracer(&r.spans))
    }

    /// Boxes a sink for [`cronus_sim::Machine::set_event_sink`]; events then
    /// feed this recorder's counters.
    pub fn sink(&self) -> Box<dyn EventSink> {
        Box::new(RecorderSink(self.clone()))
    }
}

/// Bridges the simulator's event stream into the recorder.
///
/// Counter names mirror [`EventKind`] variants one-to-one, so equality with
/// `EventLog` query helpers (`context_switches()`, `world_switches()`, …)
/// holds by construction: the same `record` call drives both.
pub struct RecorderSink(FlightRecorder);

impl RecorderSink {
    /// Wraps a recorder handle.
    pub fn new(rec: FlightRecorder) -> Self {
        RecorderSink(rec)
    }
}

impl EventSink for RecorderSink {
    fn on_event(&mut self, at: SimNs, kind: &EventKind) {
        self.0.with(|r| {
            r.profiler.observe_instant(at);
            let m = &mut r.metrics;
            match kind {
                EventKind::WorldSwitch => {
                    m.counter_add("world_switches", LabelSet::empty(), 1);
                    r.meter.add_count(CountResource::WorldSwitches, 1);
                }
                EventKind::ContextSwitch { to, .. } => {
                    m.counter_add("context_switches", labels(&[("to", &to.to_string())]), 1);
                }
                EventKind::RpcEnqueue { stream } => {
                    m.counter_add(
                        "srpc.enqueued",
                        labels(&[("stream", &stream.to_string())]),
                        1,
                    );
                }
                EventKind::RpcDispatch { stream } => {
                    m.counter_add(
                        "srpc.dispatched",
                        labels(&[("stream", &stream.to_string())]),
                        1,
                    );
                }
                EventKind::RpcSync { stream } => {
                    m.counter_add("srpc.syncs", labels(&[("stream", &stream.to_string())]), 1);
                }
                EventKind::EncryptedRpc { bytes } => {
                    m.counter_add("encrypted_rpc.messages", LabelSet::empty(), 1);
                    m.counter_add("encrypted_rpc.bytes", LabelSet::empty(), *bytes);
                }
                EventKind::Faulted(_) => {
                    m.counter_add("faults", LabelSet::empty(), 1);
                }
                EventKind::PartitionFailed { partition } => {
                    m.counter_add(
                        "partition.failed",
                        labels(&[("partition", &partition.to_string())]),
                        1,
                    );
                }
                EventKind::PartitionCleared { partition } => {
                    m.counter_add(
                        "partition.cleared",
                        labels(&[("partition", &partition.to_string())]),
                        1,
                    );
                }
                EventKind::PartitionRecovered { partition } => {
                    m.counter_add(
                        "partition.recovered",
                        labels(&[("partition", &partition.to_string())]),
                        1,
                    );
                }
                EventKind::MemoryShared { pages, .. } => {
                    m.counter_add("memory.shared_pages", LabelSet::empty(), *pages as u64);
                    r.meter.add_count(CountResource::Stage2Pages, *pages as u64);
                }
                EventKind::FailureSignal { partition } => {
                    m.counter_add(
                        "failure.signals",
                        labels(&[("partition", &partition.to_string())]),
                        1,
                    );
                }
                EventKind::DeviceIrq { count } => {
                    m.counter_add("device.irqs", LabelSet::empty(), *count as u64);
                    r.meter.add_count(CountResource::DeviceIrqs, *count as u64);
                }
                EventKind::Marker(label) => {
                    m.counter_add("markers", LabelSet::empty(), 1);
                    r.spans.instant(*label, at);
                }
            }
        });
    }
}

/// Charges the recorder (if present) — a shorthand for the `Option<&FlightRecorder>`
/// plumbing in instrumented crates.
pub fn charge_opt(rec: Option<&FlightRecorder>, cat: TimeCategory, d: SimNs) {
    if let Some(rec) = rec {
        rec.charge(cat, d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::is_well_formed;
    use cronus_sim::AsId;

    fn ns(v: u64) -> SimNs {
        SimNs::from_nanos(v)
    }

    #[test]
    fn sink_counts_match_event_stream() {
        let rec = FlightRecorder::new();
        let mut sink = RecorderSink::new(rec.clone());
        let a = AsId::new(1);
        let b = AsId::new(2);
        sink.on_event(ns(1), &EventKind::WorldSwitch);
        sink.on_event(ns(2), &EventKind::WorldSwitch);
        sink.on_event(ns(3), &EventKind::ContextSwitch { from: a, to: b });
        sink.on_event(ns(4), &EventKind::RpcEnqueue { stream: 9 });
        sink.on_event(ns(5), &EventKind::RpcDispatch { stream: 9 });
        sink.on_event(ns(6), &EventKind::Marker("phase:warmup"));
        let inner = rec.lock();
        assert_eq!(inner.metrics.counter_total("world_switches"), 2);
        assert_eq!(inner.metrics.counter_total("context_switches"), 1);
        assert_eq!(inner.metrics.counter_total("srpc.enqueued"), 1);
        assert_eq!(inner.metrics.counter_total("srpc.dispatched"), 1);
        assert_eq!(inner.metrics.counter_total("markers"), 1);
        assert_eq!(inner.spans.instants().len(), 1);
        assert_eq!(inner.profiler.total_elapsed(), ns(6));
    }

    #[test]
    fn recorder_clones_share_state() {
        let rec = FlightRecorder::new();
        let clone = rec.clone();
        clone.counter_add("x", &[], 5);
        assert_eq!(rec.lock().metrics.counter_total("x"), 5);
    }

    #[test]
    fn exports_are_well_formed() {
        let rec = FlightRecorder::new();
        let t = rec.track("spm");
        let s = rec.begin_span(t, "boot", "boot", ns(0));
        rec.end_span(t, s, ns(100));
        rec.observe("lat", &[("stream", "1")], ns(42));
        rec.charge(TimeCategory::Ring, ns(10));
        assert!(is_well_formed(&rec.metrics_snapshot_json("unit")));
        assert!(is_well_formed(&rec.chrome_trace_json()));
    }

    #[test]
    fn attribution_in_snapshot_sums_to_elapsed() {
        let rec = FlightRecorder::new();
        rec.charge(TimeCategory::Kernel, ns(700));
        rec.charge_detail(TimeCategory::Ring, "enqueue", ns(300));
        rec.observe_instant(ns(2_000));
        let inner = rec.lock();
        let sum: u64 = inner
            .profiler
            .attribution()
            .iter()
            .map(|(_, d)| d.as_nanos())
            .sum();
        assert_eq!(sum, inner.profiler.total_elapsed().as_nanos());
        assert_eq!(sum, 2_000);
    }
}
