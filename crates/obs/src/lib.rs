//! # cronus-obs — the flight recorder
//!
//! Observability for the CRONUS reproduction, entirely in simulated time:
//!
//! - [`span`]: hierarchical spans (app → mEnclave → sRPC call → device
//!   kernel → recovery phase) exportable as Chrome trace-event JSON that
//!   loads in Perfetto / `chrome://tracing`.
//! - [`metrics`]: labeled counters, gauges and log-bucketed latency
//!   histograms (p50/p95/p99/max) keyed by partition/stream/device.
//! - [`profile`]: charges every simulated nanosecond to a category
//!   (world-switch, context-switch, crypto, memcpy, ring, kernel, recovery,
//!   mgmt, idle) and emits folded-stack flamegraph lines.
//! - [`recorder`]: the [`FlightRecorder`] handle tying the three together,
//!   plus the [`cronus_sim::EventSink`] bridge that keeps metric counters in
//!   exact agreement with the simulator's event log.
//! - [`causal`]: per-request timelines reconstructed from [`span::ReqId`]-
//!   stamped spans, critical-path attribution (which category bounds
//!   latency, per stream and overall) and the p99 outlier report.
//! - [`queue`]: the queueing & saturation observatory — per-queue depth,
//!   wait/service split, USE metrics, Little's-law cross-checks and the
//!   ranked bottleneck-attribution report behind `cargo run --bin obs-report`.
//! - [`slo`]: per-figure p50/p99 wait budgets with error-budget burn rates,
//!   gated by `scripts/ci.sh --slo`.
//! - [`bundle`]: schema-versioned [`bundle::TelemetryBundle`] archives —
//!   headlines, critical-path splits, per-queue USE stats with worst-N wait
//!   exemplars, folded stacks and exemplar timelines — committed per figure
//!   as `BUNDLE_<name>.json` next to the bench baselines.
//! - [`diff`]: the differential forensics engine behind
//!   `cargo run --bin obs-diff` — ranked per-queue/per-category attribution
//!   verdicts, flamegraph frame diffs and bounding-queue transitions that
//!   make a red bench gate self-explaining.
//! - [`meter`]: per-principal resource metering — every simulated quantum
//!   (CPU/SM/NPU time, DMA bytes, ring-slot and arena occupancy, stage-2
//!   pages, world switches, crypto) charged to an owning partition with
//!   stream sub-accounts, balanced against the profiler by an exact
//!   conservation self-test; behind `cargo run --bin obs-meter`.
//! - [`fairness`]: Jain's index and dominant-resource shares over the meter
//!   ledgers, plus the deterministic noisy-neighbor interference matrix
//!   (backlog waits attributed to the principals occupying the contended
//!   executor, with exemplar ReqIds).
//! - [`json`]: the offline (serde-free) JSON emission and parsing all
//!   exports and the bench baselines use.
//!
//! The crate sits between `cronus-sim` and the policy layers: `spm`, `core`,
//! `devices` and `runtime` take an optional recorder and instrument their
//! hot paths; the bench harness dumps snapshots next to its table output.

pub mod bundle;
pub mod causal;
pub mod diff;
pub mod fairness;
pub mod json;
pub mod meter;
pub mod metrics;
pub mod profile;
pub mod queue;
pub mod recorder;
pub mod slo;
pub mod span;

pub use bundle::{
    BundleError, BundleExemplar, BundleHeadline, BundleQueue, Direction, TelemetryBundle,
    BUNDLE_SCHEMA,
};
pub use causal::{canonical_phase, CausalReport, RequestTimeline};
pub use diff::{
    diff, diff_documents, Attribution, AttributionKind, BundleDiff, DiffConfig, DiffError,
    ExemplarDiff, FrameDelta, FrameStatus, HeadlineDelta,
};
pub use fairness::{
    jain_index, DominantShare, FairnessReport, InterferenceCell, InterferenceExemplar,
    InterferenceMatrix,
};
pub use json::{is_well_formed, parse, report_document, Json, REPORT_SCHEMA};
pub use meter::{
    ConservationRow, CountResource, ExecClass, MeterError, MeterScope, Principal, ResourceMeter,
    WorkerId,
};
pub use metrics::{bucket_index, labels, Histogram, LabelSet, MetricsRegistry};
pub use profile::{TimeCategory, TimeProfiler};
pub use queue::{
    LittleCheck, QueueKind, QueueObservatory, QueueReport, QueueSample, QueueStation, QueueUse,
    WaitExemplar, MAX_EXEMPLARS,
};
pub use recorder::{charge_opt, FlightRecorder, RecorderInner, RecorderSink};
pub use slo::{SloEval, SloObjective, SloPolicy, SloReport};
pub use span::{ReqId, Span, SpanId, SpanTracer, TrackId};
