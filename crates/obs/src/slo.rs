//! Latency SLOs with error-budget burn rates over the queue observatory.
//!
//! A figure declares per-queue-kind wait budgets (p50 and p99). Evaluation
//! does not just compare percentile point estimates against the budget — it
//! computes, per queue, the *fraction of requests* that exceeded each budget
//! and divides by the allowed fraction (50% for the p50 budget, 1% for the
//! p99 budget). The quotient is the **burn rate**: 1.0 means the error
//! budget is exactly spent, above 1.0 the objective is breached. Burn rates
//! degrade gracefully (1.7× over budget reads differently from 40×), which
//! point-estimate comparisons cannot express.
//!
//! `ci.sh --slo` runs `obs-report --slo` over the smoke figures and fails on
//! any breached objective, so a queue regression fails CI with a named
//! queue, not just a slower end-to-end headline.

use std::fmt::Write as _;

use cronus_sim::SimNs;

use crate::json::Json;
use crate::queue::{QueueKind, QueueObservatory};

/// Fraction of requests allowed over the p50 budget (by definition of p50).
pub const ALLOWED_OVER_P50: f64 = 0.50;

/// Fraction of requests allowed over the p99 budget.
pub const ALLOWED_OVER_P99: f64 = 0.01;

/// A wait-time objective for every queue of one kind.
#[derive(Clone, Copy, Debug)]
pub struct SloObjective {
    /// Which queue kind the budgets apply to.
    pub kind: QueueKind,
    /// Budget the median wait must respect.
    pub p50_budget: SimNs,
    /// Budget the 99th-percentile wait must respect.
    pub p99_budget: SimNs,
}

/// The set of objectives for one figure.
#[derive(Clone, Debug)]
pub struct SloPolicy {
    /// Figure name the policy belongs to.
    pub figure: String,
    /// Per-kind objectives.
    pub objectives: Vec<SloObjective>,
}

fn objective(kind: QueueKind, p50: SimNs, p99: SimNs) -> SloObjective {
    SloObjective {
        kind,
        p50_budget: p50,
        p99_budget: p99,
    }
}

impl SloPolicy {
    /// The committed latency objectives for a figure. Budgets are calibrated
    /// against the committed baselines: tight enough that the known bounding
    /// queue burning meaningfully more budget fails the gate, loose enough
    /// that the seed passes with headroom.
    pub fn for_figure(figure: &str) -> SloPolicy {
        let ms = SimNs::from_millis;
        let us = SimNs::from_micros;
        let objectives = match figure {
            // 1000 back-to-back 64B echoes: the ring backlog grows linearly,
            // so waits reach ~sync-free milliseconds by design.
            "rpc_micro" => vec![
                objective(QueueKind::Ring, ms(8), ms(16)),
                objective(QueueKind::Dispatch, us(50), us(200)),
            ],
            // Compute/training figures: the ring carries the workload, so it
            // gets the widest envelope (fig8's DNN epochs reach ~3ms median
            // ring waits at the committed scale); DMA and completion queues
            // drain inline and must stay near-instant.
            "fig7" | "fig8" => vec![
                objective(QueueKind::Ring, ms(50), ms(200)),
                objective(QueueKind::Dma, ms(5), ms(50)),
                objective(QueueKind::Completion, ms(50), ms(400)),
            ],
            // Failover: rings stay shallow around the fault window, and
            // recovery work may wait at most a restart's worth of time.
            "fig9" => vec![
                objective(QueueKind::Ring, ms(50), ms(200)),
                objective(QueueKind::Dispatch, us(50), us(200)),
                objective(QueueKind::Recovery, ms(400), ms(800)),
            ],
            // Scalability / sharing figures tolerate contention-driven waits
            // that grow with the context count (~300µs p99 at the committed
            // scale, budgeted with room for the full bench sweep).
            "fig10a" | "fig10b" | "fig11a" | "fig11b" => vec![
                objective(QueueKind::Ring, ms(100), ms(400)),
                objective(QueueKind::Completion, ms(50), ms(400)),
                objective(QueueKind::Dma, ms(5), ms(50)),
            ],
            // Fault campaigns: recovery work is allowed to take a restart's
            // worth of time, rings must stay shallow.
            "chaos" => vec![
                objective(QueueKind::Ring, ms(50), ms(200)),
                objective(QueueKind::Recovery, ms(400), ms(800)),
            ],
            // Unknown figures get a permissive envelope so ad-hoc runs still
            // produce burn rates without spurious failures.
            _ => vec![
                objective(QueueKind::Ring, ms(2_000), ms(6_000)),
                objective(QueueKind::Dispatch, ms(1), ms(10)),
                objective(QueueKind::Completion, ms(200), ms(2_000)),
                objective(QueueKind::Dma, ms(20), ms(200)),
                objective(QueueKind::Recovery, ms(400), ms(800)),
            ],
        };
        SloPolicy {
            figure: figure.to_string(),
            objectives,
        }
    }
}

/// One queue evaluated against its kind's objective.
#[derive(Clone, Debug)]
pub struct SloEval {
    /// Queue name.
    pub queue: String,
    /// Queue kind.
    pub kind: QueueKind,
    /// Requests observed.
    pub count: u64,
    /// Observed median wait.
    pub p50_observed_ns: u64,
    /// p50 budget.
    pub p50_budget_ns: u64,
    /// Error-budget burn rate against the p50 budget.
    pub burn_p50: f64,
    /// Observed p99 wait.
    pub p99_observed_ns: u64,
    /// p99 budget.
    pub p99_budget_ns: u64,
    /// Error-budget burn rate against the p99 budget.
    pub burn_p99: f64,
}

impl SloEval {
    /// Whether either error budget is overspent.
    pub fn breached(&self) -> bool {
        self.burn_p50 > 1.0 || self.burn_p99 > 1.0
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("queue", Json::Str(self.queue.clone())),
            ("kind", Json::from(self.kind.as_str())),
            ("count", Json::U64(self.count)),
            ("p50_observed_ns", Json::U64(self.p50_observed_ns)),
            ("p50_budget_ns", Json::U64(self.p50_budget_ns)),
            ("burn_p50", Json::F64(self.burn_p50)),
            ("p99_observed_ns", Json::U64(self.p99_observed_ns)),
            ("p99_budget_ns", Json::U64(self.p99_budget_ns)),
            ("burn_p99", Json::F64(self.burn_p99)),
            ("breached", Json::Bool(self.breached())),
        ])
    }
}

/// Every queue's verdict for one figure.
#[derive(Clone, Debug)]
pub struct SloReport {
    /// Figure evaluated.
    pub figure: String,
    /// Per-queue verdicts, in observatory (name) order.
    pub evals: Vec<SloEval>,
}

impl SloReport {
    /// Whether every objective holds.
    pub fn passed(&self) -> bool {
        self.evals.iter().all(|e| !e.breached())
    }

    /// Queues that overspent an error budget.
    pub fn breaches(&self) -> Vec<&SloEval> {
        self.evals.iter().filter(|e| e.breached()).collect()
    }

    /// Deterministic text rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "slo evaluation — figure {}", self.figure);
        if self.evals.is_empty() {
            let _ = writeln!(out, "  (no queue matched an objective)");
            return out;
        }
        let _ = writeln!(
            out,
            "  queue                      kind        n      p50 / budget      burn    p99 / budget      burn  verdict"
        );
        for e in &self.evals {
            let _ = writeln!(
                out,
                "  {:<25}  {:<10}  {:>5}  {:>8}/{:<8}  {:>5.2}x  {:>8}/{:<8}  {:>5.2}x  {}",
                e.queue,
                e.kind.as_str(),
                e.count,
                SimNs::from_nanos(e.p50_observed_ns).to_string(),
                SimNs::from_nanos(e.p50_budget_ns).to_string(),
                e.burn_p50,
                SimNs::from_nanos(e.p99_observed_ns).to_string(),
                SimNs::from_nanos(e.p99_budget_ns).to_string(),
                e.burn_p99,
                if e.breached() { "BREACH" } else { "ok" },
            );
        }
        let _ = writeln!(
            out,
            "  verdict: {}",
            if self.passed() {
                "all objectives hold".to_string()
            } else {
                format!("{} objective(s) breached", self.breaches().len())
            }
        );
        out
    }

    /// JSON rendering (same order).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("figure", Json::Str(self.figure.clone())),
            ("passed", Json::Bool(self.passed())),
            (
                "evals",
                Json::Arr(self.evals.iter().map(|e| e.to_json()).collect()),
            ),
        ])
    }
}

/// Evaluates `policy` against every matching queue in the observatory.
/// Queues with no completed requests are skipped (nothing waited).
pub fn evaluate(policy: &SloPolicy, obs: &QueueObservatory) -> SloReport {
    let mut evals = Vec::new();
    for station in obs.stations() {
        let Some(obj) = policy.objectives.iter().find(|o| o.kind == station.kind()) else {
            continue;
        };
        let wait = station.wait_histogram();
        let count = wait.count();
        if count == 0 {
            continue;
        }
        let over_p50 = wait.count_over(obj.p50_budget) as f64 / count as f64;
        let over_p99 = wait.count_over(obj.p99_budget) as f64 / count as f64;
        evals.push(SloEval {
            queue: station.name().to_string(),
            kind: station.kind(),
            count,
            p50_observed_ns: wait.p50().as_nanos(),
            p50_budget_ns: obj.p50_budget.as_nanos(),
            burn_p50: over_p50 / ALLOWED_OVER_P50,
            p99_observed_ns: wait.p99().as_nanos(),
            p99_budget_ns: obj.p99_budget.as_nanos(),
            burn_p99: over_p99 / ALLOWED_OVER_P99,
        });
    }
    SloReport {
        figure: policy.figure.clone(),
        evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueObservatory;

    fn ns(v: u64) -> SimNs {
        SimNs::from_nanos(v)
    }

    fn obs_with_waits(waits: &[u64]) -> QueueObservatory {
        let mut obs = QueueObservatory::new();
        obs.declare("q.ring", QueueKind::Ring, 64);
        let mut t = 0u64;
        for &w in waits {
            obs.enqueue("q.ring", ns(t));
            obs.dequeue("q.ring", ns(t + w + 100), ns(w), ns(100));
            t += 1_000;
        }
        obs
    }

    fn ring_policy(p50: u64, p99: u64) -> SloPolicy {
        SloPolicy {
            figure: "test".to_string(),
            objectives: vec![objective(QueueKind::Ring, ns(p50), ns(p99))],
        }
    }

    #[test]
    fn within_budget_passes_with_low_burn() {
        let obs = obs_with_waits(&[10; 100]);
        let report = evaluate(&ring_policy(1_000_000, 2_000_000), &obs);
        assert_eq!(report.evals.len(), 1);
        assert!(report.passed(), "{}", report.render_text());
        assert!(report.evals[0].burn_p99 < 0.5);
    }

    #[test]
    fn tail_breach_burns_p99_budget() {
        // 5% of requests wait far over the p99 budget: burn = 0.05/0.01 = 5x.
        let mut waits = vec![10u64; 95];
        waits.extend([1 << 30; 5]);
        let obs = obs_with_waits(&waits);
        let report = evaluate(&ring_policy(1_000_000, 2_000_000), &obs);
        assert!(!report.passed());
        let e = &report.evals[0];
        assert!(e.burn_p99 > 1.0, "burn_p99 = {}", e.burn_p99);
        assert!(e.burn_p50 <= 1.0, "median unaffected");
        assert_eq!(report.breaches().len(), 1);
    }

    #[test]
    fn median_breach_burns_p50_budget() {
        // Every request over the p50 budget: burn = 1.0/0.5 = 2x.
        let obs = obs_with_waits(&[1 << 20; 50]);
        let report = evaluate(&ring_policy(1_000, u64::MAX >> 1), &obs);
        let e = &report.evals[0];
        assert!(e.burn_p50 > 1.0, "burn_p50 = {}", e.burn_p50);
        assert!(!report.passed());
    }

    #[test]
    fn unmatched_kinds_and_idle_queues_are_skipped() {
        let mut obs = QueueObservatory::new();
        obs.declare("idle.ring", QueueKind::Ring, 8);
        obs.declare("spm.recovery", QueueKind::Recovery, 8);
        obs.enqueue("spm.recovery", ns(0));
        obs.dequeue("spm.recovery", ns(100), ns(0), ns(100));
        let report = evaluate(&ring_policy(1, 1), &obs);
        assert!(report.evals.is_empty(), "ring idle, recovery unmatched");
        assert!(report.passed());
    }

    #[test]
    fn every_figure_policy_is_nonempty_and_ordered() {
        for fig in [
            "fig7",
            "fig8",
            "fig9",
            "fig10a",
            "fig10b",
            "fig11a",
            "fig11b",
            "rpc_micro",
            "chaos",
            "adhoc",
        ] {
            let p = SloPolicy::for_figure(fig);
            assert!(!p.objectives.is_empty());
            for o in &p.objectives {
                assert!(o.p50_budget <= o.p99_budget, "{fig}: p50 <= p99 budget");
            }
        }
    }

    #[test]
    fn report_renders_deterministically() {
        let obs = obs_with_waits(&[10, 20, 30, 40]);
        let policy = SloPolicy::for_figure("rpc_micro");
        let a = evaluate(&policy, &obs).render_text();
        let b = evaluate(&policy, &obs).render_text();
        assert_eq!(a, b);
        assert!(crate::json::is_well_formed(
            &evaluate(&policy, &obs).to_json().render()
        ));
    }
}
