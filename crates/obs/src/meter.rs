//! Per-principal resource metering.
//!
//! Every simulated quantum the profiler charges — executor/CPU time, GPU
//! SM-time, NPU program-time, DMA bus time, crypto, recovery, ring work —
//! is *also* charged here to an owning [`Principal`] (the calling
//! partition, with optional stream-level sub-accounts). Count resources
//! that have no time dimension (DMA bytes, ring-slot occupancy, grant-arena
//! bytes, stage-2/SMMU pages, world switches, device IRQs) accumulate in a
//! parallel ledger. On top, the meter records executor *occupancy* slices
//! and request *wait* windows per worker, the raw material for the
//! noisy-neighbor interference matrix in [`crate::fairness`].
//!
//! The meter is fed from inside [`crate::FlightRecorder::charge`] /
//! `charge_detail`, so its per-category totals agree with the
//! [`crate::TimeProfiler`] *by construction* — and the conservation
//! self-test ([`ResourceMeter::check_conservation`]) re-verifies the exact
//! equality anyway, because a disagreement means a metering bug (a bypass
//! path, a scope leak) and must fail the run, in the same spirit as the
//! queue observatory's Little's-law cross-check.
//!
//! Privacy invariant: usage records carry only principals, stream numbers,
//! nanosecond amounts and byte/page/switch *counts* — never payload or
//! grant bytes themselves. The cronus-lint taint rules treat the meter
//! record methods as sinks to keep it that way.

use std::collections::BTreeMap;
use std::fmt;

use cronus_sim::SimNs;

use crate::json::Json;
use crate::metrics::MetricsRegistry;
use crate::profile::{TimeCategory, TimeProfiler};
use crate::span::ReqId;

/// The accountable owner of a resource quantum: a partition (`AsId` raw
/// value). Work done by the platform itself outside any partition's request
/// context is charged to [`Principal::SYSTEM`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Principal(pub u32);

impl Principal {
    /// Platform work not attributable to any partition (boot, bookkeeping).
    pub const SYSTEM: Principal = Principal(u32::MAX);

    /// Raw partition id.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Principal::SYSTEM {
            f.write_str("system")
        } else {
            write!(f, "p{}", self.0)
        }
    }
}

/// Which execution substrate a `Kernel` charge ran on: refines the
/// profiler's single `kernel` category into CPU executor time, GPU SM-time
/// and NPU program-time without forking the category enum.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ExecClass {
    /// CPU mOS executor.
    #[default]
    Cpu,
    /// GPU streaming multiprocessors.
    Gpu,
    /// NPU program engine.
    Npu,
}

impl ExecClass {
    /// Report label for kernel time on this substrate.
    pub fn kernel_resource(self) -> &'static str {
        match self {
            ExecClass::Cpu => "cpu_ns",
            ExecClass::Gpu => "sm_ns",
            ExecClass::Npu => "npu_ns",
        }
    }
}

/// The ambient metering scope: who subsequent charges belong to. Mirrors
/// the recorder's ambient-`ReqId` pattern — instrumented layers set it on
/// entry (save) and restore it on exit, so nested work lands on the right
/// account without threading a principal through every call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeterScope {
    /// Owning partition.
    pub principal: Principal,
    /// Stream-level sub-account, when the work belongs to one stream.
    pub stream: Option<u64>,
    /// Substrate `Kernel` charges run on under this scope.
    pub class: ExecClass,
}

impl MeterScope {
    /// The default scope: unattributed platform work.
    pub const SYSTEM: MeterScope = MeterScope {
        principal: Principal::SYSTEM,
        stream: None,
        class: ExecClass::Cpu,
    };

    /// A scope owned by `principal` with no sub-account.
    pub fn principal(principal: Principal) -> MeterScope {
        MeterScope {
            principal,
            stream: None,
            class: ExecClass::Cpu,
        }
    }

    /// Same scope with a stream sub-account attached.
    pub fn with_stream(mut self, stream: u64) -> MeterScope {
        self.stream = Some(stream);
        self
    }

    /// Same scope with an execution class.
    pub fn with_class(mut self, class: ExecClass) -> MeterScope {
        self.class = class;
        self
    }
}

impl Default for MeterScope {
    fn default() -> Self {
        MeterScope::SYSTEM
    }
}

/// Countable resources with no time dimension. Amounts are sizes, counts
/// and durations only — never payload bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CountResource {
    /// Bytes staged over the DMA path (h2d/d2h/p2p transfer sizes).
    DmaBytes,
    /// Ring-slot occupancy: nanoseconds a request held a ring slot, from
    /// enqueue until its executor finished it.
    RingSlotNs,
    /// Bytes reserved in zero-copy grant arenas (grant descriptor sizes).
    ArenaBytes,
    /// Stage-2 / SMMU pages mapped on this principal's behalf.
    Stage2Pages,
    /// Normal ↔ secure world switches.
    WorldSwitches,
    /// Device completion interrupts serviced.
    DeviceIrqs,
}

impl CountResource {
    /// Every count resource, in report order.
    pub const ALL: [CountResource; 6] = [
        CountResource::DmaBytes,
        CountResource::RingSlotNs,
        CountResource::ArenaBytes,
        CountResource::Stage2Pages,
        CountResource::WorldSwitches,
        CountResource::DeviceIrqs,
    ];

    /// Stable report key.
    pub fn name(self) -> &'static str {
        match self {
            CountResource::DmaBytes => "dma_bytes",
            CountResource::RingSlotNs => "ring_slot_ns",
            CountResource::ArenaBytes => "arena_bytes",
            CountResource::Stage2Pages => "stage2_pages",
            CountResource::WorldSwitches => "world_switches",
            CountResource::DeviceIrqs => "device_irqs",
        }
    }
}

/// Identifies one executor worker for occupancy/wait bookkeeping: either a
/// worker in a shared per-partition pool or one stream-private lane worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkerId {
    /// True for a shared executor-pool worker (`domain` = callee partition
    /// id), false for a stream-private lane (`domain` = stream id).
    pub shared: bool,
    /// Pool partition id or stream id.
    pub domain: u64,
    /// Worker index within the pool / lane index within the stream.
    pub index: u32,
}

impl WorkerId {
    /// A shared executor-pool worker.
    pub fn pool(partition: u32, index: u32) -> WorkerId {
        WorkerId {
            shared: true,
            domain: partition as u64,
            index,
        }
    }

    /// A stream-private lane worker.
    pub fn lane(stream: u64, index: u32) -> WorkerId {
        WorkerId {
            shared: false,
            domain: stream,
            index,
        }
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.shared {
            write!(f, "pool:{}.{}", self.domain, self.index)
        } else {
            write!(f, "lane:{}.{}", self.domain, self.index)
        }
    }
}

/// One interval during which a worker executed one request.
#[derive(Clone, Copy, Debug)]
pub struct OccupancySlice {
    /// Principal whose request occupied the worker.
    pub principal: Principal,
    /// Stream the request belongs to.
    pub stream: Option<u64>,
    /// Request id, for exemplars.
    pub req: Option<ReqId>,
    /// Occupation start (virtual time).
    pub start: SimNs,
    /// Occupation end.
    pub end: SimNs,
}

/// One request's executor-backlog wait window on a worker.
#[derive(Clone, Copy, Debug)]
pub struct WaitRecord {
    /// Principal who waited (the request's owner).
    pub principal: Principal,
    /// Stream the waiting request belongs to.
    pub stream: Option<u64>,
    /// Waiting request id, for exemplars.
    pub req: Option<ReqId>,
    /// Worker the request eventually ran on.
    pub worker: WorkerId,
    /// Enqueue instant (wait starts).
    pub enqueued: SimNs,
    /// Execution start (wait ends).
    pub started: SimNs,
}

/// A metering bug: per-principal charges disagree with the independent
/// profiler/counter totals for one resource.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MeterError {
    /// Per-principal sums for `resource` do not equal the authoritative
    /// total. Exact equality is required: the same charge call feeds both
    /// ledgers, so any drift means a bypass path or scope leak.
    Conservation {
        /// Resource whose books do not balance.
        resource: &'static str,
        /// Sum of per-principal charges.
        metered: u64,
        /// The profiler/counter total the sum must equal.
        expected: u64,
    },
}

impl fmt::Display for MeterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeterError::Conservation {
                resource,
                metered,
                expected,
            } => write!(
                f,
                "meter conservation violated for {resource}: per-principal charges \
                 sum to {metered} but the authoritative total is {expected}"
            ),
        }
    }
}

impl std::error::Error for MeterError {}

/// One row of the conservation cross-check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConservationRow {
    /// Resource checked.
    pub resource: &'static str,
    /// Sum of per-principal charges.
    pub metered: u64,
    /// Authoritative total (profiler category or event counter).
    pub expected: u64,
}

impl ConservationRow {
    /// Whether the books balance exactly.
    pub fn ok(&self) -> bool {
        self.metered == self.expected
    }
}

/// The per-principal resource ledgers plus the occupancy/wait journal.
#[derive(Debug, Default)]
pub struct ResourceMeter {
    /// Ambient scope charges are attributed to.
    scope: MeterScope,
    /// Time ledger: `(principal, stream, class, category) -> ns`.
    time: BTreeMap<(Principal, Option<u64>, ExecClass, TimeCategory), u64>,
    /// Count ledger: `(principal, stream, resource) -> amount`.
    counts: BTreeMap<(Principal, Option<u64>, CountResource), u64>,
    /// Executor occupancy slices, per worker, in record order.
    occupancy: BTreeMap<WorkerId, Vec<OccupancySlice>>,
    /// Request wait windows, in record order.
    waits: Vec<WaitRecord>,
}

impl ResourceMeter {
    /// Creates an empty meter scoped to [`MeterScope::SYSTEM`].
    pub fn new() -> Self {
        ResourceMeter::default()
    }

    /// Replaces the ambient scope, returning the previous one so callers
    /// can save/restore around nested work.
    pub fn set_scope(&mut self, scope: MeterScope) -> MeterScope {
        std::mem::replace(&mut self.scope, scope)
    }

    /// The ambient scope.
    pub fn scope(&self) -> MeterScope {
        self.scope
    }

    /// Charges time to the ambient scope. Called from the recorder's
    /// `charge`/`charge_detail`, in lockstep with the profiler.
    pub fn charge_time(&mut self, cat: TimeCategory, d: SimNs) {
        debug_assert!(cat != TimeCategory::Idle, "idle is derived, not charged");
        let s = self.scope;
        *self
            .time
            .entry((s.principal, s.stream, s.class, cat))
            .or_insert(0) += d.as_nanos();
    }

    /// Adds `amount` of a count resource to the ambient scope.
    pub fn add_count(&mut self, res: CountResource, amount: u64) {
        let s = self.scope;
        *self.counts.entry((s.principal, s.stream, res)).or_insert(0) += amount;
    }

    /// Records that the ambient scope's request occupied `worker` for
    /// `[start, end)`.
    pub fn record_occupancy(
        &mut self,
        worker: WorkerId,
        req: Option<ReqId>,
        start: SimNs,
        end: SimNs,
    ) {
        if end <= start {
            return;
        }
        let s = self.scope;
        self.occupancy
            .entry(worker)
            .or_default()
            .push(OccupancySlice {
                principal: s.principal,
                stream: s.stream,
                req,
                start,
                end,
            });
    }

    /// Records that the ambient scope's request waited on `worker` from
    /// `enqueued` until `started`.
    pub fn record_wait(
        &mut self,
        worker: WorkerId,
        req: Option<ReqId>,
        enqueued: SimNs,
        started: SimNs,
    ) {
        if started <= enqueued {
            return;
        }
        let s = self.scope;
        self.waits.push(WaitRecord {
            principal: s.principal,
            stream: s.stream,
            req,
            worker,
            enqueued,
            started,
        });
    }

    /// Every principal with any charge, sorted.
    pub fn principals(&self) -> Vec<Principal> {
        let mut out: Vec<Principal> = self
            .time
            .keys()
            .map(|(p, ..)| *p)
            .chain(self.counts.keys().map(|(p, ..)| *p))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Total ns charged to `principal` in `cat` (all streams, all classes).
    pub fn time_of(&self, principal: Principal, cat: TimeCategory) -> u64 {
        self.time
            .iter()
            .filter(|((p, _, _, c), _)| *p == principal && *c == cat)
            .map(|(_, v)| v)
            .sum()
    }

    /// Total ns charged to `principal` in `cat` on `class`.
    pub fn class_time_of(&self, principal: Principal, class: ExecClass, cat: TimeCategory) -> u64 {
        self.time
            .iter()
            .filter(|((p, _, k, c), _)| *p == principal && *k == class && *c == cat)
            .map(|(_, v)| v)
            .sum()
    }

    /// Total count of `res` charged to `principal` (all streams).
    pub fn count_of(&self, principal: Principal, res: CountResource) -> u64 {
        self.counts
            .iter()
            .filter(|((p, _, r), _)| *p == principal && *r == res)
            .map(|(_, v)| v)
            .sum()
    }

    /// Per-stream sub-account rows for `principal`: `(stream, resource,
    /// amount)`, deterministic order, time resources rendered by class.
    pub fn stream_rows(&self, principal: Principal) -> Vec<(u64, String, u64)> {
        let mut rows = Vec::new();
        for ((p, stream, class, cat), ns) in &self.time {
            let (Some(stream), true) = (stream, *p == principal) else {
                continue;
            };
            let key = if *cat == TimeCategory::Kernel {
                class.kernel_resource().to_string()
            } else {
                format!("{}_ns", cat.name().replace('-', "_"))
            };
            rows.push((*stream, key, *ns));
        }
        for ((p, stream, res), amount) in &self.counts {
            let (Some(stream), true) = (stream, *p == principal) else {
                continue;
            };
            rows.push((*stream, res.name().to_string(), *amount));
        }
        rows.sort();
        // Merge duplicate (stream, key) rows (same kernel class from
        // different detail categories).
        let mut merged: Vec<(u64, String, u64)> = Vec::new();
        for (stream, key, amount) in rows {
            match merged.last_mut() {
                Some((s, k, a)) if *s == stream && *k == key => *a += amount,
                _ => merged.push((stream, key, amount)),
            }
        }
        merged
    }

    /// The recorded wait windows.
    pub fn waits(&self) -> &[WaitRecord] {
        &self.waits
    }

    /// The recorded occupancy slices for `worker`.
    pub fn occupancy_of(&self, worker: WorkerId) -> &[OccupancySlice] {
        self.occupancy.get(&worker).map_or(&[], Vec::as_slice)
    }

    /// Every worker with recorded occupancy, sorted.
    pub fn workers(&self) -> Vec<WorkerId> {
        self.occupancy.keys().copied().collect()
    }

    /// All occupancy slices, keyed by worker (for the interference matrix).
    pub fn occupancy(&self) -> &BTreeMap<WorkerId, Vec<OccupancySlice>> {
        &self.occupancy
    }

    /// The conservation cross-check rows: one per busy time category plus
    /// the event-driven count resources whose authoritative totals live in
    /// the metrics registry. Exact equality is the invariant.
    pub fn conservation_rows(
        &self,
        profiler: &TimeProfiler,
        metrics: &MetricsRegistry,
    ) -> Vec<ConservationRow> {
        let mut rows = Vec::new();
        for cat in TimeCategory::BUSY {
            let metered: u64 = self
                .time
                .iter()
                .filter(|((_, _, _, c), _)| *c == cat)
                .map(|(_, v)| v)
                .sum();
            rows.push(ConservationRow {
                resource: cat.name(),
                metered,
                expected: profiler.busy_in(cat).as_nanos(),
            });
        }
        let counter_backed = [
            (CountResource::WorldSwitches, "world_switches"),
            (CountResource::Stage2Pages, "memory.shared_pages"),
            (CountResource::DeviceIrqs, "device.irqs"),
        ];
        for (res, counter) in counter_backed {
            let metered: u64 = self
                .counts
                .iter()
                .filter(|((_, _, r), _)| *r == res)
                .map(|(_, v)| v)
                .sum();
            rows.push(ConservationRow {
                resource: res.name(),
                metered,
                expected: metrics.counter_total(counter),
            });
        }
        rows
    }

    /// Runs the conservation self-test, failing on the first imbalanced
    /// resource.
    ///
    /// # Errors
    ///
    /// [`MeterError::Conservation`] when any resource's per-principal
    /// charges do not sum exactly to the authoritative total.
    pub fn check_conservation(
        &self,
        profiler: &TimeProfiler,
        metrics: &MetricsRegistry,
    ) -> Result<Vec<ConservationRow>, MeterError> {
        let rows = self.conservation_rows(profiler, metrics);
        for row in &rows {
            if !row.ok() {
                return Err(MeterError::Conservation {
                    resource: row.resource,
                    metered: row.metered,
                    expected: row.expected,
                });
            }
        }
        Ok(rows)
    }

    /// Aggregated per-principal usage: `resource key -> amount`, with
    /// kernel time split by execution class. Deterministic order.
    pub fn usage_of(&self, principal: Principal) -> BTreeMap<String, u64> {
        let mut usage: BTreeMap<String, u64> = BTreeMap::new();
        for ((p, _, class, cat), ns) in &self.time {
            if *p != principal {
                continue;
            }
            let key = if *cat == TimeCategory::Kernel {
                class.kernel_resource().to_string()
            } else {
                format!("{}_ns", cat.name().replace('-', "_"))
            };
            *usage.entry(key).or_insert(0) += ns;
        }
        for ((p, _, res), amount) in &self.counts {
            if *p != principal {
                continue;
            }
            *usage.entry(res.name().to_string()).or_insert(0) += amount;
        }
        usage
    }

    /// Every resource key with any charge across principals, sorted.
    pub fn resource_keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = Vec::new();
        for p in self.principals() {
            keys.extend(self.usage_of(p).into_keys());
        }
        keys.sort();
        keys.dedup();
        keys
    }
}

/// Renders a `(principal, usage)` table cell set as a JSON object.
pub fn usage_json(usage: &BTreeMap<String, u64>) -> Json {
    Json::Obj(
        usage
            .iter()
            .map(|(k, v)| (k.clone(), Json::U64(*v)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> SimNs {
        SimNs::from_nanos(v)
    }

    #[test]
    fn charges_follow_the_ambient_scope() {
        let mut m = ResourceMeter::new();
        m.charge_time(TimeCategory::Ring, ns(100));
        let prev = m.set_scope(
            MeterScope::principal(Principal(1))
                .with_stream(7)
                .with_class(ExecClass::Gpu),
        );
        assert_eq!(prev, MeterScope::SYSTEM);
        m.charge_time(TimeCategory::Kernel, ns(400));
        m.add_count(CountResource::DmaBytes, 1024);
        m.set_scope(prev);
        m.charge_time(TimeCategory::Ring, ns(50));

        assert_eq!(m.time_of(Principal::SYSTEM, TimeCategory::Ring), 150);
        assert_eq!(m.time_of(Principal(1), TimeCategory::Kernel), 400);
        assert_eq!(
            m.class_time_of(Principal(1), ExecClass::Gpu, TimeCategory::Kernel),
            400
        );
        assert_eq!(m.count_of(Principal(1), CountResource::DmaBytes), 1024);
        assert_eq!(m.usage_of(Principal(1)).get("sm_ns"), Some(&400));
        assert_eq!(
            m.stream_rows(Principal(1)),
            vec![
                (7, "dma_bytes".to_string(), 1024),
                (7, "sm_ns".to_string(), 400)
            ]
        );
    }

    #[test]
    fn conservation_matches_profiler_exactly() {
        let mut m = ResourceMeter::new();
        let mut p = TimeProfiler::new();
        let metrics = MetricsRegistry::new();
        for (cat, d) in [
            (TimeCategory::Ring, 120),
            (TimeCategory::Kernel, 900),
            (TimeCategory::Crypto, 40),
        ] {
            m.charge_time(cat, ns(d));
            p.charge(cat, ns(d));
        }
        let rows = m.check_conservation(&p, &metrics).expect("balanced");
        assert!(rows.iter().all(ConservationRow::ok));

        // A bypass (profiler charged, meter not) must fail.
        p.charge(TimeCategory::Ring, ns(1));
        let err = m.check_conservation(&p, &metrics).expect_err("imbalanced");
        assert!(matches!(
            err,
            MeterError::Conservation {
                resource: "ring",
                metered: 120,
                expected: 121,
            }
        ));
        assert!(err.to_string().contains("ring"));
    }

    #[test]
    fn occupancy_and_waits_are_recorded_per_worker() {
        let mut m = ResourceMeter::new();
        m.set_scope(MeterScope::principal(Principal(2)).with_stream(1));
        let w = WorkerId::pool(3, 0);
        m.record_occupancy(w, Some(ReqId(9)), ns(100), ns(200));
        // Degenerate intervals are dropped.
        m.record_occupancy(w, None, ns(200), ns(200));
        m.set_scope(MeterScope::principal(Principal(1)).with_stream(2));
        m.record_wait(w, Some(ReqId(10)), ns(120), ns(200));
        m.record_wait(w, Some(ReqId(11)), ns(250), ns(250));

        assert_eq!(m.occupancy_of(w).len(), 1);
        assert_eq!(m.waits().len(), 1);
        assert_eq!(m.waits()[0].principal, Principal(1));
        assert_eq!(m.occupancy_of(w)[0].principal, Principal(2));
        assert_eq!(format!("{w}"), "pool:3.0");
        assert_eq!(format!("{}", WorkerId::lane(4, 2)), "lane:4.2");
    }

    #[test]
    fn principal_display_and_system_sentinel() {
        assert_eq!(Principal(3).to_string(), "p3");
        assert_eq!(Principal::SYSTEM.to_string(), "system");
        assert_eq!(MeterScope::default(), MeterScope::SYSTEM);
    }
}
