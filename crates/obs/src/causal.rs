//! Post-hoc causal analysis: per-request timelines and the critical path.
//!
//! Every span the [`crate::FlightRecorder`] captures carries an optional
//! [`ReqId`]. This module stitches those spans back into one timeline per
//! request and attributes every nanosecond between the request's first and
//! last span to exactly one *phase*:
//!
//! - each elementary interval of the timeline is charged to the covering
//!   span that started last (the innermost work at that moment — a kernel
//!   span nested in an sRPC call wins over the call);
//! - intervals no span covers are charged to `"queue"` (the request sat in
//!   a ring or waited for the executor).
//!
//! Because the sweep partitions the interval exactly, the per-phase split of
//! every request sums to its end-to-end latency by construction — the
//! property the acceptance test asserts. Aggregated over a run this yields the
//! critical path: which category (ring, crypto, memcpy, kernel,
//! world-switch, queue, …) bounds latency, per stream and overall.

use std::collections::BTreeMap;

use cronus_sim::SimNs;

use crate::json::Json;
use crate::span::{ReqId, Span, SpanTracer};

/// Maps raw span categories onto the canonical phase vocabulary used by the
/// critical-path report. Unknown categories pass through unchanged.
pub fn canonical_phase(cat: &str) -> &str {
    match cat {
        "srpc" | "ring" => "ring",
        "dma" | "memcpy" => "memcpy",
        "world" => "world-switch",
        other => other,
    }
}

/// One request's reconstructed timeline.
#[derive(Clone, Debug)]
pub struct RequestTimeline {
    /// The request.
    pub req: ReqId,
    /// Display name (the sRPC call name when available).
    pub name: String,
    /// Stream the request ran on, when one of its spans lives on a
    /// `stream:<id>` track.
    pub stream: Option<u64>,
    /// Earliest span start.
    pub start: SimNs,
    /// Latest span end.
    pub end: SimNs,
    /// Phase → nanoseconds, descending by time. Sums exactly to
    /// [`RequestTimeline::total_ns`].
    pub phases: Vec<(String, u64)>,
}

impl RequestTimeline {
    /// End-to-end latency in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.end.as_nanos() - self.start.as_nanos()
    }

    /// Nanoseconds attributed to `phase` (zero if absent).
    pub fn phase_ns(&self, phase: &str) -> u64 {
        self.phases
            .iter()
            .find(|(p, _)| p == phase)
            .map_or(0, |(_, ns)| *ns)
    }
}

/// The run-level report: every request plus aggregated critical paths.
#[derive(Clone, Debug, Default)]
pub struct CausalReport {
    /// Per-request timelines, ordered by request id.
    pub requests: Vec<RequestTimeline>,
    /// Phase → total nanoseconds across all requests, descending.
    pub overall: Vec<(String, u64)>,
    /// Stream id → phase split for requests on that stream, descending.
    pub per_stream: Vec<(u64, Vec<(String, u64)>)>,
}

/// Descending (phase, ns) list from an accumulation map; ties break by name
/// so the output is deterministic.
fn ranked(map: BTreeMap<String, u64>) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = map.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v
}

/// Attributes every nanosecond of the request's interval to one phase via an
/// interval sweep; `spans` are (creation index, span) pairs, all closed.
fn sweep(spans: &[(usize, &Span)]) -> Vec<(String, u64)> {
    let mut bounds: Vec<u64> = Vec::with_capacity(spans.len() * 2);
    for (_, s) in spans {
        bounds.push(s.start.as_nanos());
        bounds.push(s.end.expect("closed").as_nanos());
    }
    bounds.sort_unstable();
    bounds.dedup();
    let mut acc: BTreeMap<String, u64> = BTreeMap::new();
    for w in bounds.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        // Innermost = the covering span that started last; creation order
        // breaks ties (a child is always created after its parent).
        let winner = spans
            .iter()
            .filter(|(_, s)| s.start.as_nanos() <= lo && s.end.expect("closed").as_nanos() >= hi)
            .max_by_key(|(idx, s)| (s.start.as_nanos(), *idx));
        let phase = match winner {
            Some((_, s)) => canonical_phase(s.cat).to_string(),
            None => "queue".to_string(),
        };
        *acc.entry(phase).or_insert(0) += hi - lo;
    }
    ranked(acc)
}

impl CausalReport {
    /// Reconstructs the report from a tracer's closed spans.
    pub fn from_tracer(tracer: &SpanTracer) -> Self {
        let mut by_req: BTreeMap<ReqId, Vec<(usize, &Span)>> = BTreeMap::new();
        for (idx, span) in tracer.spans().iter().enumerate() {
            if span.end.is_none() {
                continue;
            }
            if let Some(req) = span.req {
                by_req.entry(req).or_default().push((idx, span));
            }
        }
        let mut requests = Vec::with_capacity(by_req.len());
        let mut overall: BTreeMap<String, u64> = BTreeMap::new();
        let mut streams: BTreeMap<u64, BTreeMap<String, u64>> = BTreeMap::new();
        for (req, spans) in by_req {
            let start = spans.iter().map(|(_, s)| s.start).min().expect("nonempty");
            let end = spans
                .iter()
                .map(|(_, s)| s.end.expect("closed"))
                .max()
                .expect("nonempty");
            let name = spans
                .iter()
                .find(|(_, s)| s.cat == "srpc")
                .or_else(|| spans.first())
                .map(|(_, s)| s.name.clone())
                .unwrap_or_default();
            let stream = spans.iter().find_map(|(_, s)| {
                tracer
                    .track_name(s.track)
                    .strip_prefix("stream:")
                    .and_then(|n| n.parse().ok())
            });
            let phases = sweep(&spans);
            for (phase, ns) in &phases {
                *overall.entry(phase.clone()).or_insert(0) += ns;
                if let Some(sid) = stream {
                    *streams
                        .entry(sid)
                        .or_default()
                        .entry(phase.clone())
                        .or_insert(0) += ns;
                }
            }
            requests.push(RequestTimeline {
                req,
                name,
                stream,
                start,
                end,
                phases,
            });
        }
        CausalReport {
            requests,
            overall: ranked(overall),
            per_stream: streams.into_iter().map(|(s, m)| (s, ranked(m))).collect(),
        }
    }

    /// The category that bounds end-to-end latency across the whole run.
    pub fn bounding_category(&self) -> Option<&str> {
        self.overall.first().map(|(p, _)| p.as_str())
    }

    /// The bounding category for one stream.
    pub fn bounding_for_stream(&self, stream: u64) -> Option<&str> {
        self.per_stream
            .iter()
            .find(|(s, _)| *s == stream)
            .and_then(|(_, phases)| phases.first())
            .map(|(p, _)| p.as_str())
    }

    /// Total attributed nanoseconds (sum of every request's latency).
    pub fn total_ns(&self) -> u64 {
        self.requests.iter().map(RequestTimeline::total_ns).sum()
    }

    /// Requests at or above the p99 latency, slowest first.
    pub fn outliers(&self) -> Vec<&RequestTimeline> {
        if self.requests.is_empty() {
            return Vec::new();
        }
        let mut lat: Vec<u64> = self
            .requests
            .iter()
            .map(RequestTimeline::total_ns)
            .collect();
        lat.sort_unstable();
        let rank = ((0.99 * lat.len() as f64).ceil() as usize).clamp(1, lat.len());
        let threshold = lat[rank - 1];
        let mut out: Vec<&RequestTimeline> = self
            .requests
            .iter()
            .filter(|r| r.total_ns() >= threshold)
            .collect();
        out.sort_by(|a, b| b.total_ns().cmp(&a.total_ns()).then(a.req.cmp(&b.req)));
        out
    }

    /// Human-readable report: critical path overall and per stream, plus the
    /// outlier table (at most `max_outliers` rows).
    pub fn render_text(&self, max_outliers: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "causal report: {} requests", self.requests.len());
        let total = self.total_ns().max(1);
        let fmt_split = |phases: &[(String, u64)]| {
            let sum: u64 = phases.iter().map(|(_, ns)| ns).sum::<u64>().max(1);
            phases
                .iter()
                .map(|(p, ns)| format!("{p} {:.1}% ({ns} ns)", 100.0 * *ns as f64 / sum as f64))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(
            out,
            "critical path (overall, {} ns attributed): {}",
            total,
            fmt_split(&self.overall)
        );
        for (stream, phases) in &self.per_stream {
            let _ = writeln!(out, "  stream {stream}: {}", fmt_split(phases));
        }
        let outliers = self.outliers();
        if !outliers.is_empty() {
            let _ = writeln!(out, "slowest requests (>= p99):");
            let _ = writeln!(
                out,
                "  {:<8} {:<20} {:>8} {:>12}  phases",
                "req", "name", "stream", "total_ns"
            );
            for r in outliers.iter().take(max_outliers) {
                let stream = r.stream.map_or("-".to_string(), |s| s.to_string());
                let _ = writeln!(
                    out,
                    "  {:<8} {:<20} {:>8} {:>12}  {}",
                    r.req.0,
                    r.name,
                    stream,
                    r.total_ns(),
                    r.phases
                        .iter()
                        .map(|(p, ns)| format!("{p}={ns}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                );
            }
        }
        out
    }

    /// Machine-readable form (embedded in `BENCH_*.json`).
    pub fn to_json(&self) -> Json {
        let split = |phases: &[(String, u64)]| {
            Json::Arr(
                phases
                    .iter()
                    .map(|(p, ns)| {
                        Json::obj([("category", Json::from(p.as_str())), ("ns", Json::U64(*ns))])
                    })
                    .collect(),
            )
        };
        let outliers = Json::Arr(
            self.outliers()
                .iter()
                .take(16)
                .map(|r| {
                    Json::obj([
                        ("req", Json::U64(r.req.0)),
                        ("name", Json::from(r.name.as_str())),
                        ("stream", r.stream.map_or(Json::Null, Json::U64)),
                        ("total_ns", Json::U64(r.total_ns())),
                        ("phases", split(&r.phases)),
                    ])
                })
                .collect(),
        );
        Json::obj([
            ("requests", Json::from(self.requests.len())),
            ("total_ns", Json::U64(self.total_ns())),
            ("critical_path", split(&self.overall)),
            (
                "per_stream",
                Json::Arr(
                    self.per_stream
                        .iter()
                        .map(|(s, phases)| {
                            Json::obj([("stream", Json::U64(*s)), ("split", split(phases))])
                        })
                        .collect(),
                ),
            ),
            ("outliers", outliers),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::is_well_formed;

    fn ns(v: u64) -> SimNs {
        SimNs::from_nanos(v)
    }

    /// Builds the canonical request shape: enqueue on the caller track, a
    /// gap in the ring, the call + nested kernel on the stream track.
    fn one_request(t: &mut SpanTracer, req: u64, base: u64, kernel_ns: u64) {
        let caller = t.track("enclave:e1.1");
        let stream = t.track("stream:1");
        t.set_current_req(Some(ReqId(req)));
        t.complete(caller, "enqueue:echo", "ring", ns(base), ns(base + 100));
        let call = t.begin(stream, "echo", "srpc", ns(base + 150));
        t.complete(
            stream,
            "exec",
            "kernel",
            ns(base + 200),
            ns(base + 200 + kernel_ns),
        );
        t.end(stream, call, ns(base + 250 + kernel_ns));
        t.set_current_req(None);
    }

    #[test]
    fn phase_split_sums_to_end_to_end_for_every_request() {
        let mut t = SpanTracer::new();
        for i in 0..20 {
            one_request(&mut t, i + 1, i * 1_000, 300 + i * 10);
        }
        let report = CausalReport::from_tracer(&t);
        assert_eq!(report.requests.len(), 20);
        for r in &report.requests {
            let sum: u64 = r.phases.iter().map(|(_, ns)| ns).sum();
            assert_eq!(sum, r.total_ns(), "split must sum exactly for {:?}", r.req);
        }
    }

    #[test]
    fn innermost_span_wins_and_gaps_become_queue() {
        let mut t = SpanTracer::new();
        one_request(&mut t, 1, 0, 400);
        let report = CausalReport::from_tracer(&t);
        let r = &report.requests[0];
        // enqueue [0,100) ring; gap [100,150) queue; call [150,200) ring;
        // kernel [200,600); call tail [600,650) ring.
        assert_eq!(r.total_ns(), 650);
        assert_eq!(r.phase_ns("ring"), 200);
        assert_eq!(r.phase_ns("queue"), 50);
        assert_eq!(r.phase_ns("kernel"), 400);
        assert_eq!(r.name, "echo");
        assert_eq!(r.stream, Some(1));
        assert_eq!(report.bounding_category(), Some("kernel"));
        assert_eq!(report.bounding_for_stream(1), Some("kernel"));
    }

    #[test]
    fn outliers_are_the_slowest_requests() {
        let mut t = SpanTracer::new();
        for i in 0..100 {
            let kernel = if i == 42 { 50_000 } else { 300 };
            one_request(&mut t, i + 1, i * 100_000, kernel);
        }
        let report = CausalReport::from_tracer(&t);
        let outliers = report.outliers();
        assert!(!outliers.is_empty());
        assert_eq!(outliers[0].req, ReqId(43), "slowest first");
        assert!(outliers[0].phase_ns("kernel") == 50_000);
    }

    #[test]
    fn report_renders_text_and_json() {
        let mut t = SpanTracer::new();
        one_request(&mut t, 1, 0, 500);
        let report = CausalReport::from_tracer(&t);
        let text = report.render_text(5);
        assert!(text.contains("critical path"));
        assert!(text.contains("stream 1"));
        let json = report.to_json().render();
        assert!(is_well_formed(&json), "{json}");
        assert!(json.contains("critical_path"));
    }

    #[test]
    fn empty_tracer_yields_empty_report() {
        let report = CausalReport::from_tracer(&SpanTracer::new());
        assert!(report.requests.is_empty());
        assert!(report.outliers().is_empty());
        assert_eq!(report.bounding_category(), None);
        assert!(is_well_formed(&report.to_json().render()));
    }
}
