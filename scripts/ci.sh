#!/usr/bin/env bash
# Local CI gate: formatting, lints, offline tier-1 build + tests.
#
# Everything runs offline (the workspace has no crates.io dependencies), so
# this is exactly what a hermetic CI job would run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --offline --release

echo "==> tier-1: cargo test -q"
cargo test --offline -q

echo "==> workspace tests"
cargo test --offline -q --workspace

echo "CI gate passed."
