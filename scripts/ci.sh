#!/usr/bin/env bash
# Local CI gate: formatting, lints, offline tier-1 build + tests.
#
# Everything runs offline (the workspace has no crates.io dependencies), so
# this is exactly what a hermetic CI job would run.
#
# With --bench, also re-runs the gated figure binaries and compares their
# fresh BENCH_*.json headline metrics against the committed repo-root
# baselines, failing on any regression beyond the tolerance (default 10%,
# override with BENCH_TOLERANCE_PCT). The gate additionally asserts that no
# rebaselined figure reports meta bounding_category == "queue": the
# multi-queue sRPC fast path keeps every figure off protocol queueing, and
# a queue-bound baseline or fresh run fails the gate outright. To accept a
# deliberate change, run scripts/rebaseline.sh and commit the updated
# BENCH_*.json files.
#
# With --chaos, also runs the fault-injection smoke campaign (one injection
# per sRPC phase; see FAULTS.md), failing if any scenario violates an
# invariant — including A4, the full static isolation audit. Nightly jobs
# should run the full sweep instead — every workload × phase × action,
# which also refreshes BENCH_chaos.json for the bench gate:
#   cargo run --offline --release --bin chaos
#
# With --lint, also runs the cronus-lint v2 static-analysis gate (see
# AUDIT.md): secret-taint, panic-reachability and deprecated-API analysis
# over every workspace crate, ratcheted against LINT_BASELINE.json. Any
# new finding, stale baseline entry or unused allowlist entry fails the
# gate. To accept a deliberate finding, run scripts/relint.sh and commit
# the shrunk-or-justified LINT_BASELINE.json.
#
# With --audit, also runs the isolation auditor (see AUDIT.md): the
# repo-rule source lint, then the mapping-state audit of every example
# workload scenario, failing on any lint finding or invariant violation.
#
# With --forensics, also runs the forensics gate (see FORENSICS.md): the
# failover timeline reconstruction (ledger and span evidence must agree on
# inject -> detect -> trap -> recover -> re-establish, byte-identically
# across two same-seed runs) plus ledger verification over the smoke
# campaign. --chaos also includes the ledger smoke verification, since A5
# is a campaign invariant.
#
# With --slo, also runs the queue observatory gate (see OBSERVABILITY.md):
# obs-report analyzes representative figure workloads, failing on any
# Little's-law cross-check violation (the instrumentation self-test) or any
# per-figure SLO burn-rate breach.
#
# With --diff, also runs the differential-forensics gate (see
# OBSERVABILITY.md, "Explaining a regression"): regenerates fresh telemetry
# bundles for representative figures and self-diffs them against the
# committed BUNDLE_*.json baselines with obs-diff, which must report "no
# significant deltas" (exit 0) on a clean tree.
#
# With --meter, also runs the resource-metering gate (see OBSERVABILITY.md,
# "Who is using the machine?"): obs-meter replays every figure plus the
# rpc_micro/saturation/fig_interference workloads and fails if any
# per-principal ledger does not sum exactly to the profiler's category
# totals (the conservation self-test), or if fig_interference's
# interference matrix fails to convict the injected noisy GEMM partition
# (p4) as the top interferer.
set -euo pipefail
cd "$(dirname "$0")/.."

run_bench=0
run_chaos=0
run_audit=0
run_lint=0
run_forensics=0
run_slo=0
run_diff=0
run_meter=0
for arg in "$@"; do
  case "$arg" in
    --bench) run_bench=1 ;;
    --chaos) run_chaos=1 ;;
    --audit) run_audit=1 ;;
    --lint) run_lint=1 ;;
    --forensics) run_forensics=1 ;;
    --slo) run_slo=1 ;;
    --diff) run_diff=1 ;;
    --meter) run_meter=1 ;;
    *) echo "unknown flag: $arg (supported: --bench, --chaos, --audit, --lint, --forensics, --slo, --diff, --meter)" >&2; exit 2 ;;
  esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --offline --release

echo "==> tier-1: cargo test -q"
cargo test --offline -q

echo "==> workspace tests"
cargo test --offline -q --workspace

if [[ "$run_lint" -eq 1 ]]; then
  echo "==> lint gate: cronus-lint v2 (taint + panic-reachability, ratcheted)"
  cargo run --offline --release -q --bin lint
fi

if [[ "$run_audit" -eq 1 ]]; then
  echo "==> audit gate: repo-rule source lint"
  cargo run --offline --release -q --bin audit -- --lint

  echo "==> audit gate: mapping-state audit of the example workloads"
  cargo run --offline --release -q --bin audit
fi

if [[ "$run_chaos" -eq 1 ]]; then
  echo "==> chaos gate: smoke fault-injection campaign"
  cargo run --offline --release -q --bin chaos -- --smoke

  echo "==> chaos gate: ledger verification over the smoke campaign (A5)"
  cargo run --offline --release -q --bin forensics -- --verify --smoke
fi

if [[ "$run_forensics" -eq 1 ]]; then
  echo "==> forensics gate: failover timeline reconstruction + ordering"
  cargo run --offline --release -q --bin forensics > /dev/null

  echo "==> forensics gate: ledger verification over the smoke campaign"
  cargo run --offline --release -q --bin forensics -- --verify --smoke
fi

if [[ "$run_slo" -eq 1 ]]; then
  echo "==> slo gate: queue observatory + burn-rate budgets"
  # Representative figures: the RPC microbenchmark (ring-bound), the
  # failover path (recovery queue), and the mixed saturation workload.
  cargo run --offline --release -q --bin obs-report -- \
    --figure rpc_micro --figure fig9 --figure saturation --slo > /dev/null
fi

if [[ "$run_diff" -eq 1 ]]; then
  echo "==> diff gate: regenerate fresh bundles"
  # Same representative subset as --bench; the self-diff below compares
  # whichever fresh bundles exist against their committed baselines.
  cargo run --offline --release -q -p cronus-bench --bin rpc_micro > /dev/null
  cargo run --offline --release -q -p cronus-bench --bin fig9 > /dev/null
  cargo run --offline --release -q -p cronus-bench --bin saturation > /dev/null

  echo "==> diff gate: self-diff fresh bundles vs committed BUNDLE_*.json"
  for fresh in target/bench/BUNDLE_*.json; do
    name="$(basename "$fresh" .json)"; name="${name#BUNDLE_}"
    base="BUNDLE_${name}.json"
    if [[ ! -f "$base" ]]; then
      echo "diff gate: missing committed baseline $base — run scripts/rebaseline.sh and commit it" >&2
      exit 1
    fi
    echo "--- obs-diff $name"
    cargo run --offline --release -q --bin obs-diff -- \
      --baseline "$base" --candidate "$fresh" --verdict
  done
fi

if [[ "$run_meter" -eq 1 ]]; then
  echo "==> meter gate: conservation self-test over every figure"
  cargo run --offline --release -q --bin obs-meter -- --all > /dev/null

  echo "==> meter gate: fig_interference must convict the noisy GEMM partition"
  cargo run --offline --release -q --bin obs-meter -- \
    --figure fig_interference --expect-top p4 > /dev/null
fi

if [[ "$run_bench" -eq 1 ]]; then
  echo "==> bench gate: regenerate fresh reports"
  # The fast subset: the gate skips figures without a fresh report, so run
  # `cargo run -p cronus-bench --bin all` first for full coverage.
  cargo run --offline --release -q -p cronus-bench --bin rpc_micro > /dev/null
  cargo run --offline --release -q -p cronus-bench --bin fig9 > /dev/null

  echo "==> bench gate: compare against committed baselines (+ no figure queue-bound)"
  cargo run --offline --release -q -p cronus-bench --bin bench_gate
fi

echo "CI gate passed."
