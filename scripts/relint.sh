#!/usr/bin/env bash
# Re-baselines the cronus-lint v2 ratchet: re-runs the full static
# analysis and rewrites LINT_BASELINE.json from the fresh findings.
#
# The baseline is a ratchet — per-(rule, file) counts may only go DOWN.
# Run this after fixing findings (to shrink the accepted counts, which
# would otherwise surface as stale-entry findings) or after a deliberate,
# reviewed decision to accept new ones. Review the diff before
# committing: every count that goes UP is a new accepted finding and
# needs a justification in the PR description. See AUDIT.md, "The
# baseline ratchet".
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> current findings (before ratchet rewrite)"
cargo run --offline --release -q --bin lint -- --no-baseline || true

echo "==> rewriting LINT_BASELINE.json"
cargo run --offline --release -q --bin lint -- --write-baseline

echo "re-linted; review 'git diff LINT_BASELINE.json' and commit."
