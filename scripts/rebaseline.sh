#!/usr/bin/env bash
# Re-baselines the bench-regression gate: re-runs every figure binary and
# promotes the fresh target/bench/BENCH_*.json headline reports AND the
# target/bench/BUNDLE_*.json telemetry bundles (the obs-diff inputs) to the
# committed repo-root baselines. Run this after a deliberate performance
# change, review the diff, and commit the updated BENCH_*.json and
# BUNDLE_*.json files together — the gate and obs-diff refuse mismatched
# schemas rather than partially comparing.
#
# BENCH_chaos.json is the one exception: it is refreshed by the nightly
# full fault-injection sweep (`cargo run --offline --release --bin chaos`),
# not by this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> regenerating all fresh reports and bundles"
for fig in fig7 fig8 fig9 fig10a fig10b fig11a fig11b rpc_micro saturation; do
  cargo run --offline --release -q -p cronus-bench --bin "$fig" > /dev/null
done

echo "==> promoting fresh reports and bundles to repo-root baselines"
for fresh in target/bench/BENCH_*.json target/bench/BUNDLE_*.json; do
  cp -v "$fresh" "$(basename "$fresh")"
done

echo "re-baselined; review 'git diff BENCH_*.json BUNDLE_*.json' and commit."
