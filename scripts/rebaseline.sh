#!/usr/bin/env bash
# Re-baselines the bench-regression gate: re-runs every figure binary and
# promotes the fresh target/bench/BENCH_*.json headline reports AND the
# target/bench/BUNDLE_*.json telemetry bundles (the obs-diff inputs) to the
# committed repo-root baselines. Before rewriting anything it prints the
# per-figure headline deltas (old -> new, direction-aware ✓/✗) so the
# promotion is reviewable at a glance. Run this after a deliberate
# performance change, review the diff, and commit the updated BENCH_*.json
# and BUNDLE_*.json files together — the gate and obs-diff refuse
# mismatched schemas rather than partially comparing.
#
# BENCH_chaos.json is the one exception: it is refreshed by the nightly
# full fault-injection sweep (`cargo run --offline --release --bin chaos`),
# not by this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> regenerating all fresh reports and bundles"
for fig in fig7 fig8 fig9 fig10a fig10b fig11a fig11b rpc_micro saturation fig_interference; do
  cargo run --offline --release -q -p cronus-bench --bin "$fig" > /dev/null
done

# Extracts "key value better" lines from a BENCH_*.json headline array.
headlines() {
  grep -o '"key":"[^"]*","value":[^,]*,"unit":"[^"]*","better":"[^"]*"' "$1" \
    | sed -E 's/"key":"([^"]*)","value":([^,}]*),"unit":"[^"]*","better":"([^"]*)"/\1 \2 \3/'
}

echo "==> headline deltas (committed -> fresh)"
for fresh in target/bench/BENCH_*.json; do
  name=$(basename "$fresh" .json); name=${name#BENCH_}
  old=BENCH_${name}.json
  if [ ! -f "$old" ]; then
    echo "  $name: no committed baseline yet (will be seeded)"
    continue
  fi
  old_h=$(headlines "$old")
  while read -r key new_v better; do
    old_v=$(awk -v k="$key" '$1==k{print $2; exit}' <<< "$old_h")
    if [ -z "$old_v" ]; then
      echo "  ? $name/$key: new headline -> $new_v"
      continue
    fi
    awk -v k="$key" -v o="$old_v" -v n="$new_v" -v b="$better" -v f="$name" 'BEGIN{
      mark = "✓"
      if ((b == "lower" && n > o) || (b == "higher" && n < o)) mark = "✗"
      d = (o == 0) ? 0 : (n - o) / o * 100
      printf "  %s %-40s %g -> %g (%+.2f%%, %s-is-better)\n", mark, f "/" k, o, n, d, b
    }'
  done <<< "$(headlines "$fresh")"
done

echo "==> promoting fresh reports and bundles to repo-root baselines"
for fresh in target/bench/BENCH_*.json target/bench/BUNDLE_*.json; do
  cp -v "$fresh" "$(basename "$fresh")"
done

echo "re-baselined; review 'git diff BENCH_*.json BUNDLE_*.json' and commit."
