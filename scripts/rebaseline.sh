#!/usr/bin/env bash
# Re-baselines the bench-regression gate: re-runs every figure binary and
# promotes the fresh target/bench/BENCH_*.json reports to the committed
# repo-root baselines. Run this after a deliberate performance change,
# review the diff, and commit the updated BENCH_*.json files.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> regenerating all fresh reports"
for fig in fig7 fig8 fig9 fig10a fig10b fig11a fig11b rpc_micro; do
  cargo run --offline --release -q -p cronus-bench --bin "$fig" > /dev/null
done

echo "==> promoting fresh reports to repo-root baselines"
for fresh in target/bench/BENCH_*.json; do
  cp -v "$fresh" "$(basename "$fresh")"
done

echo "re-baselined; review 'git diff BENCH_*.json' and commit."
